"""The sharded execution engine: one batched engine per plan component group.

:class:`ShardedEngine` partitions a (typically optimized) plan with
:class:`~repro.shard.planner.ShardPlanner` and runs one batched
:class:`~repro.engine.executor.StreamEngine` per shard.  Because shards are
unions of entry-channel connected components, the engines share no m-ops and
no channels: feeding each shard exactly the source events on its own entry
channels reproduces the single-engine outputs byte-for-byte, per query.

Two execution modes:

- **process** — ``multiprocessing`` workers (at most one per CPU, each
  hosting one or more shard engines), using the ``fork`` start method so
  workers inherit their sub-plan, engine and sources without pickling a
  single plan object; only results (RunStats and captured outputs) cross
  back.  Chosen automatically when the platform supports ``fork`` and has
  more than one CPU.
- **inline** — shards run sequentially in the calling process.  The fallback
  for ``n_shards=1``, for tests, and for platforms without ``fork``
  (Windows/macOS-spawn).  Still faster than the single engine on
  multi-source workloads: each shard drains its own sources through the
  single-source bulk path with full-length runs, where the global k-way
  merge of the single engine interleaves channels and cuts every run short.

Two feed strategies, orthogonal to the mode:

- **local** — the :class:`SourceRouter` splits the source list by entry
  channel up front; each shard iterates its own sources.  No per-event
  serialization.  The default whenever sources are statically routable
  (with entry-channel components they always are).
- **router** — the coordinating process consumes the global timestamp-ordered
  merge, encodes each run with the :mod:`~repro.shard.wire` format and
  streams it to the owning shard (via queues in process mode).  This is the
  path live feeds use and the one that exercises the wire protocol; it keeps
  the global merge order, at the cost of coordinator-side work per run.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
from multiprocessing import connection as mp_connection
import traceback
from typing import Optional, Sequence

import numpy as np

from repro.engine.executor import StreamEngine
from repro.engine.metrics import RunStats
from repro.errors import PlanError
from repro.core.plan import QueryPlan
from repro.shard.planner import ShardPlan, ShardPlanner
from repro.shard.relay import (
    BufferedRunSource,
    RelayInbox,
    RelayOutbox,
    StreamingRelaySource,
    build_fragment_schedule,
    decode_local_frames,
    deduct_relay_inputs,
)
from repro.shard.ring import RingBuffer
from repro.shard.stats import ShardedRunStats
from repro.shard.wire import (
    RING,
    SCHEMA,
    STOP,
    STOP_FRAME,
    RelayCodec,
    WireDecoder,
    WireEncoder,
    pack_run_record,
)
from repro.streams.columns import ColumnBatch
from repro.streams.sources import StreamSource, merge_source_runs


def fork_available() -> bool:
    """Whether the ``fork`` start method exists on this platform."""
    return "fork" in multiprocessing.get_all_start_methods()


class SourceRouter:
    """Routes sources (and runs) to the shard owning their entry channel.

    The routing table is a channel-id hash: ``channel_shard`` from the
    shard plan, with a stable modulo fallback for channels no m-op consumes
    (their events still need a home so input accounting matches the single
    engine, which counts them too).
    """

    def __init__(self, channel_shard: dict[int, int], n_shards: int):
        if n_shards < 1:
            raise PlanError(f"n_shards must be at least 1, got {n_shards}")
        self.channel_shard = dict(channel_shard)
        self.n_shards = n_shards

    def shard_of_channel(self, channel_id: int) -> int:
        shard = self.channel_shard.get(channel_id)
        if shard is None:
            shard = channel_id % self.n_shards
        return shard

    def split_sources(
        self, sources: Sequence[StreamSource]
    ) -> list[list[StreamSource]]:
        """Partition sources by their channel's owning shard."""
        split: list[list[StreamSource]] = [[] for __ in range(self.n_shards)]
        for source in sources:
            split[self.shard_of_channel(source.channel.channel_id)].append(source)
        return split

    def split_routable(
        self, sources: Sequence[StreamSource]
    ) -> tuple[list[StreamSource], list[StreamSource]]:
        """Split into (consumed-channel sources, unconsumed-channel sources).

        The wire feed only ships runs for channels some shard's decoder
        knows; events on channels no m-op consumes cannot produce outputs,
        but the single engine still *counts* them, so the caller must count
        the second list locally to keep aggregate accounting identical.
        """
        routable: list[StreamSource] = []
        unrouted: list[StreamSource] = []
        for source in sources:
            if source.channel.channel_id in self.channel_shard:
                routable.append(source)
            else:
                unrouted.append(source)
        return routable, unrouted

    def feed_frames(
        self, sources: Sequence[StreamSource], max_batch: int,
        columnar: bool = False, encoder: Optional[WireEncoder] = None,
    ):
        """Yield ``(shard, frame)`` pairs for the merged run stream.

        Schema frames are replicated to every shard (interning state is
        per-encoder, shared across shards; a shard may receive a schema
        frame it never uses — harmless).  Run frames go only to the owning
        shard.

        ``columnar`` packs each run into a ``crun`` frame when its rows
        share one schema (columnar-native runs pass through untouched);
        unpackable runs fall back to the pickle ``run`` frame, so the two
        planes interleave freely on one feed.  Callers feeding several
        source groups through one wire pass a shared ``encoder`` so schema
        tokens stay unique across the calls.
        """
        if encoder is None:
            encoder = WireEncoder()
        for channel, batch in merge_source_runs(sources, max_batch):
            shard = self.shard_of_channel(channel.channel_id)
            if columnar:
                packed = (
                    batch
                    if type(batch) is ColumnBatch
                    else ColumnBatch.from_channel_tuples(batch)
                )
                frames = (
                    encoder.encode_run_columns(channel, packed)
                    if packed is not None
                    else encoder.encode_run(channel, batch)
                )
            else:
                if type(batch) is ColumnBatch:
                    batch = batch.channel_tuples()
                frames = encoder.encode_run(channel, batch)
            for frame in frames:
                if frame[0] == SCHEMA:
                    for index in range(self.n_shards):
                        yield index, frame
                else:
                    yield shard, frame


def _count_source_events(source: StreamSource) -> RunStats:
    """Input accounting for a source nothing consumes (no outputs possible)."""
    stats = RunStats()
    for __channel, channel_tuple in source:
        stats.input_events += channel_tuple.membership.bit_count()
        stats.physical_input_events += 1
    return stats


def _await_ready(ready) -> None:
    """Join the spawn barrier; a broken barrier only degrades *timing*
    (spawn cost leaks into the measured wall), never correctness."""
    if ready is None:
        return
    try:
        ready.wait(timeout=30.0)
    except (threading.BrokenBarrierError, ValueError):
        pass


def _warm_numeric_kernels() -> None:
    """Touch the vectorized kernels a forked worker's drain path uses.

    First use of ``np.isin``/``np.frombuffer`` in a fresh child pays
    one-time dispatch/setup cost (milliseconds — comparable to a whole
    shard's drain on bench workloads); doing it before the ready barrier
    books that cost where it belongs, in ``spawn_seconds``.
    """
    probe = np.arange(8, dtype=np.int64)
    np.isin(probe, probe[:2])
    np.frombuffer(probe.tobytes(), dtype=np.int64)


def _send_frame(sender, frame) -> None:
    """Best-effort frame delivery to one worker's feed pipe.

    A worker that died mid-run closes its receive end; its failure is
    reported through the result pipe (or its exitcode), so the coordinator
    just stops feeding it rather than raising out of the pump.
    """
    try:
        sender.send(frame)
    except (BrokenPipeError, OSError):
        pass


def _run_local(
    shards, engines, source_lists, results, ready=None
) -> None:
    """Worker body, local feed: drain each hosted shard's own sources.

    One worker process may host several shard engines (see
    :meth:`ShardedEngine._worker_slots`); it drains them sequentially and
    reports every shard's result in a single message.
    """
    try:
        _warm_numeric_kernels()
        _await_ready(ready)
        payload = []
        for shard, engine, sources in zip(shards, engines, source_lists):
            stats = engine.run(sources)
            payload.append(
                (shard, stats, engine.captured, engine.mop_stats())
            )
        results.send(("ok", payload))
    except BaseException:  # noqa: BLE001 - must cross the process boundary
        results.send(("error", traceback.format_exc()))


def _run_routed(
    shards, engines, frames, results, ready=None, ring=None
) -> None:
    """Worker body, router feed: decode wire frames until the stop frame.

    Frames arrive on a dedicated pipe (``frames`` is the receive end).
    Columnar-plane frames come two ways: ``crun`` frames decode like any
    frame, and ``ring`` markers announce one packed record in the
    shared-memory ring (the marker's pipe position is the ordering edge,
    so ring records interleave exactly with pipe frames).  A worker may
    host several shard engines; each decoded run dispatches to the engine
    owning its entry channel (shards share no channels, so the mapping is
    a disjoint union).
    """
    try:
        channel_engine: dict[int, int] = {}
        channels = []
        for local, engine in enumerate(engines):
            for channel in engine.plan.channels():
                channel_engine[channel.channel_id] = local
                channels.append(channel)
        decoder = WireDecoder(channels)
        stats = [RunStats() for __ in engines]
        _warm_numeric_kernels()
        _await_ready(ready)
        while True:
            frame = frames.recv()
            kind = frame[0]
            if kind == STOP:
                break
            if kind == RING:
                channel, batch = decoder.decode_ring(ring.read(frame[1]))
                local = channel_engine[channel.channel_id]
                stats[local].absorb(
                    engines[local].process_columns(channel, batch)
                )
                continue
            decoded = decoder.decode(frame)
            if decoded is not None:
                channel, batch = decoded
                local = channel_engine[channel.channel_id]
                if type(batch) is ColumnBatch:
                    stats[local].absorb(
                        engines[local].process_columns(channel, batch)
                    )
                else:
                    stats[local].absorb(
                        engines[local].process_batch(channel, batch)
                    )
        payload = [
            (
                shard,
                stats[local],
                engines[local].captured,
                engines[local].mop_stats(),
            )
            for local, shard in enumerate(shards)
        ]
        results.send(("ok", payload))
    except BaseException:  # noqa: BLE001 - must cross the process boundary
        results.send(("error", traceback.format_exc()))


def _execute_fragments(
    schedule,
    hosted,
    engine_of_shard,
    columnar,
    slot_of_shard,
    slot_index,
    relay_queues,
    buffered_locals,
    per_shard_stats,
) -> None:
    """Run the hosted fragments of a split plan in global topological order.

    The shared core of every relay execution path (inline and both
    process-mode worker bodies).  ``hosted`` is the set of shard indexes
    this caller owns; fragments on other shards are skipped — but their
    *rank* still matters: executing hosted fragments in ascending global
    component index guarantees a fragment only ever waits on relay frames
    from a strictly lower-rank fragment, which some worker is already
    draining (deadlock-freedom by rank induction).

    Relay edges route three ways:

    - producer and consumer hosted by the same caller — frames buffer in a
      plain list and replay through a :class:`BufferedRunSource`;
    - producer elsewhere — a :class:`StreamingRelaySource` pulls frames
      live off this caller's relay queue (``relay_queues[slot_index]``);
    - consumer elsewhere — the engine's relay tap ships frames straight to
      the consumer slot's queue mid-dispatch.

    ``buffered_locals`` is ``None`` for local feeds (each fragment drains
    its own driver sources, merge-ordered by ``source_order``) or a
    ``component -> [(channel, batch), ...]`` map for router feeds whose
    runs already crossed the wire (merged order, ``entry_order``).

    Relayed tuples are deducted from the consuming fragment's stats
    (:func:`deduct_relay_inputs`), so ``per_shard_stats`` aggregates to
    exactly the single-engine accounting.
    """
    stream_codecs: dict[int, RelayCodec] = {}
    for descriptor in schedule:
        if descriptor["shard"] not in hosted:
            continue
        for edge in descriptor["in_edges"]:
            if slot_of_shard[edge.from_shard] != slot_index:
                stream_codecs[edge.edge_id] = RelayCodec(
                    edge.edge_id, edge.channel, columnar=columnar
                )
    inbox = (
        RelayInbox(relay_queues[slot_index], stream_codecs)
        if stream_codecs
        else None
    )
    local_frames: dict[int, list] = {}
    for descriptor in schedule:
        if descriptor["shard"] not in hosted:
            continue
        shard = descriptor["shard"]
        engine = engine_of_shard[shard]
        edge_of = {edge.edge_id: edge for edge in descriptor["in_edges"]}
        order = (
            descriptor["source_order"]
            if buffered_locals is None
            else descriptor["entry_order"]
        )
        run_sources: list = []
        relay_sources: list = []
        for kind, ref in order:
            if kind == "source":
                run_sources.append(descriptor["local_sources"][ref])
            elif kind == "local":
                run_sources.append(
                    BufferedRunSource(
                        buffered_locals.get(descriptor["component"], [])
                    )
                )
            else:
                edge = edge_of[ref]
                if edge.edge_id in stream_codecs:
                    source = StreamingRelaySource(
                        edge.channel, edge.edge_id, inbox
                    )
                else:
                    codec = RelayCodec(
                        edge.edge_id, edge.channel, columnar=columnar
                    )
                    source = BufferedRunSource(
                        decode_local_frames(
                            local_frames.pop(edge.edge_id), codec
                        ),
                        channel=edge.channel,
                    )
                run_sources.append(source)
                relay_sources.append(source)
        outboxes = []
        for edge in descriptor["out_edges"]:
            target_slot = slot_of_shard[edge.to_shard]
            sink = (
                local_frames.setdefault(edge.edge_id, [])
                if target_slot == slot_index
                else relay_queues[target_slot]
            )
            outbox = RelayOutbox(edge.edge_id, edge.channel, sink, columnar)
            engine.install_relay_tap(edge.channel, on_run=outbox.ship)
            outboxes.append((edge, outbox))
        stats = engine.run(run_sources) if run_sources else RunStats()
        for source in relay_sources:
            deduct_relay_inputs(stats, source.delivered)
        per_shard_stats[shard].absorb(stats)
        for edge, outbox in outboxes:
            outbox.finish()
            engine.remove_relay_tap(edge.channel.channel_id)


def _run_local_fragments(
    shards,
    engine_of_shard,
    schedule,
    slot_of_shard,
    slot_index,
    relay_queues,
    columnar,
    leftover_lists,
    results,
    ready=None,
) -> None:
    """Worker body, local feed over a split plan (relay edges present)."""
    try:
        _warm_numeric_kernels()
        per_shard_stats = {shard: RunStats() for shard in shards}
        _await_ready(ready)
        _execute_fragments(
            schedule, set(shards), engine_of_shard, columnar,
            slot_of_shard, slot_index, relay_queues, None, per_shard_stats,
        )
        for shard, extra in zip(shards, leftover_lists):
            if extra:
                per_shard_stats[shard].absorb(
                    engine_of_shard[shard].run(extra)
                )
        payload = [
            (
                shard,
                per_shard_stats[shard],
                engine_of_shard[shard].captured,
                engine_of_shard[shard].mop_stats(),
            )
            for shard in shards
        ]
        results.send(("ok", payload))
    except BaseException:  # noqa: BLE001 - must cross the process boundary
        results.send(("error", traceback.format_exc()))


def _run_routed_fragments(
    shards,
    engine_of_shard,
    schedule,
    slot_of_shard,
    slot_index,
    relay_queues,
    columnar,
    frames,
    results,
    ready=None,
    ring=None,
) -> None:
    """Worker body, router feed over a split plan (relay edges present).

    Wire frames for a hosted fragment's entry channels buffer per fragment
    until the stop frame (the merged order is preserved verbatim; relay
    ordering needs the whole upstream feed anyway).  Frames for hosted
    channels outside every fragment — pass-through queries, unconsumed
    channels with a sink — process immediately, exactly like the no-relay
    worker.  After the stop frame the buffered fragments execute through
    :func:`_execute_fragments`; the coordinator broadcasts stop before any
    worker starts its fragments, so cross-worker relay waits are safe.
    """
    try:
        hosted = set(shards)
        channel_owner: dict[int, int] = {}
        channels = []
        for shard in shards:
            for channel in engine_of_shard[shard].plan.channels():
                channel_owner[channel.channel_id] = shard
                channels.append(channel)
        fragment_of_channel: dict[int, int] = {}
        for descriptor in schedule:
            if descriptor["shard"] in hosted:
                for channel_id in descriptor["entry_channels"]:
                    fragment_of_channel[channel_id] = descriptor["component"]
        decoder = WireDecoder(channels)
        buffered: dict[int, list] = {}
        per_shard_stats = {shard: RunStats() for shard in shards}
        _warm_numeric_kernels()
        _await_ready(ready)
        while True:
            frame = frames.recv()
            kind = frame[0]
            if kind == STOP:
                break
            if kind == RING:
                channel, batch = decoder.decode_ring(ring.read(frame[1]))
            else:
                decoded = decoder.decode(frame)
                if decoded is None:
                    continue
                channel, batch = decoded
            fragment = fragment_of_channel.get(channel.channel_id)
            if fragment is not None:
                buffered.setdefault(fragment, []).append((channel, batch))
                continue
            shard = channel_owner[channel.channel_id]
            engine = engine_of_shard[shard]
            if type(batch) is ColumnBatch:
                per_shard_stats[shard].absorb(
                    engine.process_columns(channel, batch)
                )
            else:
                per_shard_stats[shard].absorb(
                    engine.process_batch(channel, batch)
                )
        _execute_fragments(
            schedule, hosted, engine_of_shard, columnar,
            slot_of_shard, slot_index, relay_queues, buffered,
            per_shard_stats,
        )
        payload = [
            (
                shard,
                per_shard_stats[shard],
                engine_of_shard[shard].captured,
                engine_of_shard[shard].mop_stats(),
            )
            for shard in shards
        ]
        results.send(("ok", payload))
    except BaseException:  # noqa: BLE001 - must cross the process boundary
        results.send(("error", traceback.format_exc()))


class ShardedEngine:
    """Executes one plan as ``n_shards`` independent batched engines."""

    def __init__(
        self,
        plan: QueryPlan,
        n_shards: int,
        parallel: object = "auto",
        feed: str = "auto",
        capture_outputs: bool = False,
        batching: bool = True,
        max_batch: int = 1024,
        planner: Optional[ShardPlanner] = None,
        observe: bool = False,
        data_plane: str = "columnar",
        split: bool = True,
        worker_cap: Optional[int] = None,
    ):
        if feed not in ("auto", "local", "router"):
            raise PlanError(f"unknown feed strategy {feed!r}")
        if parallel not in ("auto", True, False):
            raise PlanError(f"parallel must be 'auto', True or False")
        if data_plane not in ("columnar", "pickle"):
            raise PlanError(
                f"data_plane must be 'columnar' or 'pickle', "
                f"got {data_plane!r}"
            )
        #: Router-feed transport: ``"columnar"`` packs runs into schema-
        #: interned columns (shared-memory rings in process mode, ``crun``
        #: frames inline), ``"pickle"`` keeps the legacy per-tuple wire.
        #: Unpackable runs fall back per run; outputs are identical.
        self.data_plane = data_plane
        #: ``split=False`` forces whole-component placement (the pre-relay
        #: behavior); the bench uses it as the unsplit baseline.
        self.shard_plan: ShardPlan = (planner or ShardPlanner()).partition(
            plan, n_shards, split=split
        )
        self.n_shards = n_shards
        self.parallel = parallel
        self.feed = feed
        self.capture_outputs = capture_outputs
        self.max_batch = max_batch
        self.observe = bool(observe)
        #: Test hook: cap (or raise, on a small machine) the worker count
        #: independently of ``os.cpu_count()`` so multi-worker relay
        #: exchange is exercisable on a 1-CPU host.
        self.worker_cap = worker_cap
        self.engines = [
            StreamEngine(
                subplan,
                capture_outputs=capture_outputs,
                batching=batching,
                max_batch=max_batch,
                observe=observe,
            )
            for subplan in self.shard_plan.subplans
        ]
        self.router = SourceRouter(self.shard_plan.channel_shard, n_shards)
        #: query_id -> captured outputs, merged across shards after a run.
        self.captured: dict = {}
        #: shard index -> per-m-op telemetry from the last run (process-mode
        #: workers run on forked engine copies, so their records are shipped
        #: back with the results rather than read off ``self.engines``).
        self.shard_mop_stats: list[dict] = [
            {} for __ in self.shard_plan.subplans
        ]

    # -- mode/feed resolution --------------------------------------------------------

    def _resolve_mode(self) -> str:
        if self.parallel is False or self.n_shards == 1:
            return "inline"
        if self.parallel is True:
            if not fork_available():
                return "inline"  # same-process fallback (Windows/spawn)
            return "process"
        return (
            "process"
            if fork_available() and multiprocessing.cpu_count() > 1
            else "inline"
        )

    def _resolve_feed(self) -> str:
        return "local" if self.feed in ("auto", "local") else "router"

    def _component_groups(self, routable):
        """Group routable sources by consuming plan component.

        Channels in different components share no m-ops and no state, so
        only channels feeding the *same* component need tuple-level
        timestamp interleaving; merging per group instead of globally lets
        a single-source component drain through the bulk ``iter_runs``
        path with full-length runs.  A global merge over k interleaved
        sources degenerates to run length 1 — per-tuple wire frames — which
        is exactly the dispatch collapse sharding exists to avoid.
        """
        channel_component: dict[int, int] = {}
        for component in self.shard_plan.components:
            for channel_id in component.entry_channel_ids:
                channel_component[channel_id] = component.index
        groups: dict[int, list] = {}
        for source in routable:
            # Channels outside every component (-1) merge conservatively
            # in one tuple-level group.
            key = channel_component.get(source.channel.channel_id, -1)
            groups.setdefault(key, []).append(source)
        return [groups[key] for key in sorted(groups)]

    # -- running ---------------------------------------------------------------------

    def run(self, sources: Sequence[StreamSource]) -> ShardedRunStats:
        """Drain ``sources`` through the shards; returns merged statistics.

        Source events are routed by entry channel — each shard sees exactly
        the (timestamp-ordered) subsequence on its own channels, so per-query
        outputs are byte-identical to the single-engine run over the same
        sources.
        """
        mode = self._resolve_mode()
        feed = self._resolve_feed()
        started = time.perf_counter()
        spawn = 0.0
        if mode == "process":
            # Worker lifecycle (fork + ready handshake before, join +
            # child interpreter teardown after) is excluded from the wall:
            # wall_seconds measures the drain a steady-state serve — whose
            # workers persist across runs — would see.  The drain ends when
            # the coordinator holds every shard's result.
            per_shard, captured, spawn, drained = self._run_process(
                sources, feed
            )
            wall = drained - started - spawn
        else:
            per_shard, captured = self._run_inline(sources, feed)
            wall = time.perf_counter() - started
        self.captured = captured
        return ShardedRunStats(
            per_shard=per_shard, wall_seconds=wall, mode=mode,
            spawn_seconds=spawn,
        )

    # -- inline ----------------------------------------------------------------------

    def _run_inline(self, sources, feed):
        if self.shard_plan.relays:
            return self._run_inline_fragments(sources, feed)
        per_shard: list[RunStats]
        if feed == "local":
            split = self.router.split_sources(sources)
            per_shard = [
                engine.run(shard_sources)
                for engine, shard_sources in zip(self.engines, split)
            ]
        else:
            per_shard = [RunStats() for __ in self.engines]
            decoders = [
                WireDecoder(engine.plan.channels()) for engine in self.engines
            ]
            routable, unrouted = self.router.split_routable(sources)
            encoder = WireEncoder()
            for group in self._component_groups(routable):
                for shard, frame in self.router.feed_frames(
                    group, self.max_batch,
                    columnar=self.data_plane == "columnar",
                    encoder=encoder,
                ):
                    decoded = decoders[shard].decode(frame)
                    if decoded is None:
                        continue
                    channel, batch = decoded
                    if type(batch) is ColumnBatch:
                        per_shard[shard].absorb(
                            self.engines[shard].process_columns(
                                channel, batch
                            )
                        )
                    else:
                        per_shard[shard].absorb(
                            self.engines[shard].process_batch(channel, batch)
                        )
            self._absorb_unrouted(per_shard, unrouted)
        captured = {}
        for engine in self.engines:
            captured.update(engine.captured)
        self.shard_mop_stats = [engine.mop_stats() for engine in self.engines]
        return per_shard, captured

    def _run_inline_fragments(self, sources, feed):
        """Inline execution when the plan has relay edges (split components).

        All fragments run in this process, in topological order, through
        the same :func:`_execute_fragments` core as process-mode workers —
        every relay edge still round-trips its runs through the
        :class:`~repro.shard.wire.RelayCodec`, so the inline path exercises
        the relay wire format byte-for-byte.  Router feeds additionally
        round-trip each fragment's own sources through the source wire
        first, exactly like the no-relay router path.
        """
        schedule, leftover = build_fragment_schedule(self.shard_plan, sources)
        columnar = self.data_plane == "columnar"
        engine_of_shard = dict(enumerate(self.engines))
        slot_of_shard = {shard: 0 for shard in engine_of_shard}
        per_shard_stats = {shard: RunStats() for shard in engine_of_shard}
        buffered_locals = None
        if feed == "router":
            decoders = [
                WireDecoder(engine.plan.channels()) for engine in self.engines
            ]
            encoder = WireEncoder()
            buffered_locals = {}
            for descriptor in schedule:
                if not descriptor["local_sources"]:
                    continue
                runs: list = []
                for shard, frame in self.router.feed_frames(
                    descriptor["local_sources"], self.max_batch,
                    columnar=columnar, encoder=encoder,
                ):
                    decoded = decoders[shard].decode(frame)
                    if decoded is not None:
                        runs.append(decoded)
                buffered_locals[descriptor["component"]] = runs
        _execute_fragments(
            schedule, set(engine_of_shard), engine_of_shard, columnar,
            slot_of_shard, 0, [None], buffered_locals, per_shard_stats,
        )
        if feed == "local":
            for shard, group in enumerate(self.router.split_sources(leftover)):
                if group:
                    per_shard_stats[shard].absorb(
                        self.engines[shard].run(group)
                    )
        else:
            routable, unrouted = self.router.split_routable(leftover)
            for group in self._component_groups(routable):
                for shard, frame in self.router.feed_frames(
                    group, self.max_batch, columnar=columnar, encoder=encoder,
                ):
                    decoded = decoders[shard].decode(frame)
                    if decoded is None:
                        continue
                    channel, batch = decoded
                    if type(batch) is ColumnBatch:
                        per_shard_stats[shard].absorb(
                            self.engines[shard].process_columns(channel, batch)
                        )
                    else:
                        per_shard_stats[shard].absorb(
                            self.engines[shard].process_batch(channel, batch)
                        )
            per_shard_list = [
                per_shard_stats[shard] for shard in range(len(self.engines))
            ]
            self._absorb_unrouted(per_shard_list, unrouted)
        per_shard = [
            per_shard_stats[shard] for shard in range(len(self.engines))
        ]
        captured = {}
        for engine in self.engines:
            captured.update(engine.captured)
        self.shard_mop_stats = [engine.mop_stats() for engine in self.engines]
        return per_shard, captured

    # -- process workers -------------------------------------------------------------

    def _worker_slots(self) -> list[list[int]]:
        """Group shard indexes into worker processes, at most one per CPU.

        Forking more workers than cores buys no parallelism — the extras
        just evict each other's caches and serialize through the scheduler
        — so a 1-CPU host gets a single worker hosting every shard engine
        (the process plane — wire, rings, result pipes — is exercised
        identically) and an N-CPU host gets ``min(shards, N)`` workers,
        shards distributed round-robin.
        """
        cpus = self.worker_cap or os.cpu_count() or 1
        slot_count = min(len(self.engines), max(1, cpus))
        slots: list[list[int]] = [[] for __ in range(slot_count)]
        for shard in range(len(self.engines)):
            slots[shard % slot_count].append(shard)
        return slots

    def _run_process(self, sources, feed):
        if self.shard_plan.relays:
            return self._run_process_fragments(sources, feed)
        context = multiprocessing.get_context("fork")
        slots = self._worker_slots()
        # One raw pipe per worker for the single result payload.  Unlike
        # mp.Queue there is no feeder thread: the worker's send completes
        # synchronously and the coordinator's wait() wakes on the first
        # ready pipe, so result latency is one context switch, and a dead
        # worker surfaces as EOF on its pipe instead of a silent hang.
        result_connections: list = []
        workers: list = []
        unrouted: list[StreamSource] = []
        # Ready handshake: every worker joins the barrier once it is forked
        # and imported, the coordinator joins last — the time to that point
        # is startup, everything after is drain.
        ready = context.Barrier(len(slots) + 1)
        spawn_started = time.perf_counter()
        if feed == "local":
            split = self.router.split_sources(sources)
            for slot in slots:
                receiver, sender = context.Pipe(duplex=False)
                result_connections.append(receiver)
                worker = context.Process(
                    target=_run_local,
                    args=(
                        slot,
                        [self.engines[shard] for shard in slot],
                        [split[shard] for shard in slot],
                        sender,
                        ready,
                    ),
                )
                worker.start()
                # Drop the coordinator's copy of the send end so a worker
                # death closes the pipe and wait() sees EOF.
                sender.close()
                workers.append(worker)
            _await_ready(ready)
            spawn = time.perf_counter() - spawn_started
        else:
            # Feed frames also travel over raw pipes: a send lands in the
            # kernel buffer immediately (no mp.Queue feeder thread holding
            # the GIL), so workers start draining while the pump is still
            # running.
            feed_senders: list = []
            rings: list = []
            slot_of_shard: dict[int, int] = {}
            use_rings = self.data_plane == "columnar"
            routable, unrouted = self.router.split_routable(sources)
            for slot_index, slot in enumerate(slots):
                for shard in slot:
                    slot_of_shard[shard] = slot_index
                frame_receiver, frame_sender = context.Pipe(duplex=False)
                feed_senders.append(frame_sender)
                # The ring is allocated before the fork so the worker
                # inherits the shared arena.
                ring = RingBuffer() if use_rings else None
                rings.append(ring)
                receiver, sender = context.Pipe(duplex=False)
                result_connections.append(receiver)
                worker = context.Process(
                    target=_run_routed,
                    args=(
                        slot,
                        [self.engines[shard] for shard in slot],
                        frame_receiver,
                        sender,
                        ready,
                        ring,
                    ),
                )
                worker.start()
                sender.close()
                frame_receiver.close()
                workers.append(worker)
            _await_ready(ready)
            spawn = time.perf_counter() - spawn_started
            if use_rings:
                self._pump_columnar(
                    routable, feed_senders, rings, slot_of_shard
                )
            else:
                encoder = WireEncoder()
                for group in self._component_groups(routable):
                    for shard, frame in self.router.feed_frames(
                        group, self.max_batch, encoder=encoder
                    ):
                        _send_frame(
                            feed_senders[slot_of_shard[shard]], frame
                        )
            for sender in feed_senders:
                _send_frame(sender, STOP_FRAME)
        per_shard, captured, drained = self._collect_worker_results(
            slots, workers, result_connections
        )
        self._absorb_unrouted(per_shard, unrouted)
        return per_shard, captured, spawn, drained

    def _collect_worker_results(self, slots, workers, result_connections):
        """Drain every worker's single result message; join and validate.

        Returns ``(per_shard, captured, drained_timestamp)``; raises
        :class:`PlanError` if any worker died or reported an error.
        """
        per_shard = [RunStats() for __ in self.engines]
        captured: dict = {}
        failures: list[str] = []
        pending = {
            connection: index
            for index, connection in enumerate(result_connections)
        }
        self.shard_mop_stats = [{} for __ in self.engines]
        while pending:
            done = mp_connection.wait(list(pending), timeout=1.0)
            if not done:
                # Forked siblings inherit earlier workers' send ends, which
                # can hold a dead worker's pipe open past its exit — fall
                # back to exitcode polling so a kill never hangs us here.
                for connection, index in list(pending.items()):
                    if workers[index].exitcode is not None:
                        del pending[connection]
                        failures.append(
                            f"worker for shards {slots[index]}: exited "
                            f"with code {workers[index].exitcode} without "
                            f"reporting a result"
                        )
                continue
            for connection in done:
                index = pending.pop(connection)
                try:
                    status, payload = connection.recv()
                except EOFError:
                    failures.append(
                        f"worker for shards {slots[index]}: closed its "
                        f"result pipe without reporting a result"
                    )
                    continue
                if status != "ok":
                    failures.append(
                        f"worker for shards {slots[index]}:\n{payload}"
                    )
                    continue
                for shard, stats, shard_captured, shard_mops in payload:
                    per_shard[shard] = stats
                    if shard_captured:
                        captured.update(shard_captured)
                    if shard_mops:
                        self.shard_mop_stats[shard] = shard_mops
        drained = time.perf_counter()
        for worker in workers:
            worker.join()
        for connection in result_connections:
            connection.close()
        if failures:
            raise PlanError(
                "sharded run failed in worker(s):\n" + "\n".join(failures)
            )
        return per_shard, captured, drained

    def _run_process_fragments(self, sources, feed):
        """Process execution when the plan has relay edges (split components).

        Same worker topology as the no-relay path, plus one ``mp.Queue``
        per worker slot for inbound relay frames: an upstream fragment's
        tap ships frames to its consumer slot's queue mid-dispatch, and
        the consumer's :class:`~repro.shard.relay.RelayInbox` demuxes them
        per edge.  Workers drain their hosted fragments in ascending global
        topological rank, so cross-worker waits always resolve (see
        :func:`_execute_fragments`).
        """
        context = multiprocessing.get_context("fork")
        slots = self._worker_slots()
        slot_of_shard = {
            shard: slot_index
            for slot_index, slot in enumerate(slots)
            for shard in slot
        }
        schedule, leftover = build_fragment_schedule(self.shard_plan, sources)
        columnar = self.data_plane == "columnar"
        # Allocated before the fork so every worker inherits every queue —
        # any fragment can ship to any slot.
        relay_queues = [context.Queue() for __ in slots]
        result_connections: list = []
        workers: list = []
        unrouted: list[StreamSource] = []
        ready = context.Barrier(len(slots) + 1)
        spawn_started = time.perf_counter()
        if feed == "local":
            leftover_split = self.router.split_sources(leftover)
            for slot_index, slot in enumerate(slots):
                receiver, sender = context.Pipe(duplex=False)
                result_connections.append(receiver)
                worker = context.Process(
                    target=_run_local_fragments,
                    args=(
                        slot,
                        {shard: self.engines[shard] for shard in slot},
                        schedule,
                        slot_of_shard,
                        slot_index,
                        relay_queues,
                        columnar,
                        [leftover_split[shard] for shard in slot],
                        sender,
                        ready,
                    ),
                )
                worker.start()
                sender.close()
                workers.append(worker)
            _await_ready(ready)
            spawn = time.perf_counter() - spawn_started
        else:
            feed_senders: list = []
            rings: list = []
            use_rings = columnar
            routable, unrouted = self.router.split_routable(sources)
            for slot_index, slot in enumerate(slots):
                frame_receiver, frame_sender = context.Pipe(duplex=False)
                feed_senders.append(frame_sender)
                ring = RingBuffer() if use_rings else None
                rings.append(ring)
                receiver, sender = context.Pipe(duplex=False)
                result_connections.append(receiver)
                worker = context.Process(
                    target=_run_routed_fragments,
                    args=(
                        slot,
                        {shard: self.engines[shard] for shard in slot},
                        schedule,
                        slot_of_shard,
                        slot_index,
                        relay_queues,
                        columnar,
                        frame_receiver,
                        sender,
                        ready,
                        ring,
                    ),
                )
                worker.start()
                sender.close()
                frame_receiver.close()
                workers.append(worker)
            _await_ready(ready)
            spawn = time.perf_counter() - spawn_started
            if use_rings:
                self._pump_columnar(
                    routable, feed_senders, rings, slot_of_shard
                )
            else:
                encoder = WireEncoder()
                for group in self._component_groups(routable):
                    for shard, frame in self.router.feed_frames(
                        group, self.max_batch, encoder=encoder
                    ):
                        _send_frame(
                            feed_senders[slot_of_shard[shard]], frame
                        )
            for sender in feed_senders:
                _send_frame(sender, STOP_FRAME)
        per_shard, captured, drained = self._collect_worker_results(
            slots, workers, result_connections
        )
        for queue in relay_queues:
            queue.close()
        self._absorb_unrouted(per_shard, unrouted)
        return per_shard, captured, spawn, drained

    def _pump_columnar(
        self, routable, feed_senders, rings, slot_of_shard
    ) -> None:
        """Feed the merged run stream over the zero-copy columnar plane.

        Each packable run is packed once; the ring of the worker hosting
        the owning shard gets the raw record (one copy in, announced by a
        ``ring`` marker on its ordered feed pipe), with a ``crun`` pipe
        frame as the full-ring / oversized-record fallback and the pickle
        wire for unpackable runs.  Schema frames broadcast to every
        worker, exactly like :meth:`SourceRouter.feed_frames`.  Sources
        merge per plan component (:meth:`_component_groups`), so
        independent components ship full-length packed runs instead of a
        per-tuple interleave.
        """
        encoder = WireEncoder()
        for group in self._component_groups(routable):
            for channel, batch in merge_source_runs(group, self.max_batch):
                shard = self.router.shard_of_channel(channel.channel_id)
                slot = slot_of_shard[shard]
                packed = (
                    batch
                    if type(batch) is ColumnBatch
                    else ColumnBatch.from_channel_tuples(batch)
                )
                if packed is None:
                    for frame in encoder.encode_run(channel, batch):
                        if frame[0] == SCHEMA:
                            for sender in feed_senders:
                                _send_frame(sender, frame)
                        else:
                            _send_frame(feed_senders[slot], frame)
                    continue
                frames_out = encoder.encode_run_columns(channel, packed)
                crun = frames_out[-1]
                for frame in frames_out[:-1]:
                    for sender in feed_senders:
                        _send_frame(sender, frame)
                ring = rings[slot]
                shipped = False
                if ring is not None:
                    parts, total = pack_run_record(
                        channel.channel_id, crun[2], packed
                    )
                    if ring.try_write(parts, total):
                        _send_frame(feed_senders[slot], (RING, total))
                        shipped = True
                if not shipped:
                    _send_frame(feed_senders[slot], crun)

    def _absorb_unrouted(
        self, per_shard: list[RunStats], unrouted: list[StreamSource]
    ) -> None:
        """Count events on channels no shard consumes (router feed only).

        The single engine counts every source event whether or not anything
        consumes it; the wire feed cannot ship runs for channels no decoder
        knows, so their input accounting happens here, attributed to the
        channel's fallback shard so the aggregate matches exactly.
        """
        for source in unrouted:
            shard = self.router.shard_of_channel(source.channel.channel_id)
            per_shard[shard].absorb(_count_source_events(source))

    # -- introspection ---------------------------------------------------------------

    @property
    def state_size(self) -> int:
        return sum(engine.state_size for engine in self.engines)

    def mop_stats(self) -> dict[int, dict]:
        """Per-m-op telemetry merged across shards from the last run (shards
        share no m-ops, so the merge is a disjoint union)."""
        merged: dict[int, dict] = {}
        for shard_mops in self.shard_mop_stats:
            merged.update(shard_mops)
        return merged

    def describe(self) -> str:
        lines = [
            f"ShardedEngine: {self.n_shards} shards "
            f"({self.shard_plan.effective_shards} active)",
            self.shard_plan.describe(),
        ]
        return "\n".join(lines)
