"""Serializable wire format for cross-process shard feeding and control.

When the sharded engine streams source runs to worker processes, channel
tuples must cross a process boundary.  Shipping the rich objects
(:class:`~repro.streams.tuples.StreamTuple` with its schema,
:class:`~repro.streams.channel.ChannelTuple`) through pickle per event is
wasteful: the schema is identical for every tuple of a stream and the
channel is identified by its id on both sides.  The wire format strips a
run down to plain Python primitives::

    ("run", channel_id, schema_token, [(ts, membership, values), ...])
    ("schema", schema_token, ((name, type), ...))          # once per schema

Schemas are interned: the encoder assigns a small integer token the first
time it sees a schema and emits one ``schema`` frame before the first run
using it; the decoder rebuilds the :class:`~repro.streams.schema.Schema`
once and reuses it for every later tuple.  Channels are resolved from the
decoder's registry — worker processes inherit the shard sub-plan (fork), so
the channel objects already exist on the far side and only the id crosses.

Mixed-schema runs are supported (a channel's member streams may carry
union-compatible but distinct schemas): the per-tuple entry then widens to
``(ts, membership, values, schema_token)``; the homogeneous fast path keeps
the 3-tuple.

**Command frames** layer the process-mode lifecycle protocol on the same
transport (:mod:`repro.shard.proc`)::

    (<kind>, seq, payload_bytes)          # coordinator -> worker
    ("reply", seq, "ok"|"err", bytes)     # worker -> coordinator

``kind`` is one of :data:`COMMAND_KINDS` (register / unregister /
reoptimize / rebalance / stats / snapshot / checkpoint / restore).
Payloads are explicit pickle
blobs, so a frame is always a flat tuple of primitives + bytes: the
fault-injection harness can drop or duplicate a command frame without
understanding its payload, and the sequence number gives workers exactly-
once apply semantics under retransmission (duplicates are answered from a
reply cache, never re-applied).

**Transfer blobs** (:func:`encode_transfer` / :func:`decode_transfer`)
serialize a :class:`~repro.runtime.runtime.ComponentTransfer` for
cross-process rebalance: the plan subgraph, logical queries and captured
histories pickle as-is, while live executors are reduced to their
``snapshot_state()`` payloads (window contents, instance stores, partial
aggregates) keyed by ``mop_id`` — the receiver rebuilds executors from the
plan and re-seeds them, because compiled predicate closures cannot cross a
process boundary.
"""

from __future__ import annotations

import pickle
from typing import Iterable, Optional, Sequence

from repro.errors import ChannelError, CheckpointError
from repro.streams.channel import Channel, ChannelTuple
from repro.streams.schema import Attribute, Schema
from repro.streams.tuples import StreamTuple

#: Data frame kinds.
RUN = "run"
SCHEMA = "schema"
STOP = "stop"

STOP_FRAME = (STOP,)

#: Command frame kinds (the process-mode lifecycle protocol).
REGISTER = "register"
UNREGISTER = "unregister"
REOPTIMIZE = "reoptimize"
REBALANCE = "rebalance"
STATS = "stats"
SNAPSHOT = "snapshot"
CHECKPOINT = "checkpoint"
RESTORE = "restore"
#: Re-adoption handshake: a restarted coordinator asks a still-live worker
#: for its incarnation, highest applied sequence number, stream cursor and
#: active queries, then reconciles them against its journal.  Workers
#: answer ``hello`` outside the reply cache (it is read-only and its seq
#: comes from the *new* coordinator's numbering, which must not collide
#: with cached replies to the old one).
HELLO = "hello"
#: Liveness probe: answered immediately (outside the reply cache, like
#: ``hello`` — it is read-only), so the coordinator can distinguish a hung
#: worker from a slow one without mutating any state.
PING = "ping"
REPLY = "reply"

COMMAND_KINDS = frozenset(
    {
        REGISTER,
        UNREGISTER,
        REOPTIMIZE,
        REBALANCE,
        STATS,
        SNAPSHOT,
        CHECKPOINT,
        RESTORE,
        HELLO,
        PING,
    }
)

#: Reply statuses.
OK = "ok"
ERR = "err"


def encode_command(kind: str, seq: int, payload=None, trace=None) -> tuple:
    """Build a command frame: ``(kind, seq, payload_bytes[, trace])``.

    ``trace`` is an optional ``(trace_id, parent_span_id)`` pair carried as
    a trailing element — absent on untraced frames, so the wire format is
    byte-compatible with pre-telemetry peers when tracing is off.
    """
    if kind not in COMMAND_KINDS:
        raise ChannelError(f"unknown command kind {kind!r}")
    blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    if trace is None:
        return (kind, seq, blob)
    return (kind, seq, blob, tuple(trace))


def decode_command(frame: tuple) -> tuple:
    """Decode a command frame into ``(kind, seq, payload)``.

    Any trailing trace element is ignored here; use :func:`frame_trace` to
    read it — keeping the common decode path oblivious to tracing.
    """
    kind, seq, blob = frame[0], frame[1], frame[2]
    if kind not in COMMAND_KINDS:
        raise ChannelError(f"unknown command kind {kind!r}")
    return kind, seq, pickle.loads(blob)


def frame_trace(frame: tuple):
    """The ``(trace_id, parent_span_id)`` pair a frame carries, or None.

    Command frames carry it as element 3, run frames as element 4; schema,
    stop and reply frames are never traced.
    """
    kind = frame[0]
    if kind in COMMAND_KINDS:
        return frame[3] if len(frame) > 3 else None
    if kind == RUN:
        return frame[4] if len(frame) > 4 else None
    return None


def encode_reply(seq: int, status: str, payload=None) -> tuple:
    """Build a reply frame: ``("reply", seq, status, payload_bytes)``."""
    if status not in (OK, ERR):
        raise ChannelError(f"unknown reply status {status!r}")
    return (
        REPLY,
        seq,
        status,
        pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL),
    )


def decode_reply(frame: tuple) -> tuple:
    """Decode a reply frame into ``(seq, status, payload)``."""
    kind, seq, status, blob = frame
    if kind != REPLY:
        raise ChannelError(f"expected a reply frame, got kind {kind!r}")
    return seq, status, pickle.loads(blob)


def encode_transfer(transfer) -> bytes:
    """Serialize a :class:`ComponentTransfer` for a process hop.

    Live executors (``transfer.entries``) are reduced to their state
    snapshots; everything else — plan subgraph, logical queries, captured
    output histories — pickles directly.  The donor must not keep serving
    the component after encoding (export semantics), so handing the live
    containers to pickle is safe.

    A transfer that already crossed a process boundary carries its state
    in ``transfer.state`` with no live executors; re-encoding such a
    transfer (the coordinator does this when splicing differential
    checkpoints) starts from that carried state so the round trip is
    lossless.
    """
    state = dict(getattr(transfer, "state", None) or {})
    for mop_id, (__signature, executor) in transfer.entries.items():
        snapshot = executor.snapshot_state()
        if snapshot is not None:
            state[mop_id] = snapshot
    return pickle.dumps(
        {
            "plan_transfer": transfer.plan_transfer,
            "queries": transfer.queries,
            "captured": transfer.captured,
            "state": state,
            "state_carried": transfer.state_carried,
        },
        protocol=pickle.HIGHEST_PROTOCOL,
    )


def decode_transfer(data: bytes):
    """Rebuild a :class:`ComponentTransfer` from :func:`encode_transfer`.

    The result carries no live executors (``entries`` is empty);
    ``import_component`` builds fresh ones from the plan subgraph and
    re-seeds them from ``state``.
    """
    from repro.runtime.runtime import ComponentTransfer

    payload = pickle.loads(data)
    return ComponentTransfer(
        plan_transfer=payload["plan_transfer"],
        queries=payload["queries"],
        entries={},
        captured=payload["captured"],
        state_carried=payload["state_carried"],
        state=payload["state"],
    )


#: Required keys of a checkpoint manifest payload (the ``checkpoint``
#: command's reply), and of each of its component entries.
_MANIFEST_KEYS = frozenset(
    {"version", "cursor", "components", "captured_extra", "stats"}
)
_COMPONENT_KEYS = frozenset({"queries", "blob", "state_carried", "captured_offsets"})


def encode_manifest(
    version: int,
    cursor: dict,
    components: Sequence[dict],
    captured_extra: dict,
    stats=None,
    base: Optional[dict] = None,
) -> dict:
    """Build a checkpoint manifest payload (flat primitives + bytes).

    A manifest is a worker's reply to a ``checkpoint`` command: the
    checkpoint round's ``version``, the worker's **stream cursor** (source
    stream name → events processed, the consistency cut the coordinator
    cross-checks against its own shipped counts), one entry per live
    component (its query ids, the :func:`encode_transfer` blob, the operator
    state it carries and per-query captured-history offsets at the cut), a
    pickled side-channel of captured histories owned by no live component
    (queries unregistered since their last output, whose histories must
    still survive a restore), and the worker's cumulative ``RunStats`` at
    the cut — restoring them keeps post-recovery aggregate counters
    identical to a never-crashed serve.

    ``base`` marks a **differential** manifest: ``{query_id: offset}``
    captured-history cuts the coordinator sent with the checkpoint
    command.  Component blobs and ``captured_extra`` then carry only the
    history *suffixes* past those offsets — the coordinator splices them
    onto its previous materialized checkpoint before storing, so what
    lands in the :class:`~repro.shard.checkpoint.CheckpointStore` is
    always self-contained.  ``base=None`` (absent on the wire) is a full
    manifest.
    """
    payload = {
        "version": int(version),
        "cursor": {str(name): int(count) for name, count in cursor.items()},
        "components": [
            {
                "queries": tuple(component["queries"]),
                "blob": component["blob"],
                "state_carried": int(component["state_carried"]),
                "captured_offsets": dict(component["captured_offsets"]),
            }
            for component in components
        ],
        "captured_extra": pickle.dumps(
            captured_extra, protocol=pickle.HIGHEST_PROTOCOL
        ),
        "stats": pickle.dumps(stats, protocol=pickle.HIGHEST_PROTOCOL),
    }
    if base is not None:
        payload["base"] = {str(qid): int(off) for qid, off in base.items()}
    return payload


def decode_manifest(payload: dict) -> dict:
    """Validate and normalize a checkpoint manifest payload.

    Raises :class:`~repro.errors.CheckpointError` on a malformed manifest —
    a corrupt checkpoint must fail loudly at capture time, never at restore
    time when the state it guards is already gone.  The ``captured_extra``
    and ``stats`` blobs stay pickled: the coordinator stores them opaquely
    (only the restoring worker unpickles them), so decoding here would
    deserialize entire captured histories on the serving path just to
    throw them away.
    """
    if not isinstance(payload, dict) or not _MANIFEST_KEYS <= set(payload):
        raise CheckpointError(
            f"malformed checkpoint manifest: expected keys "
            f"{sorted(_MANIFEST_KEYS)}, got {payload!r:.200}"
        )
    for key in ("captured_extra", "stats"):
        if not isinstance(payload[key], bytes):
            raise CheckpointError(f"manifest {key} must be pickled bytes")
    for component in payload["components"]:
        if not _COMPONENT_KEYS <= set(component):
            raise CheckpointError(
                f"malformed manifest component entry: expected keys "
                f"{sorted(_COMPONENT_KEYS)}, got {sorted(component)}"
            )
        if not isinstance(component["blob"], bytes):
            raise CheckpointError(
                "manifest component blob must be bytes (encode_transfer output)"
            )
    base = payload.get("base")
    return {
        "version": payload["version"],
        "cursor": dict(payload["cursor"]),
        "components": [dict(component) for component in payload["components"]],
        "captured_extra": payload["captured_extra"],
        "stats": payload["stats"],
        "base": dict(base) if base is not None else None,
    }


class WireEncoder:
    """Encodes (channel, batch) runs into wire frames, interning schemas."""

    def __init__(self):
        # Keyed by id() for speed but holding the Schema itself: the
        # reference pins the object, so a collected schema can never hand
        # its address (and token) to a different schema.
        self._schema_tokens: dict[int, tuple[Schema, int]] = {}
        self._next_token = 0

    def _token_of(self, schema: Schema, frames: list) -> int:
        entry = self._schema_tokens.get(id(schema))
        if entry is not None:
            return entry[1]
        token = self._next_token
        self._next_token += 1
        self._schema_tokens[id(schema)] = (schema, token)
        frames.append(
            (
                SCHEMA,
                token,
                tuple((a.name, a.type) for a in schema.attributes),
            )
        )
        return token

    def encode_run(
        self, channel: Channel, batch: Sequence[ChannelTuple], trace=None
    ) -> list[tuple]:
        """Encode one run; returns the frames to ship, in order.

        The last frame is always the ``run`` frame; any needed ``schema``
        frames precede it.  ``trace`` — an optional ``(trace_id,
        parent_span_id)`` pair — rides as a trailing element of the run
        frame only (schema frames are broadcast interning state, not work,
        so they are never traced).
        """
        frames: list[tuple] = []
        if not batch:
            return frames
        first_schema = batch[0].tuple.schema
        token = self._token_of(first_schema, frames)
        homogeneous = all(ct.tuple.schema is first_schema for ct in batch)
        if homogeneous:
            payload = [
                (ct.tuple.ts, ct.membership, ct.tuple.values) for ct in batch
            ]
        else:
            payload = [
                (
                    ct.tuple.ts,
                    ct.membership,
                    ct.tuple.values,
                    self._token_of(ct.tuple.schema, frames),
                )
                for ct in batch
            ]
        if trace is None:
            frames.append((RUN, channel.channel_id, token, payload))
        else:
            frames.append(
                (RUN, channel.channel_id, token, payload, tuple(trace))
            )
        return frames


class WireDecoder:
    """Decodes wire frames back into (channel, batch) runs."""

    def __init__(self, channels: Iterable[Channel]):
        self._channels: dict[int, Channel] = {
            channel.channel_id: channel for channel in channels
        }
        self._schemas: dict[int, Schema] = {}

    def add_channel(self, channel: Channel) -> None:
        self._channels[channel.channel_id] = channel

    def decode(self, frame: tuple):
        """Decode one frame.

        Returns ``None`` for bookkeeping frames (``schema``), the pair
        ``(channel, batch)`` for ``run`` frames, and raises on unknown
        channels/schemas/kinds — a malformed feed must fail loudly, not
        silently drop events.
        """
        kind = frame[0]
        if kind == SCHEMA:
            __, token, attributes = frame
            self._schemas[token] = Schema(
                [Attribute(name, type_) for name, type_ in attributes]
            )
            return None
        if kind == RUN:
            channel_id, token, payload = frame[1], frame[2], frame[3]
            channel = self._channels.get(channel_id)
            if channel is None:
                raise ChannelError(
                    f"wire run for unknown channel id {channel_id}"
                )
            default_schema = self._schemas.get(token)
            if default_schema is None:
                raise ChannelError(f"wire run references unknown schema {token}")
            schemas = self._schemas
            batch = []
            for entry in payload:
                if len(entry) == 3:
                    ts, membership, values = entry
                    schema = default_schema
                else:
                    ts, membership, values, entry_token = entry
                    schema = schemas.get(entry_token)
                    if schema is None:
                        raise ChannelError(
                            f"wire tuple references unknown schema {entry_token}"
                        )
                batch.append(
                    ChannelTuple(StreamTuple(schema, values, ts), membership)
                )
            return channel, batch
        if kind == STOP:
            raise ChannelError("stop frame must be handled by the feed loop")
        raise ChannelError(f"unknown wire frame kind {kind!r}")
