"""Serializable wire format for cross-process shard feeding and control.

When the sharded engine streams source runs to worker processes, channel
tuples must cross a process boundary.  Shipping the rich objects
(:class:`~repro.streams.tuples.StreamTuple` with its schema,
:class:`~repro.streams.channel.ChannelTuple`) through pickle per event is
wasteful: the schema is identical for every tuple of a stream and the
channel is identified by its id on both sides.  The wire format strips a
run down to plain Python primitives::

    ("run", channel_id, schema_token, [(ts, membership, values), ...])
    ("schema", schema_token, ((name, type), ...))          # once per schema

Schemas are interned: the encoder assigns a small integer token the first
time it sees a schema and emits one ``schema`` frame before the first run
using it; the decoder rebuilds the :class:`~repro.streams.schema.Schema`
once and reuses it for every later tuple.  Channels are resolved from the
decoder's registry — worker processes inherit the shard sub-plan (fork), so
the channel objects already exist on the far side and only the id crosses.

Mixed-schema runs are supported (a channel's member streams may carry
union-compatible but distinct schemas): the per-tuple entry then widens to
``(ts, membership, values, schema_token)``; the homogeneous fast path keeps
the 3-tuple.

**Command frames** layer the process-mode lifecycle protocol on the same
transport (:mod:`repro.shard.proc`)::

    (<kind>, seq, payload_bytes)          # coordinator -> worker
    ("reply", seq, "ok"|"err", bytes)     # worker -> coordinator

``kind`` is one of :data:`COMMAND_KINDS` (register / unregister /
reoptimize / rebalance / stats / snapshot / checkpoint / restore).
Payloads are explicit pickle
blobs, so a frame is always a flat tuple of primitives + bytes: the
fault-injection harness can drop or duplicate a command frame without
understanding its payload, and the sequence number gives workers exactly-
once apply semantics under retransmission (duplicates are answered from a
reply cache, never re-applied).

**Transfer blobs** (:func:`encode_transfer` / :func:`decode_transfer`)
serialize a :class:`~repro.runtime.runtime.ComponentTransfer` for
cross-process rebalance: the plan subgraph, logical queries and captured
histories pickle as-is, while live executors are reduced to their
``snapshot_state()`` payloads (window contents, instance stores, partial
aggregates) keyed by ``mop_id`` — the receiver rebuilds executors from the
plan and re-seeds them, because compiled predicate closures cannot cross a
process boundary.
"""

from __future__ import annotations

import pickle
import struct
from typing import Iterable, Optional, Sequence

import numpy as np

from repro.errors import ChannelError, CheckpointError
from repro.streams.channel import Channel, ChannelTuple
from repro.streams.columns import ColumnBatch
from repro.streams.schema import Attribute, Schema
from repro.streams.tuples import StreamTuple

#: Data frame kinds.
RUN = "run"
#: Columnar run frame: ``("crun", channel_id, token, (count, ts, membership,
#: columns)[, trace])``.  Arrays ride as numpy objects — a queue transport
#: pickles them natively, the ring transport never sees this frame (packed
#: records replace it; see :func:`pack_run_record`).
CRUN = "crun"
SCHEMA = "schema"
#: Token compaction: ``("schema-retire", (token, ...))`` tells decoders to
#: drop retired interning entries.  Tokens are monotonic and never reused,
#: so a late retire frame can never invalidate a token still in flight.
SCHEMA_RETIRE = "schema-retire"
#: Ring marker: ``("ring", nbytes[, trace])`` on the ordered queue announces
#: one packed record of ``nbytes`` in the shard's shared-memory ring.  The
#: marker, not the ring, carries ordering: data stays FIFO with lifecycle
#: frames because every record is announced in ship order.
RING = "ring"
#: Relay frame: ``("relay", edge_id, seq, inner_frame)`` re-emits one
#: shard's derived output channel into another shard's entry.  The inner
#: frame is any data frame of this module — ``crun`` for packable runs,
#: ``run`` as the pickle fallback, ``schema`` for interning state, or a
#: ``ring`` marker when the receiving shard has a shared-memory ring.
#: ``seq`` numbers every frame of one edge contiguously from 0 so the
#: receiver can detect dropped or reordered relay traffic, and the edge id
#: scopes schema tokens: each edge carries its own encoder/decoder pair
#: (:class:`RelayCodec`), so relay interning never collides with the
#: source feed's tokens.
RELAY = "relay"
#: End of one relay edge: ``("relay-eof", edge_id, final_seq)``.  The
#: receiver checks ``final_seq`` equals the frames it consumed — a cheap
#: end-to-end completeness proof per edge.
RELAY_EOF = "relay-eof"
STOP = "stop"

STOP_FRAME = (STOP,)

#: Command frame kinds (the process-mode lifecycle protocol).
REGISTER = "register"
UNREGISTER = "unregister"
REOPTIMIZE = "reoptimize"
REBALANCE = "rebalance"
STATS = "stats"
SNAPSHOT = "snapshot"
CHECKPOINT = "checkpoint"
RESTORE = "restore"
#: Re-adoption handshake: a restarted coordinator asks a still-live worker
#: for its incarnation, highest applied sequence number, stream cursor and
#: active queries, then reconciles them against its journal.  Workers
#: answer ``hello`` outside the reply cache (it is read-only and its seq
#: comes from the *new* coordinator's numbering, which must not collide
#: with cached replies to the old one).
HELLO = "hello"
#: Liveness probe: answered immediately (outside the reply cache, like
#: ``hello`` — it is read-only), so the coordinator can distinguish a hung
#: worker from a slow one without mutating any state.
PING = "ping"
#: Install (or re-home) a relay tap on a worker: the worker taps the named
#: query's sink channel and buffers ``(seq, run)`` pairs until collected.
RELAY_TAP = "relay-tap"
#: Drain a worker's relay tap buffers: the reply carries the buffered
#: ``(alias, seq, run)`` entries in emission order.  Sequence numbers are
#: per-edge and survive checkpoint/restore, so the coordinator's relay
#: cursor dedupes replayed runs exactly once.
COLLECT_RELAY = "collect-relay"
REPLY = "reply"

COMMAND_KINDS = frozenset(
    {
        REGISTER,
        UNREGISTER,
        REOPTIMIZE,
        REBALANCE,
        STATS,
        SNAPSHOT,
        CHECKPOINT,
        RESTORE,
        HELLO,
        PING,
        RELAY_TAP,
        COLLECT_RELAY,
    }
)

#: Reply statuses.
OK = "ok"
ERR = "err"


def encode_command(kind: str, seq: int, payload=None, trace=None) -> tuple:
    """Build a command frame: ``(kind, seq, payload_bytes[, trace])``.

    ``trace`` is an optional ``(trace_id, parent_span_id)`` pair carried as
    a trailing element — absent on untraced frames, so the wire format is
    byte-compatible with pre-telemetry peers when tracing is off.
    """
    if kind not in COMMAND_KINDS:
        raise ChannelError(f"unknown command kind {kind!r}")
    blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    if trace is None:
        return (kind, seq, blob)
    return (kind, seq, blob, tuple(trace))


def decode_command(frame: tuple) -> tuple:
    """Decode a command frame into ``(kind, seq, payload)``.

    Any trailing trace element is ignored here; use :func:`frame_trace` to
    read it — keeping the common decode path oblivious to tracing.
    Malformed frames (too short, wrong shape) raise :class:`ChannelError`
    naming the offending frame — never a bare ``IndexError``.
    """
    if not isinstance(frame, tuple) or len(frame) < 3:
        raise ChannelError(
            f"malformed command frame {frame!r:.200}: expected "
            f"(kind, seq, payload_bytes[, trace])"
        )
    kind, seq, blob = frame[0], frame[1], frame[2]
    if kind not in COMMAND_KINDS:
        raise ChannelError(f"unknown command kind {kind!r}")
    return kind, seq, pickle.loads(blob)


def frame_trace(frame: tuple):
    """The ``(trace_id, parent_span_id)`` pair a frame carries, or None.

    Command frames carry it as element 3, run frames as element 4; schema,
    stop and reply frames are never traced.
    """
    kind = frame[0]
    if kind in COMMAND_KINDS:
        return frame[3] if len(frame) > 3 else None
    if kind == RUN or kind == CRUN:
        return frame[4] if len(frame) > 4 else None
    if kind == RING:
        return frame[2] if len(frame) > 2 else None
    return None


def encode_reply(seq: int, status: str, payload=None) -> tuple:
    """Build a reply frame: ``("reply", seq, status, payload_bytes)``."""
    if status not in (OK, ERR):
        raise ChannelError(f"unknown reply status {status!r}")
    return (
        REPLY,
        seq,
        status,
        pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL),
    )


def decode_reply(frame: tuple) -> tuple:
    """Decode a reply frame into ``(seq, status, payload)``."""
    kind, seq, status, blob = frame
    if kind != REPLY:
        raise ChannelError(f"expected a reply frame, got kind {kind!r}")
    return seq, status, pickle.loads(blob)


def encode_transfer(transfer) -> bytes:
    """Serialize a :class:`ComponentTransfer` for a process hop.

    Live executors (``transfer.entries``) are reduced to their state
    snapshots; everything else — plan subgraph, logical queries, captured
    output histories — pickles directly.  The donor must not keep serving
    the component after encoding (export semantics), so handing the live
    containers to pickle is safe.

    A transfer that already crossed a process boundary carries its state
    in ``transfer.state`` with no live executors; re-encoding such a
    transfer (the coordinator does this when splicing differential
    checkpoints) starts from that carried state so the round trip is
    lossless.
    """
    state = dict(getattr(transfer, "state", None) or {})
    for mop_id, (__signature, executor) in transfer.entries.items():
        snapshot = executor.snapshot_state()
        if snapshot is not None:
            state[mop_id] = snapshot
    return pickle.dumps(
        {
            "plan_transfer": transfer.plan_transfer,
            "queries": transfer.queries,
            "captured": transfer.captured,
            "state": state,
            "state_carried": transfer.state_carried,
        },
        protocol=pickle.HIGHEST_PROTOCOL,
    )


def decode_transfer(data: bytes):
    """Rebuild a :class:`ComponentTransfer` from :func:`encode_transfer`.

    The result carries no live executors (``entries`` is empty);
    ``import_component`` builds fresh ones from the plan subgraph and
    re-seeds them from ``state``.
    """
    from repro.runtime.runtime import ComponentTransfer

    payload = pickle.loads(data)
    return ComponentTransfer(
        plan_transfer=payload["plan_transfer"],
        queries=payload["queries"],
        entries={},
        captured=payload["captured"],
        state_carried=payload["state_carried"],
        state=payload["state"],
    )


#: Required keys of a checkpoint manifest payload (the ``checkpoint``
#: command's reply), and of each of its component entries.
_MANIFEST_KEYS = frozenset(
    {"version", "cursor", "components", "captured_extra", "stats"}
)
_COMPONENT_KEYS = frozenset({"queries", "blob", "state_carried", "captured_offsets"})


def encode_manifest(
    version: int,
    cursor: dict,
    components: Sequence[dict],
    captured_extra: dict,
    stats=None,
    base: Optional[dict] = None,
    relays: Optional[dict] = None,
) -> dict:
    """Build a checkpoint manifest payload (flat primitives + bytes).

    A manifest is a worker's reply to a ``checkpoint`` command: the
    checkpoint round's ``version``, the worker's **stream cursor** (source
    stream name → events processed, the consistency cut the coordinator
    cross-checks against its own shipped counts), one entry per live
    component (its query ids, the :func:`encode_transfer` blob, the operator
    state it carries and per-query captured-history offsets at the cut), a
    pickled side-channel of captured histories owned by no live component
    (queries unregistered since their last output, whose histories must
    still survive a restore), and the worker's cumulative ``RunStats`` at
    the cut — restoring them keeps post-recovery aggregate counters
    identical to a never-crashed serve.

    ``base`` marks a **differential** manifest: ``{query_id: offset}``
    captured-history cuts the coordinator sent with the checkpoint
    command.  Component blobs and ``captured_extra`` then carry only the
    history *suffixes* past those offsets — the coordinator splices them
    onto its previous materialized checkpoint before storing, so what
    lands in the :class:`~repro.shard.checkpoint.CheckpointStore` is
    always self-contained.  ``base=None`` (absent on the wire) is a full
    manifest.

    ``relays`` — ``{alias: next_seq}`` relay-tap sequence counters at the
    cut — rides the manifest so a restored worker resumes numbering relay
    runs exactly where the checkpoint left off: the log-suffix replay then
    regenerates the same ``(alias, seq)`` pairs and the coordinator's
    relay cursors dedupe them (exactly-once relay replay).  Absent on the
    wire when the worker taps nothing, so manifests stay byte-compatible
    with pre-relay peers.
    """
    payload = {
        "version": int(version),
        "cursor": {str(name): int(count) for name, count in cursor.items()},
        "components": [
            {
                "queries": tuple(component["queries"]),
                "blob": component["blob"],
                "state_carried": int(component["state_carried"]),
                "captured_offsets": dict(component["captured_offsets"]),
            }
            for component in components
        ],
        "captured_extra": pickle.dumps(
            captured_extra, protocol=pickle.HIGHEST_PROTOCOL
        ),
        "stats": pickle.dumps(stats, protocol=pickle.HIGHEST_PROTOCOL),
    }
    if base is not None:
        payload["base"] = {str(qid): int(off) for qid, off in base.items()}
    if relays:
        payload["relays"] = {
            str(alias): int(seq) for alias, seq in relays.items()
        }
    return payload


def decode_manifest(payload: dict) -> dict:
    """Validate and normalize a checkpoint manifest payload.

    Raises :class:`~repro.errors.CheckpointError` on a malformed manifest —
    a corrupt checkpoint must fail loudly at capture time, never at restore
    time when the state it guards is already gone.  The ``captured_extra``
    and ``stats`` blobs stay pickled: the coordinator stores them opaquely
    (only the restoring worker unpickles them), so decoding here would
    deserialize entire captured histories on the serving path just to
    throw them away.
    """
    if not isinstance(payload, dict) or not _MANIFEST_KEYS <= set(payload):
        raise CheckpointError(
            f"malformed checkpoint manifest: expected keys "
            f"{sorted(_MANIFEST_KEYS)}, got {payload!r:.200}"
        )
    for key in ("captured_extra", "stats"):
        if not isinstance(payload[key], bytes):
            raise CheckpointError(f"manifest {key} must be pickled bytes")
    for component in payload["components"]:
        if not _COMPONENT_KEYS <= set(component):
            raise CheckpointError(
                f"malformed manifest component entry: expected keys "
                f"{sorted(_COMPONENT_KEYS)}, got {sorted(component)}"
            )
        if not isinstance(component["blob"], bytes):
            raise CheckpointError(
                "manifest component blob must be bytes (encode_transfer output)"
            )
    base = payload.get("base")
    return {
        "version": payload["version"],
        "cursor": dict(payload["cursor"]),
        "components": [dict(component) for component in payload["components"]],
        "captured_extra": payload["captured_extra"],
        "stats": payload["stats"],
        "base": dict(base) if base is not None else None,
        "relays": dict(payload.get("relays") or {}),
    }


# -- ring record codec ---------------------------------------------------------------
#
# A packed columnar run crosses the shared-memory ring as one flat record:
#
#     header  <qqqqBH   channel_id, token, count, uniform_mask, memb_mode, ncols
#     ts      count * 8 bytes (int64)
#     [membership  count * 8 bytes (int64), only when memb_mode == 1]
#     per column:  1-byte tag, then
#                  'q'/'d' -> count * 8 raw array bytes (no pickle)
#                  'o'     -> <q blob length + pickle blob
#
# The coder hands back a *parts list* (header bytes + array memoryviews), so
# the ring write copies each numeric column exactly once — straight from the
# array's buffer into shared memory.  The reader rebuilds columns with
# ``np.frombuffer`` over the received bytes: no per-value work either way.

_RING_HEADER = struct.Struct("<qqqqBH")
_RING_BLOB = struct.Struct("<q")


def _array_bytes(array) -> memoryview:
    if not array.flags["C_CONTIGUOUS"]:
        array = np.ascontiguousarray(array)
    return memoryview(array).cast("B")


def pack_run_record(
    channel_id: int, token: int, batch: ColumnBatch
) -> tuple[list, int]:
    """Flatten a columnar run into ``(parts, total_bytes)`` for a ring write."""
    count = batch.count
    membership = batch.membership
    if isinstance(membership, int):
        parts = [
            _RING_HEADER.pack(
                channel_id, token, count, membership, 0, len(batch.columns)
            ),
            _array_bytes(batch.ts),
        ]
    else:
        parts = [
            _RING_HEADER.pack(
                channel_id, token, count, 0, 1, len(batch.columns)
            ),
            _array_bytes(batch.ts),
            _array_bytes(membership),
        ]
    for tag, data in batch.columns:
        if tag == "o":
            blob = pickle.dumps(list(data), protocol=pickle.HIGHEST_PROTOCOL)
            parts.append(b"o")
            parts.append(_RING_BLOB.pack(len(blob)))
            parts.append(blob)
        else:
            parts.append(tag.encode("ascii"))
            parts.append(_array_bytes(data))
    total = sum(
        part.nbytes if isinstance(part, memoryview) else len(part)
        for part in parts
    )
    return parts, total


def unpack_run_record(record: bytes) -> tuple[int, int, int, object, object, tuple]:
    """Parse one ring record into raw columnar pieces.

    Returns ``(channel_id, token, count, ts, membership, columns)``; the
    caller (:meth:`WireDecoder.decode_ring`) resolves channel and schema.
    Raises :class:`ChannelError` on a malformed or truncated record.
    """
    view = memoryview(record)
    try:
        channel_id, token, count, uniform, memb_mode, ncols = (
            _RING_HEADER.unpack_from(view, 0)
        )
        offset = _RING_HEADER.size
        ts = np.frombuffer(view, dtype=np.int64, count=count, offset=offset)
        offset += count * 8
        if memb_mode:
            membership = np.frombuffer(
                view, dtype=np.int64, count=count, offset=offset
            )
            offset += count * 8
        else:
            membership = uniform
        columns = []
        for __ in range(ncols):
            tag = chr(view[offset])
            offset += 1
            if tag == "q" or tag == "d":
                dtype = np.int64 if tag == "q" else np.float64
                data = np.frombuffer(
                    view, dtype=dtype, count=count, offset=offset
                )
                offset += count * 8
            elif tag == "o":
                (blob_len,) = _RING_BLOB.unpack_from(view, offset)
                offset += _RING_BLOB.size
                data = pickle.loads(view[offset : offset + blob_len])
                offset += blob_len
            else:
                raise ChannelError(f"unknown ring column tag {tag!r}")
            columns.append((tag, data))
    except (struct.error, ValueError, IndexError) as exc:
        raise ChannelError(
            f"malformed ring record ({len(record)} bytes): {exc}"
        ) from None
    if offset != len(record):
        raise ChannelError(
            f"ring record length mismatch: parsed {offset} of "
            f"{len(record)} bytes"
        )
    return channel_id, token, count, ts, membership, tuple(columns)


class WireEncoder:
    """Encodes (channel, batch) runs into wire frames, interning schemas."""

    def __init__(self):
        # Keyed by id() for speed but holding the Schema itself: the
        # reference pins the object, so a collected schema can never hand
        # its address (and token) to a different schema.
        self._schema_tokens: dict[int, tuple[Schema, int]] = {}
        self._next_token = 0

    def _token_of(self, schema: Schema, frames: list) -> int:
        entry = self._schema_tokens.get(id(schema))
        if entry is not None:
            return entry[1]
        token = self._next_token
        self._next_token += 1
        self._schema_tokens[id(schema)] = (schema, token)
        frames.append(
            (
                SCHEMA,
                token,
                tuple((a.name, a.type) for a in schema.attributes),
            )
        )
        return token

    @property
    def interned_schemas(self) -> int:
        """Number of schemas currently interned (soak tests watch this)."""
        return len(self._schema_tokens)

    def retire_schemas(self, live_schemas: Iterable[Schema]) -> Optional[tuple]:
        """Drop interned schemas outside ``live_schemas``; returns the
        ``schema-retire`` frame to broadcast, or None when nothing retired.

        Tokens are monotonic and never reused, so retiring cannot alias a
        token still referenced by an in-flight frame; a retired schema that
        reappears simply re-interns under a fresh token (the decoder learns
        it from the schema frame preceding its next run, as on first use).
        """
        live_ids = {id(schema) for schema in live_schemas}
        retired = [
            token
            for key, (__, token) in self._schema_tokens.items()
            if key not in live_ids
        ]
        if not retired:
            return None
        self._schema_tokens = {
            key: entry
            for key, entry in self._schema_tokens.items()
            if key in live_ids
        }
        return (SCHEMA_RETIRE, tuple(sorted(retired)))

    def schema_frames(self) -> list[tuple]:
        """Schema frames for every live interned schema, in token order.

        This is the replay prefix a freshly (re)spawned decoder needs —
        regenerating it from the live table is what keeps the coordinator's
        recorded frame history bounded under query churn.
        """
        return [
            (
                SCHEMA,
                token,
                tuple((a.name, a.type) for a in schema.attributes),
            )
            for schema, token in sorted(
                self._schema_tokens.values(), key=lambda entry: entry[1]
            )
        ]

    def encode_run(
        self, channel: Channel, batch: Sequence[ChannelTuple], trace=None
    ) -> list[tuple]:
        """Encode one run; returns the frames to ship, in order.

        The last frame is always the ``run`` frame; any needed ``schema``
        frames precede it.  ``trace`` — an optional ``(trace_id,
        parent_span_id)`` pair — rides as a trailing element of the run
        frame only (schema frames are broadcast interning state, not work,
        so they are never traced).

        Single pass: entries are built on the homogeneous fast path (3-
        tuples, no per-tuple token lookup) until the first schema change,
        at which point the prefix is widened once and the rest of the
        batch continues on the mixed path.
        """
        frames: list[tuple] = []
        if not batch:
            return frames
        first_schema = batch[0].tuple.schema
        token = self._token_of(first_schema, frames)
        payload: list[tuple] = []
        append = payload.append
        mixed = False
        for channel_tuple in batch:
            tuple_ = channel_tuple.tuple
            schema = tuple_.schema
            if not mixed:
                if schema is first_schema:
                    append(
                        (tuple_.ts, channel_tuple.membership, tuple_.values)
                    )
                    continue
                # First schema change: widen the homogeneous prefix to
                # 4-tuples once, then stay on the mixed path.
                payload = [(ts, mem, values, token) for ts, mem, values in payload]
                append = payload.append
                mixed = True
            append(
                (
                    tuple_.ts,
                    channel_tuple.membership,
                    tuple_.values,
                    self._token_of(schema, frames),
                )
            )
        if trace is None:
            frames.append((RUN, channel.channel_id, token, payload))
        else:
            frames.append(
                (RUN, channel.channel_id, token, payload, tuple(trace))
            )
        return frames

    def encode_run_columns(
        self, channel: Channel, batch: ColumnBatch, trace=None
    ) -> list[tuple]:
        """Encode a packed columnar run as a ``crun`` frame (+ schema frames).

        The queue-transport sibling of :func:`pack_run_record`: arrays ride
        the frame as numpy objects, used when a shard has no ring (pickle
        data plane with columnar sources) or a record outgrows the ring.
        """
        frames: list[tuple] = []
        token = self._token_of(batch.schema, frames)
        payload = (batch.count, batch.ts, batch.membership, batch.columns)
        if trace is None:
            frames.append((CRUN, channel.channel_id, token, payload))
        else:
            frames.append(
                (CRUN, channel.channel_id, token, payload, tuple(trace))
            )
        return frames

    def token_for(self, schema: Schema, frames: list) -> int:
        """Public interning hook for ring shipping: returns the schema's
        token, appending a schema frame to ``frames`` on first use."""
        return self._token_of(schema, frames)


class WireDecoder:
    """Decodes wire frames back into (channel, batch) runs."""

    def __init__(self, channels: Iterable[Channel]):
        self._channels: dict[int, Channel] = {
            channel.channel_id: channel for channel in channels
        }
        self._schemas: dict[int, Schema] = {}

    def add_channel(self, channel: Channel) -> None:
        self._channels[channel.channel_id] = channel

    def decode(self, frame: tuple):
        """Decode one frame.

        Returns ``None`` for bookkeeping frames (``schema``), the pair
        ``(channel, batch)`` for ``run`` frames, and raises on unknown
        channels/schemas/kinds — a malformed feed must fail loudly, not
        silently drop events.
        """
        kind = frame[0]
        if kind == SCHEMA:
            __, token, attributes = frame
            self._schemas[token] = Schema(
                [Attribute(name, type_) for name, type_ in attributes]
            )
            return None
        if kind == SCHEMA_RETIRE:
            for token in frame[1]:
                self._schemas.pop(token, None)
            return None
        if kind == RUN:
            channel_id, token, payload = frame[1], frame[2], frame[3]
            channel = self._channels.get(channel_id)
            if channel is None:
                raise ChannelError(
                    f"wire run for unknown channel id {channel_id}"
                )
            default_schema = self._schemas.get(token)
            if default_schema is None:
                raise ChannelError(f"wire run references unknown schema {token}")
            schemas = self._schemas
            batch = []
            for entry in payload:
                try:
                    width = len(entry)
                except TypeError:
                    width = -1
                if width == 3:
                    ts, membership, values = entry
                    schema = default_schema
                elif width == 4:
                    ts, membership, values, entry_token = entry
                    schema = schemas.get(entry_token)
                    if schema is None:
                        raise ChannelError(
                            f"wire tuple references unknown schema {entry_token}"
                        )
                else:
                    raise ChannelError(
                        f"malformed wire run entry {entry!r:.200}: expected "
                        f"(ts, membership, values[, schema_token])"
                    )
                batch.append(
                    ChannelTuple(StreamTuple(schema, values, ts), membership)
                )
            return channel, batch
        if kind == CRUN:
            channel_id, token, payload = frame[1], frame[2], frame[3]
            channel = self._channels.get(channel_id)
            if channel is None:
                raise ChannelError(
                    f"wire run for unknown channel id {channel_id}"
                )
            schema = self._schemas.get(token)
            if schema is None:
                raise ChannelError(f"wire run references unknown schema {token}")
            try:
                count, ts, membership, columns = payload
            except (TypeError, ValueError):
                raise ChannelError(
                    f"malformed columnar run payload {payload!r:.200}: "
                    f"expected (count, ts, membership, columns)"
                ) from None
            if len(columns) != len(schema):
                raise ChannelError(
                    f"columnar run width {len(columns)} does not match "
                    f"schema width {len(schema)}"
                )
            return channel, ColumnBatch(schema, count, ts, membership, columns)
        if kind == STOP:
            raise ChannelError("stop frame must be handled by the feed loop")
        raise ChannelError(f"unknown wire frame kind {kind!r}")

    def decode_ring(self, record: bytes):
        """Decode one packed ring record into ``(channel, ColumnBatch)``."""
        channel_id, token, count, ts, membership, columns = unpack_run_record(
            record
        )
        channel = self._channels.get(channel_id)
        if channel is None:
            raise ChannelError(f"ring record for unknown channel id {channel_id}")
        schema = self._schemas.get(token)
        if schema is None:
            raise ChannelError(f"ring record references unknown schema {token}")
        if len(columns) != len(schema):
            raise ChannelError(
                f"ring record width {len(columns)} does not match schema "
                f"width {len(schema)}"
            )
        return channel, ColumnBatch(schema, count, ts, membership, columns)


class RelayCodec:
    """Per-edge framing for cross-shard channel re-emission.

    One codec instance lives on each side of a relay edge: the producing
    shard encodes every tapped run of the bridge channel into ``relay``
    frames, the consuming shard decodes them back into batches.  The codec
    owns a private :class:`WireEncoder`/:class:`WireDecoder` pair, so relay
    schema tokens are interned per edge and can never collide with the
    tokens of the source feed (or of another edge) sharing the transport.

    Frames of one edge are numbered contiguously from 0; ``decode`` raises
    :class:`~repro.errors.ChannelError` on any gap or reorder, and the
    terminating ``relay-eof`` frame carries the final count so a silently
    truncated edge is detected rather than absorbed.

    ``columnar=True`` packs each run into a ``crun`` inner frame when its
    rows share one schema, falling back to the pickle ``run`` frame per
    run; ``columnar=False`` forces the pickle plane (the equivalence
    oracle).
    """

    def __init__(self, edge_id: int, channel: Channel, columnar: bool = True):
        self.edge_id = edge_id
        self.channel = channel
        self.columnar = columnar
        self._encoder = WireEncoder()
        self._decoder = WireDecoder([channel])
        self._next_send = 0
        self._next_recv = 0

    @property
    def sent(self) -> int:
        return self._next_send

    @property
    def received(self) -> int:
        return self._next_recv

    def encode(self, batch) -> list[tuple]:
        """Encode one tapped run (channel tuples or a ``ColumnBatch``)."""
        if self.columnar:
            packed = (
                batch
                if type(batch) is ColumnBatch
                else ColumnBatch.from_channel_tuples(batch)
            )
            if packed is not None:
                inner = self._encoder.encode_run_columns(self.channel, packed)
            else:
                inner = self._encoder.encode_run(self.channel, list(batch))
        else:
            if type(batch) is ColumnBatch:
                batch = batch.channel_tuples()
            inner = self._encoder.encode_run(self.channel, list(batch))
        frames = []
        for frame in inner:
            frames.append((RELAY, self.edge_id, self._next_send, frame))
            self._next_send += 1
        return frames

    def encode_eof(self) -> tuple:
        """The edge's terminating frame, carrying the final frame count."""
        return (RELAY_EOF, self.edge_id, self._next_send)

    def decode(self, frame: tuple):
        """Decode one relay frame; returns ``(channel, batch)`` or None.

        None means a bookkeeping inner frame (schema interning).  Raises
        :class:`ChannelError` on a frame for another edge, a sequence gap,
        or a malformed inner frame.
        """
        if not isinstance(frame, tuple) or len(frame) != 4 or frame[0] != RELAY:
            raise ChannelError(
                f"malformed relay frame {frame!r:.200}: expected "
                f"(relay, edge_id, seq, inner_frame)"
            )
        __, edge_id, seq, inner = frame
        if edge_id != self.edge_id:
            raise ChannelError(
                f"relay frame for edge {edge_id} on codec for edge "
                f"{self.edge_id}"
            )
        if seq != self._next_recv:
            raise ChannelError(
                f"relay edge {self.edge_id} sequence gap: expected "
                f"{self._next_recv}, got {seq}"
            )
        self._next_recv += 1
        return self._decoder.decode(inner)

    def decode_eof(self, frame: tuple) -> None:
        """Verify the edge's terminating frame against consumed frames."""
        if not isinstance(frame, tuple) or len(frame) != 3 or frame[0] != RELAY_EOF:
            raise ChannelError(
                f"malformed relay-eof frame {frame!r:.200}"
            )
        __, edge_id, final_seq = frame
        if edge_id != self.edge_id:
            raise ChannelError(
                f"relay-eof for edge {edge_id} on codec for edge "
                f"{self.edge_id}"
            )
        if final_seq != self._next_recv:
            raise ChannelError(
                f"relay edge {self.edge_id} truncated: sender reports "
                f"{final_seq} frames, receiver consumed {self._next_recv}"
            )
