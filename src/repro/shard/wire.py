"""Serializable tuple/batch wire format for cross-process shard feeding.

When the sharded engine streams source runs to worker processes, channel
tuples must cross a process boundary.  Shipping the rich objects
(:class:`~repro.streams.tuples.StreamTuple` with its schema,
:class:`~repro.streams.channel.ChannelTuple`) through pickle per event is
wasteful: the schema is identical for every tuple of a stream and the
channel is identified by its id on both sides.  The wire format strips a
run down to plain Python primitives::

    ("run", channel_id, schema_token, [(ts, membership, values), ...])
    ("schema", schema_token, ((name, type), ...))          # once per schema

Schemas are interned: the encoder assigns a small integer token the first
time it sees a schema and emits one ``schema`` frame before the first run
using it; the decoder rebuilds the :class:`~repro.streams.schema.Schema`
once and reuses it for every later tuple.  Channels are resolved from the
decoder's registry — worker processes inherit the shard sub-plan (fork), so
the channel objects already exist on the far side and only the id crosses.

Mixed-schema runs are supported (a channel's member streams may carry
union-compatible but distinct schemas): the per-tuple entry then widens to
``(ts, membership, values, schema_token)``; the homogeneous fast path keeps
the 3-tuple.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.errors import ChannelError
from repro.streams.channel import Channel, ChannelTuple
from repro.streams.schema import Attribute, Schema
from repro.streams.tuples import StreamTuple

#: Frame kinds.
RUN = "run"
SCHEMA = "schema"
STOP = "stop"

STOP_FRAME = (STOP,)


class WireEncoder:
    """Encodes (channel, batch) runs into wire frames, interning schemas."""

    def __init__(self):
        # Keyed by id() for speed but holding the Schema itself: the
        # reference pins the object, so a collected schema can never hand
        # its address (and token) to a different schema.
        self._schema_tokens: dict[int, tuple[Schema, int]] = {}
        self._next_token = 0

    def _token_of(self, schema: Schema, frames: list) -> int:
        entry = self._schema_tokens.get(id(schema))
        if entry is not None:
            return entry[1]
        token = self._next_token
        self._next_token += 1
        self._schema_tokens[id(schema)] = (schema, token)
        frames.append(
            (
                SCHEMA,
                token,
                tuple((a.name, a.type) for a in schema.attributes),
            )
        )
        return token

    def encode_run(
        self, channel: Channel, batch: Sequence[ChannelTuple]
    ) -> list[tuple]:
        """Encode one run; returns the frames to ship, in order.

        The last frame is always the ``run`` frame; any needed ``schema``
        frames precede it.
        """
        frames: list[tuple] = []
        if not batch:
            return frames
        first_schema = batch[0].tuple.schema
        token = self._token_of(first_schema, frames)
        homogeneous = all(ct.tuple.schema is first_schema for ct in batch)
        if homogeneous:
            payload = [
                (ct.tuple.ts, ct.membership, ct.tuple.values) for ct in batch
            ]
        else:
            payload = [
                (
                    ct.tuple.ts,
                    ct.membership,
                    ct.tuple.values,
                    self._token_of(ct.tuple.schema, frames),
                )
                for ct in batch
            ]
        frames.append((RUN, channel.channel_id, token, payload))
        return frames


class WireDecoder:
    """Decodes wire frames back into (channel, batch) runs."""

    def __init__(self, channels: Iterable[Channel]):
        self._channels: dict[int, Channel] = {
            channel.channel_id: channel for channel in channels
        }
        self._schemas: dict[int, Schema] = {}

    def add_channel(self, channel: Channel) -> None:
        self._channels[channel.channel_id] = channel

    def decode(self, frame: tuple):
        """Decode one frame.

        Returns ``None`` for bookkeeping frames (``schema``), the pair
        ``(channel, batch)`` for ``run`` frames, and raises on unknown
        channels/schemas/kinds — a malformed feed must fail loudly, not
        silently drop events.
        """
        kind = frame[0]
        if kind == SCHEMA:
            __, token, attributes = frame
            self._schemas[token] = Schema(
                [Attribute(name, type_) for name, type_ in attributes]
            )
            return None
        if kind == RUN:
            __, channel_id, token, payload = frame
            channel = self._channels.get(channel_id)
            if channel is None:
                raise ChannelError(
                    f"wire run for unknown channel id {channel_id}"
                )
            default_schema = self._schemas.get(token)
            if default_schema is None:
                raise ChannelError(f"wire run references unknown schema {token}")
            schemas = self._schemas
            batch = []
            for entry in payload:
                if len(entry) == 3:
                    ts, membership, values = entry
                    schema = default_schema
                else:
                    ts, membership, values, entry_token = entry
                    schema = schemas.get(entry_token)
                    if schema is None:
                        raise ChannelError(
                            f"wire tuple references unknown schema {entry_token}"
                        )
                batch.append(
                    ChannelTuple(StreamTuple(schema, values, ts), membership)
                )
            return channel, batch
        if kind == STOP:
            raise ChannelError("stop frame must be handled by the feed loop")
        raise ChannelError(f"unknown wire frame kind {kind!r}")
