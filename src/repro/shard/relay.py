"""Relay transport: re-emitting a derived channel into another shard's entry.

A :class:`~repro.shard.planner.RelayEdge` connects two fragments of a cut
component.  The producing fragment's engine gets a
:class:`~repro.engine.executor.RelayTap` on the bridge channel, so every run
dispatched on it is captured (or streamed) in emission order; the captured
runs cross the shard boundary as ``relay`` wire frames
(:class:`~repro.shard.wire.RelayCodec` — columnar ``crun`` payloads with
pickle fallback, per-edge sequence numbers) and re-enter the consuming
fragment as a *source*.

Ordering is the whole point.  A fragment's entry sources — its own share of
the driver's sources plus one relayed bridge — are merged by timestamp
exactly like the single engine merges the original sources, with the relay
source occupying the *producing fragment's* position in the driver order, so
timestamp ties break the same way they would have had the bridge tuples been
produced mid-dispatch.  Fragments execute in topological index order
(producers before consumers — the planner renumbers them that way), which
also makes the multi-worker exchange deadlock-free: a worker draining its
fragments in ascending global rank only ever waits for frames that a
lower-rank fragment (already running or finished elsewhere) will send.

Because the consuming engine counts relayed tuples as *entry* events while
the producing engine already counted the very same tuples flowing through
its dispatch, :func:`deduct_relay_inputs` subtracts the delivered tuples
from the consumer's input/physical counters — aggregate accounting stays
byte-identical to the single-engine run.
"""

from __future__ import annotations

from collections import deque
from queue import Empty
from typing import Iterator, Optional, Sequence

from repro.engine.metrics import RunStats
from repro.errors import ChannelError
from repro.shard.wire import RELAY, RELAY_EOF, RelayCodec
from repro.streams.channel import Channel, ChannelTuple
from repro.streams.columns import ColumnBatch


def _batch_length(batch) -> int:
    return batch.count if type(batch) is ColumnBatch else len(batch)


def _slice_batch(batch, start: int, stop: int):
    if type(batch) is ColumnBatch:
        return batch.slice(start, stop)
    return batch[start:stop]


class BufferedRunSource:
    """Replays captured ``(channel, batch)`` runs as a stream source.

    Used for relay edges whose producer already ran to completion (inline
    mode, or both fragments hosted by one worker) and for routed feeds
    buffered per fragment.  Batches may be row lists or ``ColumnBatch``es;
    ``iter_runs`` re-chunks to the engine's run cap, ``__iter__``
    materializes rows for the timestamp heap merge.
    """

    def __init__(
        self,
        runs: Sequence[tuple[Channel, object]],
        channel: Optional[Channel] = None,
    ):
        self.runs = list(runs)
        if channel is None and self.runs:
            channel = self.runs[0][0]
        self.channel = channel
        #: Tuples handed to the consuming engine (drained sources deliver
        #: everything; the stats deduction reads this).
        self.delivered = 0

    def __iter__(self) -> Iterator[tuple[Channel, ChannelTuple]]:
        for channel, batch in self.runs:
            if type(batch) is ColumnBatch:
                batch = batch.channel_tuples()
            for channel_tuple in batch:
                self.delivered += 1
                yield channel, channel_tuple

    def iter_runs(self, max_run: int):
        for channel, batch in self.runs:
            length = _batch_length(batch)
            for start in range(0, length, max_run):
                chunk = _slice_batch(batch, start, min(start + max_run, length))
                self.delivered += _batch_length(chunk)
                yield channel, chunk


class RelayInbox:
    """Demultiplexes ``relay`` frames from one inbound queue across edges.

    One inbox per worker: producers anywhere push frames for any of the
    worker's inbound edges onto the same queue (per-edge FIFO holds because
    each edge has exactly one producing fragment).  ``next_batch`` buffers
    frames for other edges while waiting for the requested one, and returns
    ``None`` once the edge's ``relay-eof`` arrived and its buffer drained.
    """

    def __init__(
        self, queue, codecs: dict[int, RelayCodec], timeout: float = 60.0
    ):
        self._queue = queue
        self._codecs = codecs
        #: Starvation bound: a producer worker that died before shipping the
        #: edge's EOF would otherwise hang this worker forever; timing out
        #: turns the deadlock into an error the coordinator can report.
        self._timeout = timeout
        self._buffers: dict[int, deque] = {
            edge_id: deque() for edge_id in codecs
        }
        self._done: set[int] = set()

    def next_batch(self, edge_id: int):
        buffer = self._buffers[edge_id]
        while True:
            if buffer:
                return buffer.popleft()
            if edge_id in self._done:
                return None
            try:
                frame = self._queue.get(timeout=self._timeout)
            except Empty:
                raise ChannelError(
                    f"relay edge {edge_id} starved: no frame within "
                    f"{self._timeout}s (producer worker dead?)"
                ) from None
            kind = frame[0]
            incoming = frame[1]
            codec = self._codecs.get(incoming)
            if codec is None:
                raise ChannelError(
                    f"relay frame for unknown edge {incoming!r}"
                )
            if kind == RELAY_EOF:
                codec.decode_eof(frame)
                self._done.add(incoming)
                continue
            if kind != RELAY:
                raise ChannelError(f"unexpected frame on relay inbox: {kind!r}")
            decoded = codec.decode(frame)
            if decoded is not None:
                self._buffers[incoming].append(decoded)


class StreamingRelaySource:
    """A relay entry fed live from a :class:`RelayInbox`.

    The consuming engine's merge pulls tuples (or runs) off this source
    while the producing fragment is still dispatching on another worker;
    pulls block on the inbox queue until the next frame or the edge's EOF.
    """

    def __init__(self, channel: Channel, edge_id: int, inbox: RelayInbox):
        self.channel = channel
        self.edge_id = edge_id
        self._inbox = inbox
        self.delivered = 0

    def __iter__(self) -> Iterator[tuple[Channel, ChannelTuple]]:
        while True:
            decoded = self._inbox.next_batch(self.edge_id)
            if decoded is None:
                return
            channel, batch = decoded
            if type(batch) is ColumnBatch:
                batch = batch.channel_tuples()
            for channel_tuple in batch:
                self.delivered += 1
                yield channel, channel_tuple

    def iter_runs(self, max_run: int):
        while True:
            decoded = self._inbox.next_batch(self.edge_id)
            if decoded is None:
                return
            channel, batch = decoded
            length = _batch_length(batch)
            for start in range(0, length, max_run):
                chunk = _slice_batch(batch, start, min(start + max_run, length))
                self.delivered += _batch_length(chunk)
                yield channel, chunk


class RelayOutbox:
    """Encodes one out-edge's runs and routes the frames to their consumer.

    ``sink`` is either a ``put``-able queue (consumer hosted elsewhere) or a
    plain list (consumer hosted by the same worker / the inline loop, which
    wraps the decoded buffer in a :class:`BufferedRunSource` afterwards).
    The tap's ``on_run`` callback plugs straight into :meth:`ship`, so
    frames leave mid-dispatch on the streaming path.
    """

    def __init__(self, edge_id: int, channel: Channel, sink, columnar: bool):
        self.codec = RelayCodec(edge_id, channel, columnar=columnar)
        self._sink = sink
        self._put = getattr(sink, "put", None)

    def ship(self, batch) -> None:
        if not batch:
            return
        for frame in self.codec.encode(batch):
            if self._put is not None:
                self._put(frame)
            else:
                self._sink.append(frame)

    def finish(self) -> None:
        frame = self.codec.encode_eof()
        if self._put is not None:
            self._put(frame)
        else:
            self._sink.append(frame)


def decode_local_frames(
    frames: Sequence, codec: RelayCodec
) -> list[tuple[Channel, object]]:
    """Decode a worker-local edge's frame buffer into replayable runs."""
    runs: list[tuple[Channel, object]] = []
    for frame in frames:
        if frame[0] == RELAY_EOF:
            codec.decode_eof(frame)
            continue
        decoded = codec.decode(frame)
        if decoded is not None:
            runs.append(decoded)
    return runs


def deduct_relay_inputs(stats: RunStats, delivered: int) -> None:
    """Remove a relay entry's double-counted tuples from consumer stats.

    The producing engine already counted these tuples flowing through its
    dispatch (``physical_events``) and they were never *source* events, so
    the consumer's entry accounting of them — one logical event, one
    physical input and one physical event per tuple on a singleton bridge
    channel — is subtracted to keep the sharded aggregate identical to the
    single-engine run.
    """
    stats.input_events -= delivered
    stats.physical_input_events -= delivered
    stats.physical_events -= delivered


def build_fragment_schedule(shard_plan, sources: Sequence) -> list[dict]:
    """Plan the per-fragment execution order, sources and relay wiring.

    Returns ``(schedule, leftover)``: one descriptor per component in
    topological index order, plus the driver sources on channels no
    fragment consumes (the caller accounts those per owning shard)::

        {
          "component": int, "shard": int,
          "local_sources": [StreamSource, ...],  # driver order preserved
          "local_position": int,                 # min driver index (or big)
          "in_edges": [RelayEdge, ...], "out_edges": [RelayEdge, ...],
          "source_order": [("source", i) | ("relay", edge_id), ...],
          "entry_order": [("local", None) | ("relay", edge_id), ...],
        }

    The two order lists are the merge position contract: local sources
    keep their driver positions and a relayed bridge inherits its
    producing fragment's effective position (recursively, the earliest
    driver source that feeds it), so timestamp ties break exactly as in
    the single engine, where bridge tuples surfaced during their driving
    source's dispatch.  ``source_order`` interleaves individual local
    sources (local-feed mode); ``entry_order`` collapses them into one
    ``("local", None)`` entry for feeds that already merged the fragment's
    own channels into a single buffered stream (router mode).
    """
    by_component: dict[int, dict] = {}
    channel_component: dict[int, int] = {}
    for component in shard_plan.components:
        by_component[component.index] = {
            "component": component.index,
            "shard": shard_plan.assignment[component.index],
            "entry_channels": frozenset(component.entry_channel_ids),
            "local_sources": [],
            "local_positions": [],
            "local_position": len(sources),
            "in_edges": [],
            "out_edges": [],
            "source_order": [],
            "entry_order": [],
        }
        for channel_id in component.entry_channel_ids:
            channel_component[channel_id] = component.index
    leftover = []
    for position, source in enumerate(sources):
        owner = channel_component.get(source.channel.channel_id)
        if owner is None:
            leftover.append(source)
            continue
        descriptor = by_component[owner]
        descriptor["local_sources"].append(source)
        descriptor["local_positions"].append(position)
        descriptor["local_position"] = min(
            descriptor["local_position"], position
        )
    for edge in shard_plan.relays:
        by_component[edge.to_component]["in_edges"].append(edge)
        by_component[edge.from_component]["out_edges"].append(edge)
    schedule = [by_component[index] for index in sorted(by_component)]
    effective: dict[int, int] = {}
    for descriptor in schedule:
        position = descriptor["local_position"]
        for edge in descriptor["in_edges"]:
            position = min(position, effective[edge.from_component])
        effective[descriptor["component"]] = position
        # Fully interleaved per-source order (local feed) ...
        entries = [
            (local_position, 0, ("source", index))
            for index, local_position in enumerate(
                descriptor["local_positions"]
            )
        ]
        for edge in descriptor["in_edges"]:
            entries.append(
                (effective[edge.from_component], 1, ("relay", edge.edge_id))
            )
        entries.sort(key=lambda e: e[:2])
        descriptor["source_order"] = [entry for __, __tie, entry in entries]
        # ... and the collapsed variant for pre-merged feeds (router mode).
        grouped = (
            [(descriptor["local_position"], 0, ("local", None))]
            if descriptor["local_sources"]
            else []
        )
        for edge in descriptor["in_edges"]:
            grouped.append(
                (effective[edge.from_component], 1, ("relay", edge.edge_id))
            )
        grouped.sort(key=lambda e: e[:2])
        descriptor["entry_order"] = [entry for __, __tie, entry in grouped]
    return schedule, leftover


def relay_rows(run) -> list:
    """Materialize one tapped run as plain :class:`StreamTuple` rows.

    Taps capture whatever the dispatch path carried — a ``ColumnBatch`` on
    the vectorized path or a list of ``ChannelTuple`` on the row path —
    while the live relay re-emits *stream* events onto an alias source, so
    both shapes collapse to their underlying tuples here.
    """
    if type(run) is ColumnBatch:
        return [channel_tuple.tuple for channel_tuple in run.channel_tuples()]
    return [channel_tuple.tuple for channel_tuple in run]


def sink_channel_of(plan, query_id: str) -> Channel:
    """The channel carrying ``query_id``'s sink stream in a live plan.

    Re-resolved (not cached) because sharing merges can re-home a query's
    sink registration onto a representative m-op's output stream
    (``eliminate_duplicate``) — the relay tap must follow it.
    """
    for stream, query_ids in plan.sink_streams():
        if query_id in query_ids:
            return plan.channel_of(stream)
    raise ChannelError(
        f"query {query_id!r} has no sink stream to export"
    )
