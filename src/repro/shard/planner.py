"""Shard planning: partition an optimized plan into independent sub-plans.

The safe unit of parallel placement is the **entry-channel connected
component**: m-ops are connected iff they touch a common channel — as
producer and consumer of a derived channel, or as co-consumers of any
channel, entry (source) channels included.  Within a component, tuples flow
and m-ops are shared; across components, nothing does.  So a component can
run on its own engine, fed only its own entry channels, and the union of the
per-component outputs is byte-identical to the single-engine run (queries
sharing any m-op necessarily land in the same component, and every channel
is consumed by exactly one component).

This mirrors how Roy et al. and Kathuria & Sudarshan treat sharing-group
structure as the unit of work in multi-query optimization — here the sharing
group is also the unit of *placement*.

:class:`ShardPlanner` computes the components, estimates each component's
per-input-tuple cost with the repo's :class:`~repro.core.cost.CostModel`,
and spreads components across ``n`` shards with an explicit balance
heuristic (longest-processing-time greedy: heaviest component onto the
currently lightest shard).  Components costlier than the per-shard target
``total_cost / n`` cannot be split — splitting a sharing group would
duplicate m-op work — so they are recorded in :attr:`ShardPlan.oversized`
for observability and the balance does its best around them.

Sub-plans *share* the original plan's stream, channel and m-op objects
(:meth:`~repro.core.plan.QueryPlan.adopt_source` /
:meth:`~repro.core.plan.QueryPlan.adopt_component`); executors only read
``channel_of`` wiring, so engines built over a sub-plan behave exactly like
the same component inside the single engine.  The original plan must not be
rewritten while sub-plan engines are live — the same contract the
single-engine executor already imposes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.core.cost import CostModel
from repro.core.mop import MOp
from repro.core.plan import QueryPlan
from repro.errors import PlanError


@dataclass
class ShardComponent:
    """One entry-channel connected component of a plan."""

    index: int
    mops: list[MOp]
    query_ids: list
    entry_channel_ids: frozenset[int]
    cost: float = 0.0

    def __repr__(self):
        return (
            f"ShardComponent(#{self.index}, {len(self.mops)} m-ops, "
            f"queries={self.query_ids}, cost={self.cost:.2f})"
        )


@dataclass
class ShardPlan:
    """The output of :meth:`ShardPlanner.partition`."""

    plan: QueryPlan
    n_shards: int
    components: list[ShardComponent]
    #: component index -> shard index.
    assignment: list[int]
    #: one sub-plan per shard (shares objects with :attr:`plan`).
    subplans: list[QueryPlan]
    #: channel_id -> owning shard, for every channel any m-op consumes.
    channel_shard: dict[int, int]
    #: query_id -> owning shard.
    query_shard: dict = field(default_factory=dict)
    #: estimated cost per shard.
    shard_costs: list[float] = field(default_factory=list)
    #: the balance target: total estimated cost / n_shards.
    cost_target: float = 0.0
    #: indexes of components whose cost exceeds the per-shard target — they
    #: cannot be split (a sharing group is the atomic placement unit), so
    #: their shard will run hot no matter the assignment.
    oversized: list[int] = field(default_factory=list)

    @property
    def effective_shards(self) -> int:
        """Shards that actually received work (≤ n_shards)."""
        return sum(1 for subplan in self.subplans if subplan.mops)

    def describe(self) -> str:
        lines = [
            f"ShardPlan: {len(self.components)} components over "
            f"{self.n_shards} shards (target cost {self.cost_target:.2f})"
        ]
        for component in self.components:
            marker = " [oversized]" if component.index in self.oversized else ""
            lines.append(
                f"  component {component.index} -> shard "
                f"{self.assignment[component.index]}: cost "
                f"{component.cost:.2f}, queries {component.query_ids}{marker}"
            )
        return "\n".join(lines)


class ShardPlanner:
    """Partitions a query plan into balanced shard sub-plans."""

    def __init__(self, cost_model: Optional[CostModel] = None):
        self.cost_model = cost_model or CostModel()

    # -- components ------------------------------------------------------------------

    def components(self, plan: QueryPlan) -> list[ShardComponent]:
        """Entry-channel connected components, in first-m-op plan order."""
        mops = plan.mops
        parent = list(range(len(mops)))

        def find(i: int) -> int:
            while parent[i] != i:
                parent[i] = parent[parent[i]]
                i = parent[i]
            return i

        def union(i: int, j: int) -> None:
            ri, rj = find(i), find(j)
            if ri != rj:
                parent[max(ri, rj)] = min(ri, rj)

        touches: dict[int, int] = {}  # channel_id -> first m-op index seen
        for index, mop in enumerate(mops):
            for stream in list(mop.input_streams) + list(mop.output_streams):
                channel_id = plan.channel_of(stream).channel_id
                first = touches.get(channel_id)
                if first is None:
                    touches[channel_id] = index
                else:
                    union(first, index)
        grouped: dict[int, list[int]] = {}
        for index in range(len(mops)):
            grouped.setdefault(find(index), []).append(index)
        source_ids = {source.stream_id for source in plan.sources}
        sinks = plan.sinks
        components: list[ShardComponent] = []
        for order, root in enumerate(sorted(grouped)):
            member_mops = [mops[i] for i in grouped[root]]
            entry_channels: set[int] = set()
            query_ids: list = []
            seen_queries: set = set()
            for mop in member_mops:
                for stream in mop.input_streams:
                    if stream.stream_id in source_ids:
                        entry_channels.add(plan.channel_of(stream).channel_id)
                for stream in mop.output_streams:
                    for query_id in sinks.get(stream.stream_id, ()):
                        if query_id not in seen_queries:
                            seen_queries.add(query_id)
                            query_ids.append(query_id)
            components.append(
                ShardComponent(
                    index=order,
                    mops=member_mops,
                    query_ids=query_ids,
                    entry_channel_ids=frozenset(entry_channels),
                )
            )
        return components

    # -- balance ---------------------------------------------------------------------

    def balance(
        self, components: Sequence[ShardComponent], n_shards: int
    ) -> list[int]:
        """LPT greedy: heaviest component first, onto the lightest shard.

        Deterministic: ties broken by component index, so the same plan
        always shards the same way.
        """
        if n_shards < 1:
            raise PlanError(f"n_shards must be at least 1, got {n_shards}")
        loads = [0.0] * n_shards
        assignment = [0] * len(components)
        ordered = sorted(
            components, key=lambda c: (-c.cost, c.index)
        )
        for component in ordered:
            shard = min(range(n_shards), key=lambda s: (loads[s], s))
            assignment[component.index] = shard
            loads[shard] += component.cost
        return assignment

    # -- partition -------------------------------------------------------------------

    def partition(self, plan: QueryPlan, n_shards: int) -> ShardPlan:
        """Compute components, cost them, balance them, build sub-plans."""
        plan.validate()
        for stream, query_ids in plan.sink_streams():
            if plan.producer_instance_of(stream) is None:
                raise PlanError(
                    f"cannot shard: queries {query_ids} sink directly on "
                    f"source stream {stream.name!r} (no owning component)"
                )
        components = self.components(plan)
        subplans: list[QueryPlan] = []
        for component in components:
            subplan = self._extract_subplan(plan, component)
            component.cost = self.cost_model.plan_cost(subplan)
            subplans.append(subplan)
        assignment = self.balance(components, n_shards)
        shard_plans = [QueryPlan() for __ in range(n_shards)]
        for component, subplan in zip(components, subplans):
            target = shard_plans[assignment[component.index]]
            self._merge_subplan(target, subplan)
        total = sum(component.cost for component in components)
        cost_target = total / n_shards if n_shards else 0.0
        shard_costs = [0.0] * n_shards
        channel_shard: dict[int, int] = {}
        query_shard: dict = {}
        for component in components:
            shard = assignment[component.index]
            shard_costs[shard] += component.cost
            for channel_id in component.entry_channel_ids:
                channel_shard[channel_id] = shard
            for query_id in component.query_ids:
                query_shard[query_id] = shard
        # Derived channels also belong to their component's shard.
        for component in components:
            shard = assignment[component.index]
            for mop in component.mops:
                for stream in mop.output_streams:
                    channel_shard[plan.channel_of(stream).channel_id] = shard
        oversized = [
            component.index
            for component in components
            if component.cost > cost_target and len(components) > 1
        ]
        for shard_plan in shard_plans:
            shard_plan.validate()
        return ShardPlan(
            plan=plan,
            n_shards=n_shards,
            components=components,
            assignment=assignment,
            subplans=shard_plans,
            channel_shard=channel_shard,
            query_shard=query_shard,
            shard_costs=shard_costs,
            cost_target=cost_target,
            oversized=oversized,
        )

    # -- internals -------------------------------------------------------------------

    def _extract_subplan(
        self, plan: QueryPlan, component: ShardComponent
    ) -> QueryPlan:
        """A view plan holding one component (shares objects with ``plan``)."""
        subplan = QueryPlan()
        self._adopt_into(subplan, plan, component)
        return subplan

    def _merge_subplan(self, target: QueryPlan, subplan: QueryPlan) -> None:
        """Merge a single-component view plan into a shard's plan."""
        for source in subplan.sources:
            if source.stream_id not in {s.stream_id for s in target.sources}:
                target.adopt_source(source, subplan.channel_of(source))
        derived = [
            stream
            for stream in subplan.streams()
            if subplan.producer_instance_of(stream) is not None
        ]
        target.adopt_component(
            {
                "mops": list(subplan.mops),
                "streams": derived,
                "channels": {
                    stream.stream_id: subplan.channel_of(stream)
                    for stream in derived
                },
                "sinks": subplan.sinks,
            }
        )

    def _adopt_into(
        self, subplan: QueryPlan, plan: QueryPlan, component: ShardComponent
    ) -> None:
        source_ids = {source.stream_id for source in plan.sources}
        needed_sources: list = []
        seen: set[int] = set()
        for mop in component.mops:
            for stream in mop.input_streams:
                if stream.stream_id in source_ids and stream.stream_id not in seen:
                    seen.add(stream.stream_id)
                    needed_sources.append(stream)
        for stream in needed_sources:
            subplan.adopt_source(stream, plan.channel_of(stream))
        derived = [
            stream for mop in component.mops for stream in mop.output_streams
        ]
        sinks = plan.sinks
        subplan.adopt_component(
            {
                "mops": list(component.mops),
                "streams": derived,
                "channels": {
                    stream.stream_id: plan.channel_of(stream)
                    for stream in derived
                },
                "sinks": {
                    stream.stream_id: list(sinks[stream.stream_id])
                    for stream in derived
                    if stream.stream_id in sinks
                },
            }
        )
