"""Shard planning: partition an optimized plan into independent sub-plans.

The safe unit of parallel placement is the **entry-channel connected
component**: m-ops are connected iff they touch a common channel — as
producer and consumer of a derived channel, or as co-consumers of any
channel, entry (source) channels included.  Within a component, tuples flow
and m-ops are shared; across components, nothing does.  So a component can
run on its own engine, fed only its own entry channels, and the union of the
per-component outputs is byte-identical to the single-engine run (queries
sharing any m-op necessarily land in the same component, and every channel
is consumed by exactly one component).

This mirrors how Roy et al. and Kathuria & Sudarshan treat sharing-group
structure as the unit of work in multi-query optimization — here the sharing
group is also the unit of *placement*.

Components are no longer atomic, though.  A bridge-shaped component — two
clusters joined by one derived channel — can be **cut** at that channel: the
upstream fragment keeps the producer, the downstream fragment re-reads the
bridge stream as an entry, and the runtime relays the bridge channel's
tuples across the shard boundary (:class:`RelayEdge`).  Cuts are scored the
Roy-et-al way: the benefit of separating the two halves (the smaller half's
saved cost, i.e. what co-location forces onto one shard) against the cost of
the relay hop (:data:`~repro.core.cost.RELAY_HOP_COST` × the bridge's
estimated rate).  Only *singleton* channels qualify (a shared channel's
membership masks belong to one engine's wiring), and a cut whose downstream
fragment also reads plan sources is allowed only when every upstream m-op is
timestamp-preserving (selections/projections), because relayed tuples are
merged into the receiving fragment's feed by timestamp and must carry the
driving tuple's timestamp for the merge order to reproduce the single-engine
dispatch order.

:class:`ShardPlanner` computes the components, estimates each component's
per-input-tuple cost with the repo's :class:`~repro.core.cost.CostModel`,
splits oversized components along their best bridge cut, groups components
by sharability signature (components whose entries are sharable-labelled
alike would re-merge downstream, so they co-locate), and spreads the
resulting placement units across ``n`` shards with an explicit balance
heuristic (longest-processing-time greedy: heaviest unit onto the currently
lightest shard).  Components costlier than the per-shard target
``total_cost / n`` that no valid cut can split are recorded in
:attr:`ShardPlan.oversized` for observability and the balance does its best
around them.

Sub-plans *share* the original plan's stream, channel and m-op objects
(:meth:`~repro.core.plan.QueryPlan.adopt_source` /
:meth:`~repro.core.plan.QueryPlan.adopt_component`); executors only read
``channel_of`` wiring, so engines built over a sub-plan behave exactly like
the same component inside the single engine.  The original plan must not be
rewritten while sub-plan engines are live — the same contract the
single-engine executor already imposes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.core.cost import RELAY_HOP_COST, CostModel
from repro.core.mop import MOp
from repro.core.plan import QueryPlan
from repro.core.sharable import sharability_signature
from repro.errors import PlanError
from repro.operators.project import Projection
from repro.streams.channel import Channel
from repro.streams.stream import StreamDef

#: Relative tolerance for "component cost exceeds the per-shard target".
#: Cost attribution sums floats in topological order, so two structurally
#: identical plans can disagree by a few ULPs; a strict compare would flip
#: the ``oversized`` flag (and the policy's alert counts) between them.
OVERSIZED_REL_TOL = 1e-9


def is_oversized(cost: float, target: float, rel_tol: float = OVERSIZED_REL_TOL) -> bool:
    """Whether ``cost`` exceeds ``target`` beyond FP attribution noise."""
    return cost > target * (1.0 + rel_tol)


@dataclass
class ShardComponent:
    """One entry-channel connected component (or fragment) of a plan."""

    index: int
    mops: list[MOp]
    query_ids: list
    entry_channel_ids: frozenset[int]
    #: Derived streams that enter this fragment over a relay edge (empty for
    #: unsplit components).  These are adopted as *sources* of the fragment's
    #: sub-plan; the runtime feeds them from the producing fragment's relay.
    entry_stream_ids: frozenset[int] = frozenset()
    cost: float = 0.0

    def __repr__(self):
        relay = (
            f", relay-entries={sorted(self.entry_stream_ids)}"
            if self.entry_stream_ids
            else ""
        )
        return (
            f"ShardComponent(#{self.index}, {len(self.mops)} m-ops, "
            f"queries={self.query_ids}, cost={self.cost:.2f}{relay})"
        )


@dataclass
class RelayEdge:
    """One cross-shard bridge: a derived channel re-emitted as an entry.

    Produced by :meth:`ShardPlanner.partition` only for cuts whose fragments
    actually landed on *different* shards — co-located fragments reconnect
    through the shard plan's own wiring and need no relay.
    """

    edge_id: int
    stream: StreamDef
    channel: Channel
    from_component: int
    to_component: int
    from_shard: int
    to_shard: int
    #: The bridge stream's estimated per-input-tuple rate (cost-model units);
    #: what the relay hop was charged at when the cut was scored.
    rate: float = 1.0

    def __repr__(self):
        return (
            f"RelayEdge(#{self.edge_id}, {self.stream.name!r}: "
            f"shard {self.from_shard} -> {self.to_shard}, rate={self.rate:.2f})"
        )


@dataclass
class ShardPlan:
    """The output of :meth:`ShardPlanner.partition`."""

    plan: QueryPlan
    n_shards: int
    components: list[ShardComponent]
    #: component index -> shard index.
    assignment: list[int]
    #: one sub-plan per shard (shares objects with :attr:`plan`).
    subplans: list[QueryPlan]
    #: channel_id -> owning shard, for every channel any m-op consumes.
    channel_shard: dict[int, int]
    #: query_id -> owning shard.
    query_shard: dict = field(default_factory=dict)
    #: estimated cost per shard.
    shard_costs: list[float] = field(default_factory=list)
    #: the balance target: total estimated cost / n_shards.
    cost_target: float = 0.0
    #: indexes of components whose cost exceeds the per-shard target (beyond
    #: :data:`OVERSIZED_REL_TOL`) and that no valid bridge cut could split —
    #: their shard will run hot no matter the assignment.
    oversized: list[int] = field(default_factory=list)
    #: active cross-shard bridges, ordered by edge id.
    relays: list[RelayEdge] = field(default_factory=list)

    @property
    def effective_shards(self) -> int:
        """Shards that actually received work (≤ n_shards)."""
        return sum(1 for subplan in self.subplans if subplan.mops)

    def relays_from(self, shard: int) -> list[RelayEdge]:
        return [edge for edge in self.relays if edge.from_shard == shard]

    def relays_to(self, shard: int) -> list[RelayEdge]:
        return [edge for edge in self.relays if edge.to_shard == shard]

    def describe(self) -> str:
        lines = [
            f"ShardPlan: {len(self.components)} components over "
            f"{self.n_shards} shards (target cost {self.cost_target:.2f})"
        ]
        for component in self.components:
            marker = " [oversized]" if component.index in self.oversized else ""
            lines.append(
                f"  component {component.index} -> shard "
                f"{self.assignment[component.index]}: cost "
                f"{component.cost:.2f}, queries {component.query_ids}{marker}"
            )
        for edge in self.relays:
            lines.append(
                f"  relay {edge.edge_id}: {edge.stream.name!r} component "
                f"{edge.from_component} (shard {edge.from_shard}) -> component "
                f"{edge.to_component} (shard {edge.to_shard})"
            )
        return "\n".join(lines)


@dataclass
class _Cut:
    """A candidate bridge cut inside one component (planner-internal)."""

    stream: StreamDef
    up_mops: list[MOp]
    down_mops: list[MOp]
    gain: float
    relay_cost: float
    rate: float


class ShardPlanner:
    """Partitions a query plan into balanced shard sub-plans."""

    def __init__(self, cost_model: Optional[CostModel] = None):
        self.cost_model = cost_model or CostModel()

    # -- components ------------------------------------------------------------------

    def components(self, plan: QueryPlan) -> list[ShardComponent]:
        """Entry-channel connected components, in first-m-op plan order."""
        mops = plan.mops
        parent = list(range(len(mops)))

        def find(i: int) -> int:
            while parent[i] != i:
                parent[i] = parent[parent[i]]
                i = parent[i]
            return i

        def union(i: int, j: int) -> None:
            ri, rj = find(i), find(j)
            if ri != rj:
                parent[max(ri, rj)] = min(ri, rj)

        touches: dict[int, int] = {}  # channel_id -> first m-op index seen
        for index, mop in enumerate(mops):
            for stream in list(mop.input_streams) + list(mop.output_streams):
                channel_id = plan.channel_of(stream).channel_id
                first = touches.get(channel_id)
                if first is None:
                    touches[channel_id] = index
                else:
                    union(first, index)
        grouped: dict[int, list[int]] = {}
        for index in range(len(mops)):
            grouped.setdefault(find(index), []).append(index)
        components: list[ShardComponent] = []
        for order, root in enumerate(sorted(grouped)):
            member_mops = [mops[i] for i in grouped[root]]
            component = self._make_fragment(plan, member_mops, frozenset())
            component.index = order
            components.append(component)
        return components

    def _make_fragment(
        self,
        plan: QueryPlan,
        mops: list[MOp],
        relay_entries: frozenset[int],
    ) -> ShardComponent:
        """Build a component record for ``mops`` (index assigned later)."""
        source_ids = {source.stream_id for source in plan.sources}
        entry_channels: set[int] = set()
        query_ids: list = []
        seen_queries: set = set()
        sinks = plan.sinks
        for mop in mops:
            for stream in mop.input_streams:
                if stream.stream_id in source_ids:
                    entry_channels.add(plan.channel_of(stream).channel_id)
            for stream in mop.output_streams:
                for query_id in sinks.get(stream.stream_id, ()):
                    if query_id not in seen_queries:
                        seen_queries.add(query_id)
                        query_ids.append(query_id)
        return ShardComponent(
            index=-1,
            mops=mops,
            query_ids=query_ids,
            entry_channel_ids=frozenset(entry_channels),
            entry_stream_ids=relay_entries,
        )

    # -- bridge cuts -----------------------------------------------------------------

    @staticmethod
    def _ts_preserving(mop: MOp) -> bool:
        """Whether every tuple the m-op emits carries its input's timestamp.

        Selections filter but never rewrite ``ts``; projections map 1:1 and
        preserve ``ts`` by definition.  Anything else (windows, sequences,
        aggregations) may emit at a different timestamp, which would break
        the timestamp-merge that orders relayed tuples against the receiving
        fragment's own feed.
        """
        return all(
            getattr(instance.operator, "is_selection", False)
            or isinstance(instance.operator, Projection)
            for instance in mop.instances
        )

    def best_cut(
        self,
        plan: QueryPlan,
        component: ShardComponent,
        costs: dict[int, float],
        rates: dict[int, float],
    ) -> Optional[_Cut]:
        """The highest-gain valid bridge cut of ``component``, if any.

        ``costs``/``rates`` come from
        :meth:`~repro.core.cost.CostModel.attributed_costs`.  Gain is the
        Roy-et-al score: ``min(cost_up, cost_down) - RELAY_HOP_COST * rate``
        — what the lighter half is worth moving off-shard, less the hop.
        Ties break on the bridge stream id, so the same plan always cuts the
        same way.
        """
        if len(component.mops) < 2:
            return None
        source_ids = {source.stream_id for source in plan.sources}
        channel_members: dict[int, int] = {}
        for stream in plan.streams():
            channel_id = plan.channel_of(stream).channel_id
            channel_members[channel_id] = channel_members.get(channel_id, 0) + 1
        member_ids = {id(mop) for mop in component.mops}
        producer_of: dict[int, MOp] = {}
        for mop in component.mops:
            for stream in mop.output_streams:
                producer_of[stream.stream_id] = mop

        def local_consumers(stream: StreamDef) -> list[MOp]:
            return [
                mop
                for mop, __, __ in plan.consumers_of(stream)
                if id(mop) in member_ids
            ]

        sinks = plan.sinks
        best: Optional[tuple[tuple, _Cut]] = None
        for producer in component.mops:
            for bridge in producer.output_streams:
                consumers = local_consumers(bridge)
                if not consumers:
                    continue
                channel = plan.channel_of(bridge)
                if channel_members.get(channel.channel_id, 0) != 1:
                    continue  # shared channel: masks belong to one engine
                down: dict[int, MOp] = {}
                frontier = list(consumers)
                while frontier:
                    mop = frontier.pop()
                    if id(mop) in down:
                        continue
                    down[id(mop)] = mop
                    for out in mop.output_streams:
                        frontier.extend(local_consumers(out))
                if id(producer) in down:
                    continue  # producer reachable from the bridge: no cut
                up_mops = [m for m in component.mops if id(m) not in down]
                down_mops = [m for m in component.mops if id(m) in down]
                if not up_mops or not down_mops:
                    continue
                mixed = False
                valid = True
                for mop in down_mops:
                    for stream in mop.input_streams:
                        stream_id = stream.stream_id
                        if stream_id == bridge.stream_id:
                            continue
                        owner = producer_of.get(stream_id)
                        if owner is not None and id(owner) in down:
                            continue
                        if owner is not None:
                            valid = False  # second upstream edge: not a bridge
                            break
                        if stream_id in component.entry_stream_ids:
                            valid = False  # nested relay entry stays upstream
                            break
                        if stream_id in source_ids:
                            if any(
                                id(m) not in down
                                for m in local_consumers(stream)
                            ):
                                # The raw source also feeds up-side m-ops;
                                # its channel can only be homed to one
                                # shard, so cutting here would starve one
                                # side of the feed.
                                valid = False
                                break
                            mixed = True
                            continue
                        valid = False
                        break
                    if not valid:
                        break
                if not valid:
                    continue
                if mixed and not all(self._ts_preserving(m) for m in up_mops):
                    continue
                query_side: dict = {}
                separable = True
                for mop in component.mops:
                    side = 1 if id(mop) in down else 0
                    for out in mop.output_streams:
                        for query_id in sinks.get(out.stream_id, ()):
                            previous = query_side.setdefault(query_id, side)
                            if previous != side:
                                separable = False
                                break
                        if not separable:
                            break
                    if not separable:
                        break
                if not separable:
                    continue
                cost_up = sum(costs[id(m)] for m in up_mops)
                cost_down = sum(costs[id(m)] for m in down_mops)
                rate = rates.get(bridge.stream_id, 1.0)
                relay_cost = RELAY_HOP_COST * rate
                gain = min(cost_up, cost_down) - relay_cost
                if gain <= 0.0:
                    continue
                key = (-gain, bridge.stream_id)
                if best is None or key < best[0]:
                    best = (
                        key,
                        _Cut(
                            stream=bridge,
                            up_mops=up_mops,
                            down_mops=down_mops,
                            gain=gain,
                            relay_cost=relay_cost,
                            rate=rate,
                        ),
                    )
        return best[1] if best is not None else None

    def _split_components(
        self,
        plan: QueryPlan,
        components: list[ShardComponent],
        cost_target: float,
        costs: dict[int, float],
        rates: dict[int, float],
    ) -> tuple[list[ShardComponent], list[dict]]:
        """Cut oversized components along their best bridges, recursively.

        Returns the fragment list renumbered in topological (relay-producer
        before relay-consumer) order, plus raw edges referencing fragment
        objects: ``{"stream", "channel", "src", "dst", "rate"}``.
        """
        fragments = list(components)
        edges: list[dict] = []
        progressed = True
        while progressed:
            progressed = False
            for position, fragment in enumerate(fragments):
                if not is_oversized(fragment.cost, cost_target):
                    continue
                cut = self.best_cut(plan, fragment, costs, rates)
                if cut is None:
                    continue
                up = self._make_fragment(
                    plan, cut.up_mops, fragment.entry_stream_ids
                )
                down = self._make_fragment(
                    plan, cut.down_mops, frozenset({cut.stream.stream_id})
                )
                up.cost = (
                    sum(costs[id(m)] for m in cut.up_mops) + cut.relay_cost / 2
                )
                down.cost = (
                    sum(costs[id(m)] for m in cut.down_mops) + cut.relay_cost / 2
                )
                up_ids = {id(m) for m in cut.up_mops}
                for edge in edges:
                    if edge["src"] is fragment:
                        producer = next(
                            m
                            for m in fragment.mops
                            if any(
                                s.stream_id == edge["stream"].stream_id
                                for s in m.output_streams
                            )
                        )
                        edge["src"] = up if id(producer) in up_ids else down
                    if edge["dst"] is fragment:
                        edge["dst"] = up  # relay entries validated upstream
                edges.append(
                    {
                        "stream": cut.stream,
                        "channel": plan.channel_of(cut.stream),
                        "src": up,
                        "dst": down,
                        "rate": cut.rate,
                    }
                )
                fragments[position : position + 1] = [up, down]
                progressed = True
                break
        # Renumber in topological order: every relay's producer fragment gets
        # a smaller index than its consumer, so merge order (and the engines'
        # fragment execution order) is upstream-before-downstream.
        indegree = {id(fragment): 0 for fragment in fragments}
        for edge in edges:
            indegree[id(edge["dst"])] += 1
        ordered: list[ShardComponent] = []
        remaining = list(fragments)
        while remaining:
            for position, fragment in enumerate(remaining):
                if indegree[id(fragment)] == 0:
                    ordered.append(fragment)
                    remaining.pop(position)
                    for edge in edges:
                        if edge["src"] is fragment:
                            indegree[id(edge["dst"])] -= 1
                    break
            else:  # pragma: no cover - cuts cannot create cycles
                raise PlanError("relay edges form a cycle")
        for index, fragment in enumerate(ordered):
            fragment.index = index
        return ordered, edges

    # -- balance ---------------------------------------------------------------------

    def balance(
        self, components: Sequence[ShardComponent], n_shards: int
    ) -> list[int]:
        """LPT greedy: heaviest component first, onto the lightest shard.

        Deterministic: ties broken by component index, so the same plan
        always shards the same way.
        """
        if n_shards < 1:
            raise PlanError(f"n_shards must be at least 1, got {n_shards}")
        loads = [0.0] * n_shards
        assignment = [0] * len(components)
        ordered = sorted(
            components, key=lambda c: (-c.cost, c.index)
        )
        for component in ordered:
            shard = min(range(n_shards), key=lambda s: (loads[s], s))
            assignment[component.index] = shard
            loads[shard] += component.cost
        return assignment

    def component_signature(
        self, plan: QueryPlan, component: ShardComponent
    ) -> tuple:
        """A sharability fingerprint of what the component consumes/computes.

        Two components with equal signatures read sharable-alike entries
        through the same m-op shapes — their downstream results are the ones
        a later re-merge (or a cross-component consumer added by churn)
        would want co-located, so the balancer places them as one unit.
        """
        source_ids = {source.stream_id for source in plan.sources}
        entry_signatures: list[str] = []
        seen: set[int] = set()
        for mop in component.mops:
            for stream in mop.input_streams:
                stream_id = stream.stream_id
                if stream_id in seen:
                    continue
                if stream_id in source_ids or stream_id in component.entry_stream_ids:
                    seen.add(stream_id)
                    entry_signatures.append(
                        repr(sharability_signature(plan, stream))
                    )
        kinds = tuple(sorted({mop.kind for mop in component.mops}))
        return (tuple(sorted(entry_signatures)), kinds)

    def balance_grouped(
        self,
        plan: QueryPlan,
        components: Sequence[ShardComponent],
        n_shards: int,
        cost_target: float,
    ) -> list[int]:
        """LPT over sharability groups: same-signature components co-locate.

        A group whose total cost would itself be oversized falls back to
        individual LPT placement — co-location is a locality preference, not
        worth unbalancing a shard for.
        """
        if n_shards < 1:
            raise PlanError(f"n_shards must be at least 1, got {n_shards}")
        groups: dict[tuple, list[ShardComponent]] = {}
        group_order: list[tuple] = []
        for component in components:
            signature = self.component_signature(plan, component)
            if signature not in groups:
                groups[signature] = []
                group_order.append(signature)
            groups[signature].append(component)
        units: list[tuple[float, int, list[ShardComponent]]] = []
        for signature in group_order:
            members = groups[signature]
            total = sum(member.cost for member in members)
            if len(members) > 1 and not is_oversized(total, cost_target):
                units.append((total, min(m.index for m in members), members))
            else:
                for member in members:
                    units.append((member.cost, member.index, [member]))
        loads = [0.0] * n_shards
        assignment = [0] * len(components)
        for cost, __, members in sorted(units, key=lambda u: (-u[0], u[1])):
            shard = min(range(n_shards), key=lambda s: (loads[s], s))
            for member in members:
                assignment[member.index] = shard
            loads[shard] += cost
        return assignment

    # -- partition -------------------------------------------------------------------

    def partition(
        self, plan: QueryPlan, n_shards: int, split: bool = True
    ) -> ShardPlan:
        """Compute components, cost them, split/balance them, build sub-plans.

        ``split=False`` restores the pre-relay behaviour: components are
        atomic placement units and oversized ones simply run hot (the bench
        uses this to measure the unsplit baseline).
        """
        plan.validate()
        passthrough: list[tuple[StreamDef, list]] = []
        for stream, query_ids in plan.sink_streams():
            if plan.producer_instance_of(stream) is None:
                # A query sinking directly on a source stream belongs to no
                # component; place it on the shard owning that entry channel
                # (or the lightest shard if nothing else consumes it).
                passthrough.append((stream, list(query_ids)))
        components = self.components(plan)
        costs, rates = self.cost_model.attributed_costs(plan)
        for component in components:
            component.cost = sum(costs[id(mop)] for mop in component.mops)
        total = sum(component.cost for component in components)
        cost_target = total / n_shards if n_shards else 0.0
        raw_edges: list[dict] = []
        if split and n_shards > 1:
            components, raw_edges = self._split_components(
                plan, components, cost_target, costs, rates
            )
        subplans = [
            self._extract_subplan(plan, component) for component in components
        ]
        total = sum(component.cost for component in components)
        cost_target = total / n_shards if n_shards else 0.0
        assignment = self.balance_grouped(
            plan, components, n_shards, cost_target
        )
        shard_plans = [QueryPlan() for __ in range(n_shards)]
        for component, subplan in zip(components, subplans):
            target = shard_plans[assignment[component.index]]
            self._merge_subplan(target, subplan)
        shard_costs = [0.0] * n_shards
        channel_shard: dict[int, int] = {}
        query_shard: dict = {}
        for component in components:
            shard = assignment[component.index]
            shard_costs[shard] += component.cost
            for channel_id in component.entry_channel_ids:
                channel_shard[channel_id] = shard
            for query_id in component.query_ids:
                query_shard[query_id] = shard
        # Derived channels also belong to their component's shard.
        for component in components:
            shard = assignment[component.index]
            for mop in component.mops:
                for stream in mop.output_streams:
                    channel_shard[plan.channel_of(stream).channel_id] = shard
        for stream, query_ids in passthrough:
            channel = plan.channel_of(stream)
            shard = channel_shard.get(channel.channel_id)
            if shard is None:
                shard = min(range(n_shards), key=lambda s: (shard_costs[s], s))
                channel_shard[channel.channel_id] = shard
            subplan = shard_plans[shard]
            if all(
                existing.stream_id != stream.stream_id
                for existing in subplan.streams()
            ):
                subplan.adopt_source(stream, channel)
            for query_id in query_ids:
                subplan.mark_output(stream, query_id)
                query_shard[query_id] = shard
        relays: list[RelayEdge] = []
        active = [
            edge
            for edge in raw_edges
            if assignment[edge["src"].index] != assignment[edge["dst"].index]
        ]
        active.sort(
            key=lambda e: (e["src"].index, e["dst"].index, e["stream"].stream_id)
        )
        for edge_id, edge in enumerate(active):
            relays.append(
                RelayEdge(
                    edge_id=edge_id,
                    stream=edge["stream"],
                    channel=edge["channel"],
                    from_component=edge["src"].index,
                    to_component=edge["dst"].index,
                    from_shard=assignment[edge["src"].index],
                    to_shard=assignment[edge["dst"].index],
                    rate=edge["rate"],
                )
            )
        oversized = [
            component.index
            for component in components
            if is_oversized(component.cost, cost_target) and len(components) > 1
        ]
        for shard_plan in shard_plans:
            shard_plan.validate()
        return ShardPlan(
            plan=plan,
            n_shards=n_shards,
            components=components,
            assignment=assignment,
            subplans=shard_plans,
            channel_shard=channel_shard,
            query_shard=query_shard,
            shard_costs=shard_costs,
            cost_target=cost_target,
            oversized=oversized,
            relays=relays,
        )

    # -- internals -------------------------------------------------------------------

    def _extract_subplan(
        self, plan: QueryPlan, component: ShardComponent
    ) -> QueryPlan:
        """A view plan holding one component (shares objects with ``plan``)."""
        subplan = QueryPlan()
        self._adopt_into(subplan, plan, component)
        return subplan

    def _merge_subplan(self, target: QueryPlan, subplan: QueryPlan) -> None:
        """Merge a single-component view plan into a shard's plan.

        A fragment's relay-entry stream is a *source* of the fragment's view
        plan but may already exist in ``target`` as a derived stream — when
        the producing fragment landed on the same shard and merged first
        (components are merged in topological index order).  In that case
        the entry is skipped and the fragments reconnect through the shard
        plan's own wiring; the relay edge is dropped by the planner.
        """
        known = {stream.stream_id for stream in target.streams()}
        for source in subplan.sources:
            if source.stream_id not in known:
                target.adopt_source(source, subplan.channel_of(source))
        derived = [
            stream
            for stream in subplan.streams()
            if subplan.producer_instance_of(stream) is not None
        ]
        target.adopt_component(
            {
                "mops": list(subplan.mops),
                "streams": derived,
                "channels": {
                    stream.stream_id: subplan.channel_of(stream)
                    for stream in derived
                },
                "sinks": subplan.sinks,
            }
        )

    def _adopt_into(
        self, subplan: QueryPlan, plan: QueryPlan, component: ShardComponent
    ) -> None:
        source_ids = {source.stream_id for source in plan.sources}
        entry_ids = source_ids | set(component.entry_stream_ids)
        needed_sources: list = []
        seen: set[int] = set()
        for mop in component.mops:
            for stream in mop.input_streams:
                if stream.stream_id in entry_ids and stream.stream_id not in seen:
                    seen.add(stream.stream_id)
                    needed_sources.append(stream)
        for stream in needed_sources:
            subplan.adopt_source(stream, plan.channel_of(stream))
        derived = [
            stream for mop in component.mops for stream in mop.output_streams
        ]
        sinks = plan.sinks
        subplan.adopt_component(
            {
                "mops": list(component.mops),
                "streams": derived,
                "channels": {
                    stream.stream_id: plan.channel_of(stream)
                    for stream in derived
                },
                "sinks": {
                    stream.stream_id: list(sinks[stream.stream_id])
                    for stream in derived
                    if stream.stream_id in sinks
                },
            }
        )
