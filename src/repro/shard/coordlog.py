"""The coordinator journal: on-disk durability for the coordinator itself.

PR 5 made *workers* durable — per-shard write-ahead logs plus a versioned
checkpoint store — but both lived in the coordinator's memory, so one
coordinator crash was still total loss.  This module moves the
coordinator's durable state onto disk:

- :class:`CoordinatorLog` — an **append-only journal** of every durable
  effect the coordinator commits (sources declared, batches shipped,
  lifecycle commands applied, rebalances, checkpoint completions, topology
  changes), plus a periodic **snapshot** written with the
  write-tmp → fsync → atomic-rename discipline.  Journal records are
  length-prefixed pickles; a torn tail (the coordinator died mid-write) is
  detected, dropped and garbage-collected on reopen.  Every record carries
  a monotone ``rec_seq`` and the snapshot stores the last folded one, so
  replay after a crash between snapshot-rename and journal-reset is
  idempotent.
- :class:`CoordinatorState` — the fold of the journal: the logical-query
  catalog, shard→component placement, per-shard write-ahead logs and
  shipped cursors, input positions, the journaled checkpoint-store index,
  and the incarnation/shard-id allocators.  ``CoordinatorLog`` maintains a
  live fold as records are appended (so compaction never re-reads the
  file) and rebuilds it from snapshot + journal tail on open — this is
  exactly the state a restarted coordinator resumes from, whether it
  **re-adopts** still-live workers or **cold-starts** the whole runtime
  from checkpoints + log suffixes.
- :class:`CoordinatorFaults` — deterministic crash injection at the
  coordinator's commit points (before/after a journal append,
  mid-checkpoint-round, mid-rebalance), the coordinator-side sibling of
  :class:`~repro.shard.proc.WorkerFaults`.

Ordering disciplines (what makes resumed serves byte-identical):

- **Data is journal-before-ship**: a batch record is appended (one atomic
  record per shipped chunk, covering the input-cursor advance and every
  consuming shard's WAL append) *before* the run frames are enqueued.  A
  worker's stream cursor can therefore only ever be at or behind the
  journal; re-adoption re-ships the missing tail out of the journaled WAL.
- **Lifecycle is RPC-then-journal**: a register/unregister/rebalance is
  journaled only after the worker acknowledged it.  A crash in between
  leaves the worker ahead of the journal; re-adoption rolls the extra
  effect back (unregister + purge), and the resumed driver re-issues the
  interrupted call — :func:`repro.workloads.churn.resume_tail` computes
  the replay point from the journaled input positions and lifecycle count.
- **Checkpoints are store-then-journal**: a ``.ckpt`` file is valid only
  once its ``ckpt`` record lands; unjournaled files are pruned on resume.
"""

from __future__ import annotations

import os
import pickle
import struct
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import CoordinatorCrashError, JournalError
from repro.shard.checkpoint import ShardLog

JOURNAL_FILE = "coordinator.journal"
SNAPSHOT_FILE = "coordinator.snap"

_LENGTH = struct.Struct(">Q")


@dataclass
class CoordinatorState:
    """The fold of a coordinator journal — everything a restart needs."""

    #: Monotone sequence of the last folded record (snapshot replay skips
    #: records at or below it).
    last_rec_seq: int = 0
    #: Runtime construction options recorded at first open (checkpoint
    #: cadence, capture/observe flags, batching) so a resume rebuilds an
    #: identically-configured runtime without the caller re-specifying it.
    options: dict = field(default_factory=dict)
    #: name → (StreamDef, Channel, sharable_label).  Pickled objects keep
    #: their stream/channel ids, which is what lets a re-adopted
    #: coordinator talk to workers that inherited those ids at fork.
    sources: dict = field(default_factory=dict)
    #: query_id → LogicalQuery (the recovery catalog), insertion order.
    queries: dict = field(default_factory=dict)
    #: query_id → owning shard id.
    query_shard: dict = field(default_factory=dict)
    #: Active shard ids, in creation order (sparse after elastic shrink).
    shards: list = field(default_factory=list)
    next_shard: int = 0
    #: shard id → times a worker was spawned for it (fault re-arming).
    spawned: dict = field(default_factory=dict)
    #: Next worker incarnation (id-space seed) — must stay monotone across
    #: coordinator restarts or recycled id ranges could alias live state.
    next_incarnation: int = 1
    #: shard id → ShardLog (the journaled mirror of the in-memory WAL).
    wal: dict = field(default_factory=dict)
    #: shard id → {stream → shipped event count}.
    shipped: dict = field(default_factory=dict)
    #: stream → total source events journaled (consumed or not) — the
    #: resume point for the driver's stream feed.
    input_positions: dict = field(default_factory=dict)
    input_events: int = 0
    #: Lifecycle operations (register/unregister) journaled — the resume
    #: point for the driver's churn schedule.
    lifecycle_ops: int = 0
    batches: int = 0
    #: Highest checkpoint version journaled as complete.
    ckpt_version: int = 0
    #: shard id → latest journaled checkpoint version (the store index;
    #: ``.ckpt`` files above it are unjournaled orphans, pruned on resume).
    ckpt_valid: dict = field(default_factory=dict)
    #: Cumulative RunStats of retired workers (elastic shrink), folded so
    #: aggregate output counters survive the worker that produced them —
    #: and survive a coordinator restart.
    retired_stats: object = None
    #: alias → ``{"query_id", "edge", "collected"}`` — live cross-shard
    #: relay exports.  ``collected`` is the exactly-once watermark: relay
    #: tuples are journaled (as "rbatch") *before* they are shipped to
    #: consumers, and producers retain collected runs until the next
    #: collect acknowledges this count.
    relays: dict = field(default_factory=dict)

    def apply(self, kind: str, fields: tuple) -> None:
        """Fold one journal record into the state."""
        if kind == "batch":
            stream, chunk, shards, final = fields
            for shard in shards:
                self.wal[shard].append(("data", stream, chunk))
                counts = self.shipped[shard]
                counts[stream] = counts.get(stream, 0) + len(chunk)
            self.input_positions[stream] = (
                self.input_positions.get(stream, 0) + len(chunk)
            )
            self.input_events += len(chunk)
            if final:
                self.batches += 1
        elif kind == "advance":
            stream, count = fields
            self.input_positions[stream] = (
                self.input_positions.get(stream, 0) + count
            )
            self.input_events += count
        elif kind == "register":
            shard, logical = fields
            self.queries[logical.query_id] = logical
            self.query_shard[logical.query_id] = shard
            self.wal[shard].append(("register", logical))
            self.lifecycle_ops += 1
        elif kind == "unregister":
            shard, query_id = fields
            self.queries.pop(query_id, None)
            self.query_shard.pop(query_id, None)
            self.wal[shard].append(("unregister", query_id))
            self.lifecycle_ops += 1
        elif kind == "reoptimize":
            (shard,) = fields
            self.wal[shard].append(("reoptimize", None))
        elif kind == "rebalance":
            query_id, from_shard, to_shard, moved, blob = fields[:5]
            self.wal[from_shard].append(("export", query_id))
            self.wal[to_shard].append(("import", blob))
            # Optional sixth field (alias → collected cursor): relay
            # exports riding the moved component — folded atomically with
            # the ownership change so a resume never sees a tap on the
            # wrong side of the move.
            relay_moves = fields[5] if len(fields) > 5 else {}
            for alias, cursor in relay_moves.items():
                self.wal[from_shard].append(("relay-untap", alias))
                self.wal[to_shard].append(("relay-tap", alias, cursor))
            for moved_id in moved:
                self.query_shard[moved_id] = to_shard
        elif kind == "ckpt":
            # The cursor rides the record for audit only: shipped counts
            # are maintained by the "batch" records, which keep arriving
            # while a pipelined round is in flight — the cut's cursor is
            # already stale by the time the reply is journaled.
            shard, version, position, __cursor = fields
            self.ckpt_valid[shard] = version
            self.wal[shard].truncate_to(position)
            if version > self.ckpt_version:
                self.ckpt_version = version
        elif kind == "source":
            name, stream, channel, sharable_label = fields
            self.sources[name] = (stream, channel, sharable_label)
        elif kind == "spawn":
            shard, incarnation = fields
            self.spawned[shard] = self.spawned.get(shard, 0) + 1
            if incarnation >= self.next_incarnation:
                self.next_incarnation = incarnation + 1
        elif kind == "add_worker":
            (shard,) = fields
            self.shards.append(shard)
            self.wal[shard] = ShardLog()
            self.shipped[shard] = {}
            if shard >= self.next_shard:
                self.next_shard = shard + 1
        elif kind == "remove_worker":
            shard, stats = fields
            self.shards.remove(shard)
            del self.wal[shard]
            del self.shipped[shard]
            self.ckpt_valid.pop(shard, None)
            if stats is not None:
                if self.retired_stats is None:
                    self.retired_stats = stats
                else:
                    self.retired_stats.absorb(stats)
        elif kind == "relay":
            alias, query_id, owner, stream, channel, edge = fields
            self.sources[alias] = (stream, channel, stream.sharable_label)
            self.relays[alias] = {
                "query_id": query_id,
                "edge": edge,
                "collected": 0,
            }
            self.wal[owner].append(("relay-tap", alias, 0))
        elif kind == "rbatch":
            # Relayed (derived) traffic: rides consumer WALs and shipped
            # counts like "batch", but touches neither input_positions nor
            # input_events — relay tuples are not source input.
            alias, chunk, shards = fields
            for shard in shards:
                self.wal[shard].append(("data", alias, chunk))
                counts = self.shipped[shard]
                counts[alias] = counts.get(alias, 0) + len(chunk)
            self.relays[alias]["collected"] += len(chunk)
        elif kind == "options":
            (options,) = fields
            self.options.update(options)
        else:
            raise JournalError(f"unknown journal record kind {kind!r}")


class CoordinatorLog:
    """Append-only coordinator journal + atomic snapshot in one directory.

    The directory doubles as the checkpoint dir (``shard<N>.v<V>.ckpt``
    files live next to ``coordinator.journal`` / ``coordinator.snap``).
    Opening the log replays snapshot + journal tail into :attr:`state`;
    every :meth:`append` folds the record into the live state too, so the
    fold is always current and :meth:`compact` (triggered automatically
    every ``compact_every`` records) just pickles it.

    ``fsync=False`` (the default) flushes each record to the OS — safe
    against coordinator *process* crashes, which is what the fault model
    here injects; pass ``fsync=True`` for power-loss durability at the
    cost of one fsync per journal append.  Snapshots always fsync before
    their atomic rename.
    """

    def __init__(
        self,
        path: str,
        fsync: bool = False,
        compact_every: int = 512,
    ):
        if compact_every < 0:
            raise JournalError(
                f"compact_every must be non-negative, got {compact_every}"
            )
        os.makedirs(path, exist_ok=True)
        self.path = path
        self.fsync = fsync
        self.compact_every = compact_every
        self.journal_path = os.path.join(path, JOURNAL_FILE)
        self.snapshot_path = os.path.join(path, SNAPSHOT_FILE)
        self.state = CoordinatorState()
        self._records_since_snapshot = 0
        self._load()
        self._handle = open(self.journal_path, "ab")

    # -- open / replay ---------------------------------------------------------------

    def _load(self) -> None:
        if os.path.exists(self.snapshot_path):
            with open(self.snapshot_path, "rb") as handle:
                try:
                    self.state = pickle.load(handle)
                except Exception as error:
                    # Snapshots are published atomically, so corruption
                    # means external damage — fail loudly with the path.
                    raise JournalError(
                        f"coordinator snapshot {self.snapshot_path!r} is "
                        f"corrupt ({type(error).__name__}: {error})"
                    ) from error
        if not os.path.exists(self.journal_path):
            return
        good = 0
        with open(self.journal_path, "rb") as handle:
            while True:
                header = handle.read(_LENGTH.size)
                if len(header) < _LENGTH.size:
                    break
                (length,) = _LENGTH.unpack(header)
                blob = handle.read(length)
                if len(blob) < length:
                    break  # torn tail: the append never completed
                try:
                    rec_seq, kind, fields = pickle.loads(blob)
                except Exception:
                    break  # torn tail with a plausible length prefix
                good = handle.tell()
                if rec_seq <= self.state.last_rec_seq:
                    # Already folded into the snapshot (the coordinator
                    # died between snapshot rename and journal reset).
                    continue
                self.state.apply(kind, fields)
                self.state.last_rec_seq = rec_seq
                self._records_since_snapshot += 1
        if good < os.path.getsize(self.journal_path):
            # GC the torn tail so the next append starts on a record
            # boundary.
            with open(self.journal_path, "r+b") as handle:
                handle.truncate(good)

    @property
    def is_fresh(self) -> bool:
        """True when the directory held no prior serve's journal."""
        return self.state.last_rec_seq == 0

    # -- append / compact ------------------------------------------------------------

    def append(self, kind: str, *fields) -> None:
        """Durably append one record and fold it into :attr:`state`."""
        rec_seq = self.state.last_rec_seq + 1
        blob = pickle.dumps(
            (rec_seq, kind, fields), protocol=pickle.HIGHEST_PROTOCOL
        )
        self._handle.write(_LENGTH.pack(len(blob)))
        self._handle.write(blob)
        self._handle.flush()
        if self.fsync:
            os.fsync(self._handle.fileno())
        self.state.apply(kind, fields)
        self.state.last_rec_seq = rec_seq
        self._records_since_snapshot += 1
        if self.compact_every and self._records_since_snapshot >= self.compact_every:
            self.compact()

    def compact(self) -> None:
        """Snapshot the fold (write-tmp → fsync → rename) and reset the
        journal.  A crash between the two steps leaves journal records at
        or below the snapshot's ``last_rec_seq``, which replay skips."""
        partial = self.snapshot_path + ".tmp"
        with open(partial, "wb") as handle:
            pickle.dump(self.state, handle, protocol=pickle.HIGHEST_PROTOCOL)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(partial, self.snapshot_path)
        self._handle.close()
        self._handle = open(self.journal_path, "wb")
        self._records_since_snapshot = 0

    def record_count(self) -> int:
        """Records appended since the last snapshot (introspection)."""
        return self._records_since_snapshot

    def close(self) -> None:
        if self._handle is not None and not self._handle.closed:
            self._handle.flush()
            if self.fsync:
                os.fsync(self._handle.fileno())
            self._handle.close()

    def __enter__(self) -> "CoordinatorLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


@dataclass
class CoordinatorFaults:
    """Deterministic crash injection at the coordinator's commit points.

    ``crash_on`` names the commit point and its 1-based occurrence:
    ``"batch"`` / ``"register"`` / ``"unregister"`` are journal appends
    (``when`` selects before or after the record lands — the two halves of
    the torn-commit window), ``"ckpt-round"`` fires right after a
    checkpoint round's commands are enqueued (snapshots in flight, nothing
    journaled), and ``"rebalance-mid"`` fires between the export and
    import RPCs of a move (the blob exists only in the dying coordinator's
    memory).  The crash raises
    :class:`~repro.errors.CoordinatorCrashError`; the runtime marks itself
    crashed and the test harness either abandons it (cold start) or
    detaches its workers (re-adoption).
    """

    crash_on: Optional[tuple[str, int]] = None
    when: str = "before"
    fired: bool = False
    _counts: dict = field(default_factory=dict, repr=False, compare=False)

    def __post_init__(self):
        if self.when not in ("before", "after"):
            raise JournalError(
                f"CoordinatorFaults.when must be before/after, got {self.when!r}"
            )

    def check(self, point: str, phase: str) -> None:
        """Count one occurrence of ``point`` (on its ``before`` phase) and
        crash when the armed (point, occurrence, phase) triple matches."""
        if self.crash_on is None:
            return
        kind, occurrence = self.crash_on
        if kind != point:
            return
        if phase == "before":
            count = self._counts.get(point, 0) + 1
            self._counts[point] = count
        else:
            count = self._counts.get(point, 0)
        if count == occurrence and phase == self.when:
            self.fired = True
            raise CoordinatorCrashError(
                f"injected coordinator crash at {point} #{count} ({phase})"
            )
