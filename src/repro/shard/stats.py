"""Per-shard and aggregate run statistics.

A sharded run produces one :class:`~repro.engine.metrics.RunStats` per shard.
Because entry-channel connected components partition the plan, the shards'
event sets are disjoint: summing per-shard counters gives exactly the
single-engine counters (inputs, outputs, per-query breakdowns).  Wall-clock
is *not* a sum — shards run concurrently — so :class:`ShardedRunStats`
carries the parent-measured ``wall_seconds`` separately and defines
aggregate throughput against it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.metrics import RunStats


def merge_run_stats(per_shard: list[RunStats]) -> RunStats:
    """Sum disjoint per-shard counters into one RunStats.

    ``elapsed_seconds`` sums too (total engine-busy time across shards);
    use :attr:`ShardedRunStats.wall_seconds` for end-to-end timing.
    """
    merged = RunStats()
    for stats in per_shard:
        merged.absorb(stats)
    return merged


@dataclass
class ShardedRunStats:
    """Statistics of one sharded run: per-shard detail plus the aggregate."""

    per_shard: list[RunStats] = field(default_factory=list)
    #: End-to-end wall-clock of the whole sharded run, measured by the
    #: coordinating process (covers routing, worker feeding and result
    #: collection — everything a user of the sharded engine waits for).
    wall_seconds: float = 0.0
    #: Execution mode actually used ("process" workers or "inline").
    mode: str = "inline"
    #: Process-mode worker startup cost (fork + import + ready handshake),
    #: excluded from ``wall_seconds`` when the ready barrier completes —
    #: reported separately so drain throughput and startup amortization
    #: stay honestly distinguishable.  0.0 inline.
    spawn_seconds: float = 0.0

    @property
    def aggregate(self) -> RunStats:
        return merge_run_stats(self.per_shard)

    @property
    def throughput(self) -> float:
        """Aggregate logical input events per wall-clock second."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.aggregate.input_events / self.wall_seconds

    @property
    def busy_seconds(self) -> float:
        """Total engine-busy time summed across shards."""
        return sum(stats.elapsed_seconds for stats in self.per_shard)

    def __str__(self):
        # Merge once: the throughput property would re-merge every shard's
        # counters a second time.
        aggregate = self.aggregate
        throughput = (
            aggregate.input_events / self.wall_seconds
            if self.wall_seconds > 0
            else 0.0
        )
        return (
            f"ShardedRunStats({len(self.per_shard)} shards, mode={self.mode}, "
            f"in={aggregate.input_events}, out={aggregate.output_events}, "
            f"wall={self.wall_seconds:.4f}s, busy={self.busy_seconds:.4f}s, "
            f"throughput={throughput:,.0f} ev/s)"
        )
