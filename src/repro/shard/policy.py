"""Rebalance policies for the sharded lifecycle runtimes.

A policy looks at a runtime (in-process :class:`~repro.shard.runtime.ShardedRuntime`
or process-mode :class:`~repro.shard.proc.ProcessShardedRuntime` — both
expose ``shard_loads`` / ``queries_on`` / ``shard_stats`` /
``component_queries``) and proposes an ordered iterable of
``(query_id, to_shard)`` candidate moves; the churn driver tries them
until one sticks (a candidate can fail when its component turns out to
co-locate with queries the policy did not know about).  Candidates are
yielded lazily: the per-candidate component lookup — one worker RPC in
process mode — is only paid for candidates the caller actually tries.

Two policies:

- :class:`QueryCountPolicy` — the PR-3 behaviour: level active query counts,
  moving one query's component from the most- to the least-loaded shard.
  Extended with the ROADMAP's oversized-component alerting: a component
  whose query count exceeds the per-shard target cannot improve the balance
  by moving (a sharing group is the atomic placement unit), so it is
  skipped, logged, and counted in :attr:`RebalancePolicy.oversized_alerts`.

- :class:`ThroughputPolicy` — the adaptive policy: per-shard
  :class:`~repro.engine.metrics.RunStats` *deltas* since the last decision
  identify the slowest shard (most engine-busy time per decision window)
  and the hottest components on it (most outputs attributed to their
  queries), and the policy proposes moving the hottest component off the
  slowest shard onto the least-busy one.  Busy-time deltas rather than
  cumulative totals keep the signal responsive under churn: a shard that
  *was* hot an hour ago but drained since stops attracting moves.
"""

from __future__ import annotations

import logging
import math
from dataclasses import dataclass
from typing import Optional

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class SplitProposal:
    """An oversized component the policy wants the planner to cut.

    Rebalancing moves whole components, so a component above the per-shard
    target is immovable dead weight — the only fix is splitting it at a
    bridge channel (:meth:`~repro.shard.planner.ShardPlanner.best_cut`)
    and relaying the cut edge cross-shard.  Policies cannot perform that
    surgery mid-serve; they record the proposal for the driver (or the
    next cold partition, which splits by default).
    """

    query_ids: tuple
    shard: int
    size: int
    per_shard_target: int


def _shard_ids(runtime) -> list[int]:
    """Live shard ids in ``shard_loads`` order.

    Elastic process-mode runtimes have sparse ids (retired ids are never
    reused), so policies must key every signal by id, never by position.
    Runtimes predating :meth:`shard_ids` are contiguous by construction.
    """
    accessor = getattr(runtime, "shard_ids", None)
    if accessor is None:
        return list(range(runtime.n_shards))
    return list(accessor())


class RebalancePolicy:
    """Base: propose candidate moves; track oversized-component alerts.

    Policies also steer elastic topology changes: :meth:`on_grow` proposes
    the moves that seed a freshly added worker, and :meth:`on_shrink`
    picks where each component of a departing worker should land.
    """

    def __init__(self):
        #: Times a candidate component was skipped because it exceeded the
        #: per-shard target and therefore could not improve the balance.
        self.oversized_alerts = 0
        #: One :class:`SplitProposal` per distinct oversized component seen
        #: (deduplicated by query set) — the driver's cue to re-partition
        #: with splitting enabled.
        self.split_proposals: list[SplitProposal] = []
        self._proposed_splits: set[frozenset] = set()

    def propose(self, runtime):
        """Ordered ``(query_id, to_shard)`` candidates (lazy, may be empty)."""
        raise NotImplementedError

    def on_grow(self, runtime, new_shard: int) -> list[tuple[str, int]]:
        """Moves that seed a just-added (empty) worker.

        Default: level query counts — drain the most-loaded shards onto
        the newcomer until it reaches the per-shard target.  Loads are
        tracked locally while choosing, so one call proposes the whole
        seeding batch without re-polling the runtime.
        """
        ids = _shard_ids(runtime)
        loads = dict(zip(ids, runtime.shard_loads()))
        loads.setdefault(new_shard, 0)
        total = sum(loads.values())
        target = math.ceil(total / len(loads)) if total else 0
        remaining = {
            shard: list(runtime.queries_on(shard))
            for shard in loads
            if shard != new_shard
        }
        moves: list[tuple[str, int]] = []
        while loads[new_shard] < target:
            donor = max(
                remaining,
                key=lambda shard: (loads[shard], -shard),
            )
            if loads[donor] <= loads[new_shard] + 1 or not remaining[donor]:
                break
            query_id = remaining[donor].pop(0)
            moves.append((query_id, new_shard))
            loads[donor] -= 1
            loads[new_shard] += 1
        return moves

    def on_shrink(self, runtime, departing: int, query_id: str) -> Optional[int]:
        """Target shard for one component draining off ``departing``.

        ``None`` delegates to the runtime's default (least-loaded
        survivor).  Subclasses with a richer signal override this.
        """
        return None

    def _component_queries(self, runtime, query_id: str) -> Optional[list[str]]:
        """The queries moving with ``query_id``, when the runtime can tell.

        The in-process runtime inspects its live plans; the process-mode
        runtime resolves it with one worker RPC — which is why
        :meth:`_filter_oversized` only looks up candidates the caller
        actually consumes.  A runtime without the accessor skips the
        oversized pre-check entirely (the move itself still carries the
        whole component either way).
        """
        resolver = getattr(runtime, "component_queries", None)
        if resolver is None:
            return None
        return resolver(query_id)

    def _improves(self, donor_load: int, target_load: int, size: int) -> bool:
        """Whether moving a ``size``-query component can improve balance.

        The count-levelling default: the receiver must end up strictly
        less loaded than the donor is now.  The throughput policy relaxes
        this (its signal is busy time, not counts) and only refuses moves
        that would relocate the donor's entire population.
        """
        return target_load + size < donor_load

    def _filter_oversized(
        self, runtime, candidates: list[tuple[str, int]], donor_load: int, target_load: int
    ):
        """Yield candidates whose component could improve the balance.

        Lazy on purpose: the component lookup costs a worker round-trip in
        process mode, and the churn driver stops at the first candidate
        that rebalances successfully — later candidates are never priced.
        """
        total = len(runtime.active_queries)
        per_shard_target = math.ceil(total / runtime.n_shards) if total else 0
        for query_id, to_shard in candidates:
            component = self._component_queries(runtime, query_id)
            if component is None:
                yield query_id, to_shard
                continue
            size = len(component)
            if not self._improves(donor_load, target_load, size):
                # Moving the whole component cannot improve the balance.
                if size > per_shard_target:
                    self.oversized_alerts += 1
                    shard = runtime.shard_of(query_id)
                    logger.warning(
                        "oversized component (%d queries, per-shard target %d) "
                        "anchored to shard %d cannot be rebalanced: %s",
                        size,
                        per_shard_target,
                        shard,
                        component,
                    )
                    key = frozenset(component)
                    if key not in self._proposed_splits:
                        self._proposed_splits.add(key)
                        self.split_proposals.append(
                            SplitProposal(
                                query_ids=tuple(sorted(component)),
                                shard=shard,
                                size=size,
                                per_shard_target=per_shard_target,
                            )
                        )
                continue
            yield query_id, to_shard


class QueryCountPolicy(RebalancePolicy):
    """Level active query counts (the PR-3 drive_sharded heuristic)."""

    def propose(self, runtime) -> list[tuple[str, int]]:
        ids = _shard_ids(runtime)
        loads = dict(zip(ids, runtime.shard_loads()))
        donor = max(ids, key=lambda shard: (loads[shard], -shard))
        target = min(ids, key=lambda shard: (loads[shard], shard))
        if donor == target or loads[donor] <= loads[target] + 1:
            return []
        candidates = [
            (query_id, target) for query_id in runtime.queries_on(donor)
        ]
        return self._filter_oversized(
            runtime, candidates, loads[donor], loads[target]
        )


class ThroughputPolicy(RebalancePolicy):
    """Move the hottest component off the slowest shard.

    ``min_ratio`` guards against thrash: no move is proposed unless the
    slowest shard's busy-time delta exceeds the fastest's by that factor
    (with an absolute floor of ``min_busy_seconds`` so cold starts and
    measurement noise do not trigger moves).

    ``heat`` selects how the donor's components are ranked:

    - ``"outputs"`` (default) — per-query output deltas from
      :class:`~repro.engine.metrics.RunStats`, always available.
    - ``"busy"`` — per-query engine busy-time deltas from the telemetry
      subsystem (:meth:`shard_telemetry` / per-m-op sampled busy time,
      attributed to queries).  A sharing group that produces few outputs
      but burns CPU (heavy selections, wide joins) ranks where it belongs.
      Falls back to output deltas when the runtime is not observing.
    """

    def __init__(
        self,
        min_ratio: float = 1.5,
        min_busy_seconds: float = 0.0,
        heat: str = "outputs",
    ):
        super().__init__()
        if min_ratio < 1.0:
            raise ValueError(f"min_ratio must be >= 1.0, got {min_ratio}")
        if heat not in ("outputs", "busy"):
            raise ValueError(f"heat must be 'outputs' or 'busy', got {heat!r}")
        self.min_ratio = min_ratio
        self.min_busy_seconds = min_busy_seconds
        self.heat = heat
        # Keyed by shard id, not position: elastic resizes renumber
        # nothing, so deltas stay attributable across grow/shrink.  A
        # changed id set resets the window (absolute values serve as the
        # first delta, as before).
        self._previous_busy: Optional[dict[int, float]] = None
        self._previous_outputs: Optional[dict[int, dict]] = None
        self._previous_heat: Optional[dict[int, dict]] = None

    def _improves(self, donor_load: int, target_load: int, size: int) -> bool:
        # Busy time, not query count, is the signal: a move helps unless
        # it relocates the donor's whole population (the hotspot would
        # just change shards).
        return size < donor_load

    def propose(self, runtime) -> list[tuple[str, int]]:
        ids = _shard_ids(runtime)
        stats = runtime.shard_stats()
        busy = {
            shard: entry.elapsed_seconds for shard, entry in zip(ids, stats)
        }
        outputs = {
            shard: dict(entry.outputs_by_query)
            for shard, entry in zip(ids, stats)
        }
        if (
            self._previous_busy is None
            or set(self._previous_busy) != set(busy)
        ):
            delta_busy = busy
            delta_outputs = outputs
        else:
            delta_busy = {
                shard: now - self._previous_busy[shard]
                for shard, now in busy.items()
            }
            delta_outputs = {
                shard: {
                    query_id: count
                    - self._previous_outputs[shard].get(query_id, 0)
                    for query_id, count in now.items()
                }
                for shard, now in outputs.items()
            }
        self._previous_busy = busy
        self._previous_outputs = outputs
        delta_heat = self._busy_heat_deltas(runtime, ids)
        donor = max(ids, key=lambda shard: (delta_busy[shard], -shard))
        target = min(ids, key=lambda shard: (delta_busy[shard], shard))
        if donor == target:
            return []
        if delta_busy[donor] < self.min_busy_seconds:
            return []
        if delta_busy[donor] <= delta_busy[target] * self.min_ratio:
            return []
        heat = delta_outputs[donor]
        if delta_heat is not None and delta_heat.get(donor):
            heat = delta_heat[donor]
        candidates = sorted(
            runtime.queries_on(donor),
            key=lambda query_id: (-heat.get(query_id, 0), query_id),
        )
        loads = dict(zip(ids, runtime.shard_loads()))
        return self._filter_oversized(
            runtime,
            [(query_id, target) for query_id in candidates],
            loads[donor],
            loads[target],
        )

    def on_shrink(self, runtime, departing: int, query_id: str) -> Optional[int]:
        """Land draining components on the least-busy survivor.

        Uses the last observed busy-time window; falls back to the
        runtime's least-loaded default before the first :meth:`propose`.
        """
        if self._previous_busy is None:
            return None
        survivors = [
            shard
            for shard in _shard_ids(runtime)
            if shard != departing and shard in self._previous_busy
        ]
        if not survivors:
            return None
        return min(
            survivors,
            key=lambda shard: (self._previous_busy[shard], shard),
        )

    def _busy_heat_deltas(self, runtime, ids) -> Optional[dict]:
        """Per-shard ``{query_id: busy-seconds delta}`` maps keyed by shard
        id, or ``None`` when busy heat is off or the runtime exposes no
        telemetry."""
        if self.heat != "busy":
            return None
        telemetry = getattr(runtime, "shard_telemetry", None)
        if telemetry is None:
            return None
        heat_now = {
            shard: dict(view["query_heat"])
            for shard, view in zip(ids, telemetry())
        }
        if (
            self._previous_heat is None
            or set(self._previous_heat) != set(heat_now)
        ):
            delta_heat = heat_now
        else:
            delta_heat = {
                shard: {
                    query_id: value
                    - self._previous_heat[shard].get(query_id, 0.0)
                    for query_id, value in now.items()
                }
                for shard, now in heat_now.items()
            }
        self._previous_heat = heat_now
        return delta_heat
