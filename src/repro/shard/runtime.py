"""The sharded online lifecycle runtime.

:class:`ShardedRuntime` extends the PR-1 lifecycle to ``n`` shards: one
:class:`~repro.runtime.QueryRuntime` (live plan + batched engine) per shard,
all sharing the *same* source ``StreamDef``/``Channel`` objects.

- ``register`` places the new query on a shard (least-loaded by active query
  count unless an explicit ``shard=`` is given) and routes the registration
  there; sharing happens *within* the owning shard's plan exactly as in the
  single-runtime case.
- ``unregister`` / ``reoptimize`` route to the owning shard.
- ``process`` / ``process_batch`` route each source event to every shard
  whose plan consumes that stream (a source read by queries on two shards is
  replicated to both; queries are disjoint across shards, so outputs never
  double).  The aggregate :attr:`stats` count each source event **once**,
  matching the single-runtime accounting.
- ``rebalance`` moves one connected component between shards mid-churn,
  state intact: the donor runtime drains the component
  (:meth:`~repro.runtime.QueryRuntime.export_component` — plan subgraph +
  live executors), the receiving runtime adopts it and re-seeds the
  executors through the migration machinery
  (:meth:`~repro.runtime.QueryRuntime.import_component`).  Because the
  shards share source channel objects, wiring signatures survive the move
  and window/sequence state rides across untouched.

The shard runtimes run in the coordinating process: lifecycle changes and
state transfer stay plain method calls, and every engine already uses the
batched dispatch hot path.  (Cross-process serving of a *static* plan is the
:class:`~repro.shard.engine.ShardedEngine`'s job.)
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from repro.core.optimizer import OptimizationReport, Optimizer
from repro.engine.metrics import RunStats
from repro.errors import LifecycleError, QueryLanguageError
from repro.lang.ast import LogicalQuery
from repro.runtime.config import internal_construction, warn_direct_construction
from repro.runtime.runtime import ComponentTransfer, QueryRuntime
from repro.streams.channel import Channel
from repro.streams.schema import Schema
from repro.streams.stream import StreamDef
from repro.streams.tuples import StreamTuple


class ShardedRuntime:
    """``n`` live plan+engine pairs serving one changing query population."""

    def __init__(
        self,
        sources: Optional[dict[str, Schema]] = None,
        n_shards: int = 2,
        optimizer: Optional[Optimizer] = None,
        capture_outputs: bool = False,
        track_latency: bool = False,
        incremental: bool = True,
        observe: bool = False,
    ):
        warn_direct_construction("ShardedRuntime")
        if n_shards < 1:
            raise LifecycleError(f"n_shards must be at least 1, got {n_shards}")
        self.n_shards = n_shards
        self.observe = bool(observe)
        self.streams: dict[str, StreamDef] = {}
        self._channels: dict[str, Channel] = {}
        with internal_construction():
            self.runtimes: list[QueryRuntime] = [
                QueryRuntime(
                    sources=None,
                    optimizer=optimizer,
                    capture_outputs=capture_outputs,
                    track_latency=track_latency,
                    incremental=incremental,
                    observe=observe,
                )
                for __ in range(n_shards)
            ]
        #: Aggregate statistics; each source event is counted once, outputs
        #: are summed across shards (queries are disjoint across shards).
        self.stats = RunStats()
        #: Completed component rebalances (parity with the process runtime).
        self.rebalances = 0
        self._query_shard: dict[str, int] = {}
        #: stream name -> shards currently consuming it (rebuilt lazily
        #: after every lifecycle change).
        self._route_cache: dict[str, tuple[int, ...]] = {}
        #: alias -> {"query_id", "collected"}: derived streams re-emitted
        #: from one shard's query output into the others' entries
        #: (:meth:`export_stream`).
        self._relays: dict[str, dict] = {}
        #: Tuples re-emitted across shards through relay exports (derived
        #: traffic — never counted as fresh source input).
        self.relayed_events = 0
        if sources:
            for name, schema in sources.items():
                self.add_source(name, schema)

    # -- sources ---------------------------------------------------------------------

    def add_source(
        self,
        name: str,
        schema: Schema,
        sharable_label: Optional[str] = None,
    ) -> StreamDef:
        """Declare a source once; every shard adopts the same stream/channel."""
        if name in self.streams:
            raise LifecycleError(f"source {name!r} is already declared")
        stream = StreamDef(name, schema, sharable_label=sharable_label)
        channel = Channel.singleton(stream)
        for runtime in self.runtimes:
            runtime.adopt_source(stream, channel)
        self.streams[name] = stream
        self._channels[name] = channel
        return stream

    # -- lifecycle -------------------------------------------------------------------

    @property
    def active_queries(self) -> list[str]:
        return list(self._query_shard)

    def shard_of(self, query_id: str) -> int:
        """The shard currently owning ``query_id``."""
        try:
            return self._query_shard[query_id]
        except KeyError:
            raise LifecycleError(
                f"query {query_id!r} is not registered"
            ) from None

    def place(self, logical: LogicalQuery) -> int:
        """Placement heuristic for a new query: the least-loaded shard.

        Load is the active query count (cheap and churn-stable); ties break
        to the lowest shard index so placement is deterministic.  Placement
        trades cross-shard sharing for parallelism — queries that would have
        merged with an m-op on another shard run separately instead (see
        README "Scaling out" for when that trade wins).
        """
        return min(
            range(self.n_shards),
            key=lambda index: (len(self.runtimes[index].active_queries), index),
        )

    def register(
        self,
        query: Union[str, LogicalQuery],
        query_id: Optional[str] = None,
        shard: Optional[int] = None,
    ) -> OptimizationReport:
        """Register a query on a shard (explicit ``shard=`` or placement)."""
        from repro.lang.compiler import as_logical

        try:
            logical = as_logical(query, query_id)
        except QueryLanguageError as error:
            raise LifecycleError(str(error)) from error
        if logical.query_id in self._query_shard:
            raise LifecycleError(
                f"query {logical.query_id!r} is already registered"
            )
        if shard is None:
            shard = self.place(logical)
        elif not 0 <= shard < self.n_shards:
            raise LifecycleError(
                f"shard {shard} out of range (n_shards={self.n_shards})"
            )
        report = self.runtimes[shard].register(logical)
        self._query_shard[logical.query_id] = shard
        self._route_cache.clear()
        return report

    def unregister(self, query_id: str) -> list:
        """Retire a query on its owning shard."""
        shard = self.shard_of(query_id)
        removed = self.runtimes[shard].unregister(query_id)
        del self._query_shard[query_id]
        self._route_cache.clear()
        return removed

    def reoptimize(self, shard: Optional[int] = None) -> list[OptimizationReport]:
        """Maintenance sweep on one shard, or on all of them."""
        shards = range(self.n_shards) if shard is None else [shard]
        reports = [self.runtimes[index].reoptimize() for index in shards]
        self._route_cache.clear()
        return reports

    # -- rebalance -------------------------------------------------------------------

    def rebalance(self, query_id: str, to_shard: int) -> ComponentTransfer:
        """Move ``query_id``'s connected component to ``to_shard``, preserving
        executor state.

        Happens on a batch boundary (between ``process`` calls), like every
        migration.  All queries sharing m-ops with ``query_id`` move
        together — the component is the atomic placement unit.  Returns the
        transfer (moved queries, carried state) for observability.
        """
        if not 0 <= to_shard < self.n_shards:
            raise LifecycleError(
                f"shard {to_shard} out of range (n_shards={self.n_shards})"
            )
        from_shard = self.shard_of(query_id)
        if from_shard == to_shard:
            raise LifecycleError(
                f"query {query_id!r} already lives on shard {to_shard}"
            )
        # Flush pending bridge traffic first: a move discards the donor's
        # tap buffer, so everything produced must be delivered before it.
        self.stats.absorb(self._drain_relays())
        transfer = self.runtimes[from_shard].export_component(query_id)
        try:
            self.runtimes[to_shard].import_component(transfer)
        except Exception:
            # Put the component back where it came from; state is still in
            # the transfer's executors, so the restore is also lossless.
            self.runtimes[from_shard].import_component(transfer)
            raise
        for moved_id in transfer.queries:
            self._query_shard[moved_id] = to_shard
        # Re-home relay taps riding the moved component: the donor's
        # registry entry leaves with the component, the recipient re-taps
        # with the collected cursor so relay numbering continues unbroken.
        moved = set(transfer.queries)
        for alias, entry in self._relays.items():
            if entry["query_id"] not in moved:
                continue
            self.runtimes[from_shard].remove_export(alias)
            self.runtimes[to_shard].export_stream(
                alias,
                entry["query_id"],
                self.streams[alias],
                self._channels[alias],
                cursor=entry["collected"],
            )
        self._route_cache.clear()
        self.rebalances += 1
        return transfer

    def shard_ids(self) -> list[int]:
        """Live shard ids, in :meth:`shard_loads` order.  Contiguous here;
        the process-mode runtime's ids go sparse under elastic resize."""
        return list(range(self.n_shards))

    def shard_loads(self) -> list[int]:
        """Active query count per shard (the placement/rebalance signal)."""
        return [len(runtime.active_queries) for runtime in self.runtimes]

    def shard_stats(self) -> list[RunStats]:
        """Per-shard cumulative RunStats (the adaptive-rebalance signal)."""
        return [runtime.stats for runtime in self.runtimes]

    def component_queries(self, query_id: str) -> list[str]:
        """Every query that would move with ``query_id`` in a rebalance."""
        return self.runtimes[self.shard_of(query_id)].component_query_ids(
            query_id
        )

    def queries_on(self, shard: int) -> list[str]:
        """Query ids currently owned by ``shard``, in registration order."""
        return [
            query_id
            for query_id, owner in self._query_shard.items()
            if owner == shard
        ]

    # -- relay exports (cross-shard derived channels) --------------------------------

    def export_stream(
        self,
        query_id: str,
        alias: str,
        sharable_label: Optional[str] = None,
    ) -> StreamDef:
        """Re-emit ``query_id``'s output stream as the derived source
        ``alias``, consumable by queries on *any* shard.

        The owning shard's engine gets a relay tap on the query's sink
        channel; after every batch the coordinator drains the tap and
        re-emits the captured runs onto ``alias`` for every consuming
        shard, in emission order, on the batch boundary — so placements
        that split producer and consumer across shards serve byte-identical
        outputs to co-located ones.  Returns the alias stream.
        """
        if alias in self.streams:
            raise LifecycleError(f"source {alias!r} is already declared")
        owner = self.shard_of(query_id)
        from repro.shard.relay import sink_channel_of

        sink = sink_channel_of(self.runtimes[owner].plan, query_id)
        stream = StreamDef(
            alias, sink.streams[0].schema, sharable_label=sharable_label
        )
        channel = Channel.singleton(stream)
        for index, runtime in enumerate(self.runtimes):
            runtime.export_stream(
                alias,
                query_id if index == owner else None,
                stream,
                channel,
            )
        self.streams[alias] = stream
        self._channels[alias] = channel
        self._relays[alias] = {"query_id": query_id, "collected": 0}
        self._route_cache.clear()
        return stream

    def exported_streams(self) -> dict[str, str]:
        """alias → producing query id, in declaration order."""
        return {
            alias: entry["query_id"] for alias, entry in self._relays.items()
        }

    def _drain_relays(self) -> RunStats:
        """Pump every relay export until quiescent (aliases can chain:
        a consumer of one alias may itself feed another).  Relayed tuples
        are derived traffic — the returned stats carry their outputs and
        processing counters but zero *source* input events."""
        drained = RunStats()
        if not self._relays:
            return drained
        from repro.shard.relay import relay_rows

        progress = True
        while progress:
            progress = False
            for alias, entry in self._relays.items():
                owner = self._query_shard[entry["query_id"]]
                start, runs, __ = self.runtimes[owner].collect_relay(
                    alias, entry["collected"]
                )
                skip = entry["collected"] - start
                for run in runs:
                    rows = relay_rows(run)
                    if skip >= len(rows):
                        skip -= len(rows)
                        continue
                    if skip:
                        rows = rows[skip:]
                        skip = 0
                    for shard in self._consumers_of(alias):
                        drained.absorb(
                            self.runtimes[shard].process_batch(alias, rows)
                        )
                    entry["collected"] += len(rows)
                    self.relayed_events += len(rows)
                    progress = True
        drained.input_events = 0
        drained.physical_input_events = 0
        return drained

    # -- event processing ------------------------------------------------------------

    def _consumers_of(self, stream_name: str) -> tuple[int, ...]:
        shards = self._route_cache.get(stream_name)
        if shards is None:
            stream = self.streams.get(stream_name)
            if stream is None:
                raise LifecycleError(f"unknown source stream {stream_name!r}")
            shards = tuple(
                index
                for index, runtime in enumerate(self.runtimes)
                if runtime.plan.consumers_of(stream)
            )
            self._route_cache[stream_name] = shards
        return shards

    def process(self, stream_name: str, tuple_: StreamTuple) -> RunStats:
        """Push one source event to every shard consuming its stream."""
        shards = self._consumers_of(stream_name)
        merged = RunStats()
        for index in shards:
            merged.absorb(self.runtimes[index].process(stream_name, tuple_))
        merged.absorb(self._drain_relays())
        # Count the source event once, however many shards consumed it.
        merged.input_events = 1
        merged.physical_input_events = 1
        self.stats.absorb(merged)
        return merged

    def process_batch(
        self, stream_name: str, tuples: Sequence[StreamTuple]
    ) -> RunStats:
        """Push a run of source events (one stream, timestamp order) to every
        consuming shard's batched engine.  A batch boundary is the safe point
        for lifecycle changes and rebalances, exactly as in the single
        runtime."""
        shards = self._consumers_of(stream_name)
        merged = RunStats()
        for index in shards:
            merged.absorb(
                self.runtimes[index].process_batch(stream_name, tuples)
            )
        merged.absorb(self._drain_relays())
        merged.input_events = len(tuples)
        merged.physical_input_events = len(tuples)
        self.stats.absorb(merged)
        return merged

    # -- introspection ---------------------------------------------------------------

    @property
    def state_size(self) -> int:
        return sum(runtime.state_size for runtime in self.runtimes)

    @property
    def captured(self) -> dict:
        merged: dict = {}
        for runtime in self.runtimes:
            merged.update(runtime.captured)
        return merged

    @property
    def migration_log(self) -> list:
        log = []
        for runtime in self.runtimes:
            log.extend(runtime.migration_log)
        return log

    @property
    def reports(self) -> list[OptimizationReport]:
        reports = []
        for runtime in self.runtimes:
            reports.extend(runtime.reports)
        return reports

    @property
    def migrations(self) -> int:
        return sum(runtime.stats.migrations for runtime in self.runtimes)

    def shard_telemetry(self) -> list[dict]:
        """Per-shard telemetry view (empty sections unless ``observe=``):
        ``{"shard", "mop_stats", "query_heat", "peak_state"}`` — the same
        shape the process-mode runtime assembles from its ``stats`` RPC, so
        policies and exporters work against either runtime unchanged."""
        views = []
        for index, runtime in enumerate(self.runtimes):
            observer = runtime.observer
            views.append(
                {
                    "shard": index,
                    "mop_stats": runtime.mop_stats(),
                    "query_heat": runtime.query_heat(),
                    "peak_state": observer.peak_state if observer else 0,
                    "stats": runtime.stats,
                    "state_size": runtime.state_size,
                }
            )
        return views

    def metrics_registry(self):
        """A fresh :class:`~repro.obs.metrics.MetricsRegistry` holding the
        cluster view: per-shard RunStats counters plus (when observing)
        per-m-op records and the peak-state gauge."""
        from repro.obs.metrics import MetricsRegistry, publish_run_stats

        registry = MetricsRegistry()
        for index, runtime in enumerate(self.runtimes):
            publish_run_stats(registry, runtime.stats, shard=index)
            observer = runtime.observer
            if observer is not None:
                observer.publish(registry, shard=index)
        return registry

    def describe(self) -> str:
        lines = [
            f"ShardedRuntime: {len(self._query_shard)} active queries over "
            f"{self.n_shards} shards, loads={self.shard_loads()}, "
            f"state={self.state_size}"
        ]
        for index, runtime in enumerate(self.runtimes):
            lines.append(f"-- shard {index} --")
            lines.append(runtime.describe())
        return "\n".join(lines)
