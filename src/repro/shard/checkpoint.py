"""Durable checkpoint/restore for the process-mode sharded runtime.

PR 4 left crash recovery *at-least-serving*: a dead worker respawned with a
blank re-registration of its catalog queries, silently dropping every
window, sequence-instance and partial-aggregate it had accumulated.  This
module is the missing checkpoint lifecycle — the same "materialize shared
state so it survives and is reusable" move that motivates materialization
points in classic multi-query optimization:

- :class:`CheckpointStore` — versioned per-shard checkpoints, in memory or
  on disk.  Each :class:`ShardCheckpoint` is one consistency cut of one
  worker: a :class:`ComponentCheckpoint` per live component (the
  :func:`~repro.shard.wire.encode_transfer` blob — plan subgraph + executor
  state snapshots + captured histories), the worker's **stream cursor** at
  the cut, the captured histories no live component owns, and the
  write-ahead-log position the cut corresponds to.
- :class:`ShardLog` — the coordinator's per-shard write-ahead log: every
  data run and lifecycle command shipped to a worker since its last
  complete checkpoint, in order.  Recovery = restore the latest checkpoint,
  then replay the log suffix; a completed checkpoint truncates the prefix
  it makes redundant, which is what bounds both memory and recovery time.
- :class:`RecoveryReport` — the structured account of one recovery
  (queries restored / replayed / blank-re-registered, tuples replayed,
  state restored), emitted through :mod:`logging` so state loss is never
  silent again, and asserted on by the recovery test suite.
- :func:`capture_manifest` / :func:`apply_restore` — the worker-side
  halves of the ``checkpoint`` and ``restore`` commands.

Versioning is strict: :meth:`CheckpointStore.put` only accepts versions
that supersede the shard's latest, and :meth:`CheckpointStore.load`
rejects superseded versions with :class:`~repro.errors.StaleCheckpointError`
— once a newer cut exists, the replay log behind it is gone, so restoring
an older cut could never be completed to the present.
"""

from __future__ import annotations

import os
import pickle
import re
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import CheckpointError, StaleCheckpointError
from repro.shard.wire import decode_transfer, encode_manifest, encode_transfer


@dataclass(frozen=True)
class ComponentCheckpoint:
    """One component's state at a shard checkpoint's cut."""

    #: Sorted query ids the component serves (active registrations).
    query_ids: tuple
    #: :func:`~repro.shard.wire.encode_transfer` blob — plan subgraph,
    #: logical queries, executor state snapshots, captured histories.
    blob: bytes
    #: Operator state captured in the blob (accounting only).
    state_carried: int = 0
    #: query id → captured-history length at the cut (the restore point's
    #: replay window starts after these offsets).
    captured_offsets: dict = field(default_factory=dict)


@dataclass(frozen=True)
class ShardCheckpoint:
    """A complete consistency cut of one worker."""

    shard: int
    version: int
    #: Write-ahead-log position of the cut: recovery replays log entries
    #: from here on.
    position: int
    #: Source stream name → events the worker had processed at the cut.
    cursor: dict
    components: tuple
    #: Pickled ``{query_id: [StreamTuple, ...]}`` captured histories owned
    #: by no live component (unregistered queries) at the cut.
    captured_extra: bytes = pickle.dumps({})
    #: Pickled cumulative ``RunStats`` of the worker at the cut (``None``
    #: pickled when absent); restored so post-recovery aggregate counters
    #: match a never-crashed serve.
    stats: bytes = pickle.dumps(None)
    #: Relay cursor per exported alias owned by this shard: tuples the
    #: producer's tap had dispatched at the cut.  Relays are drained before
    #: every cut, so this always equals the coordinator's journaled
    #: collected count — restore re-installs each tap at this cursor.
    relays: dict = field(default_factory=dict)

    @property
    def query_ids(self) -> list:
        """Every query id restored by this checkpoint, sorted."""
        ids = []
        for component in self.components:
            ids.extend(component.query_ids)
        return sorted(ids)

    @property
    def state_carried(self) -> int:
        return sum(component.state_carried for component in self.components)


class ShardLog:
    """A per-shard write-ahead log with absolute positions.

    Entries are appended at :attr:`end`; a completed checkpoint at position
    ``p`` calls :meth:`truncate_to`, discarding everything before ``p`` —
    positions stay absolute across truncation, so checkpoint cuts recorded
    earlier remain valid references.
    """

    def __init__(self):
        self._base = 0
        self._entries: list[tuple] = []

    @property
    def start(self) -> int:
        """Oldest retained position (== the last completed checkpoint cut)."""
        return self._base

    @property
    def end(self) -> int:
        """Position the next appended entry will take."""
        return self._base + len(self._entries)

    def append(self, entry: tuple) -> int:
        """Append one entry; returns its absolute position."""
        position = self.end
        self._entries.append(entry)
        return position

    def truncate_to(self, position: int) -> int:
        """Discard entries before ``position``; returns how many were cut."""
        if position < self._base:
            return 0  # an older (failed) cut: nothing left to discard
        if position > self.end:
            raise CheckpointError(
                f"cannot truncate log to {position}: only {self.end} entries "
                f"were ever appended"
            )
        dropped = position - self._base
        del self._entries[:dropped]
        self._base = position
        return dropped

    def clone(self) -> "ShardLog":
        """An independent copy (same absolute positions and entries).

        Used when a resumed coordinator seeds its live write-ahead logs
        from the journal's folded mirror — the two must never alias, or
        every subsequent append would double-apply on the mirror.
        """
        copy = ShardLog()
        copy._base = self._base
        copy._entries = list(self._entries)
        return copy

    def entries_from(self, position: int) -> list[tuple]:
        """The retained suffix starting at absolute ``position``."""
        if position < self._base:
            raise CheckpointError(
                f"log entries before position {self._base} were truncated by "
                f"a completed checkpoint; cannot replay from {position}"
            )
        if position > self.end:
            raise CheckpointError(
                f"cannot replay from position {position}: only {self.end} "
                f"entries were ever appended (foreign checkpoint cut?)"
            )
        return list(self._entries[position - self._base :])

    def __len__(self) -> int:
        return len(self._entries)


@dataclass
class RecoveryReport:
    """Structured account of one worker recovery.

    Emitted through ``logging`` (warning level when state was lost) and
    appended to ``ProcessShardedRuntime.recovery_log`` — the fix for the
    PR-4 silent-loss gap, where a respawn dropped operator state without a
    trace.
    """

    shard: int
    incarnation: int
    durable: bool
    #: Version restored from the store, or ``None`` (no checkpoint: either
    #: non-durable recovery, or a full replay from the log's origin).
    checkpoint_version: Optional[int]
    #: Queries whose state came back from checkpoint blobs.
    queries_restored: list = field(default_factory=list)
    #: Queries re-registered by write-ahead-log replay (registered after
    #: the restored cut; their post-cut state is rebuilt by data replay).
    queries_replayed: list = field(default_factory=list)
    #: Queries blank re-registered with their operator state dropped
    #: (non-durable mode only).
    queries_lost_state: list = field(default_factory=list)
    #: Source events re-shipped to the respawned worker.
    tuples_replayed: int = 0
    #: Lifecycle commands re-applied from the log.
    lifecycle_replayed: int = 0
    #: Operator state re-seeded from checkpoint blobs.
    state_restored: int = 0
    elapsed_seconds: float = 0.0

    @property
    def state_lost(self) -> bool:
        """True when the recovery dropped operator state (blank respawn)."""
        return bool(self.queries_lost_state)

    def __str__(self):
        if self.durable:
            origin = (
                f"checkpoint v{self.checkpoint_version}"
                if self.checkpoint_version is not None
                else "log origin (no checkpoint)"
            )
            return (
                f"shard {self.shard} recovered (incarnation "
                f"{self.incarnation}) from {origin}: "
                f"{len(self.queries_restored)} queries restored "
                f"(state={self.state_restored}), "
                f"{len(self.queries_replayed)} re-registered by replay, "
                f"{self.tuples_replayed} tuples + {self.lifecycle_replayed} "
                f"lifecycle commands replayed in "
                f"{self.elapsed_seconds * 1e3:.1f}ms"
            )
        return (
            f"shard {self.shard} recovered (incarnation {self.incarnation}) "
            f"WITHOUT durability: {len(self.queries_lost_state)} queries "
            f"blank re-registered, their operator state and captured "
            f"history DROPPED ({self.elapsed_seconds * 1e3:.1f}ms)"
        )


_CHECKPOINT_FILE = re.compile(r"^shard(\d+)\.v(\d+)\.ckpt$")


class CheckpointStore:
    """Versioned per-shard checkpoint storage.

    In-memory by default; pass ``path`` to also persist every checkpoint as
    a pickle file (``shard<N>.v<V>.ckpt``) so a store constructed over the
    same directory later — e.g. a restarted coordinator — sees the surviving
    versions.  ``keep_last`` bounds retention per shard: storing a new
    version prunes versions (and files) beyond the newest ``keep_last``.
    """

    def __init__(self, path: Optional[str] = None, keep_last: int = 2):
        if keep_last < 1:
            raise CheckpointError(
                f"keep_last must be at least 1, got {keep_last}"
            )
        self.path = path
        self.keep_last = keep_last
        #: shard → checkpoints sorted by ascending version.
        self._by_shard: dict[int, list[ShardCheckpoint]] = {}
        if path is not None:
            os.makedirs(path, exist_ok=True)
            self._scan()

    # -- persistence -----------------------------------------------------------------

    def _file_of(self, shard: int, version: int) -> str:
        return os.path.join(self.path, f"shard{shard}.v{version}.ckpt")

    def _scan(self) -> None:
        found: dict[int, list[tuple[int, str]]] = {}
        for name in os.listdir(self.path):
            if name.endswith(".ckpt.tmp"):
                # An orphaned partial write: the process died between
                # opening the tmp file and the atomic rename.  The durable
                # contents are unaffected — GC the debris.
                try:
                    os.unlink(os.path.join(self.path, name))
                except FileNotFoundError:
                    pass
                continue
            match = _CHECKPOINT_FILE.match(name)
            if match is None:
                continue
            shard, version = int(match.group(1)), int(match.group(2))
            found.setdefault(shard, []).append(
                (version, os.path.join(self.path, name))
            )
        for shard, entries in found.items():
            checkpoints = []
            for version, file_path in sorted(entries):
                try:
                    with open(file_path, "rb") as handle:
                        checkpoint = pickle.load(handle)
                except Exception as error:
                    # Writes are atomic (tmp + rename), so a corrupt file
                    # means external damage — fail loudly with the path
                    # instead of leaking a raw unpickling error.
                    raise CheckpointError(
                        f"checkpoint file {file_path!r} is corrupt "
                        f"({type(error).__name__}: {error}); remove it to "
                        f"reopen this store"
                    ) from error
                if checkpoint.shard != shard or checkpoint.version != version:
                    raise CheckpointError(
                        f"checkpoint file {file_path!r} does not match its "
                        f"name (shard {checkpoint.shard} v{checkpoint.version})"
                    )
                checkpoints.append(checkpoint)
            self._by_shard[shard] = checkpoints

    # -- storage ---------------------------------------------------------------------

    def put(self, checkpoint: ShardCheckpoint) -> None:
        """Store a checkpoint; its version must supersede the shard's latest."""
        latest = self.latest_version(checkpoint.shard)
        if latest is not None and checkpoint.version <= latest:
            raise CheckpointError(
                f"checkpoint v{checkpoint.version} for shard "
                f"{checkpoint.shard} does not supersede stored v{latest}"
            )
        held = self._by_shard.setdefault(checkpoint.shard, [])
        held.append(checkpoint)
        if self.path is not None:
            # Crash-safe publish: write-tmp, fsync the contents, atomic
            # rename, fsync the directory — a coordinator killed at any
            # point leaves either the complete file or none (a stray
            # ``.tmp`` is GC'd on the next scan), never a truncated
            # ``.ckpt`` for the next run's scan to choke on.
            final = self._file_of(checkpoint.shard, checkpoint.version)
            partial = final + ".tmp"
            with open(partial, "wb") as handle:
                pickle.dump(checkpoint, handle, protocol=pickle.HIGHEST_PROTOCOL)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(partial, final)
            directory = os.open(self.path, os.O_RDONLY)
            try:
                os.fsync(directory)
            finally:
                os.close(directory)
        while len(held) > self.keep_last:
            pruned = held.pop(0)
            if self.path is not None:
                try:
                    os.unlink(self._file_of(pruned.shard, pruned.version))
                except FileNotFoundError:
                    pass

    def prune_above(self, shard: int, version: int) -> list[int]:
        """Discard checkpoints newer than ``version`` (and their files).

        A coordinator that journals checkpoint completions *after* storing
        the file can die in between, leaving a ``.ckpt`` the journal never
        acknowledged.  Resume prunes those orphans so the store's latest
        matches the journal's index and re-stored versions never collide.
        Returns the pruned versions.
        """
        held = self._by_shard.get(shard, [])
        pruned = [ckpt.version for ckpt in held if ckpt.version > version]
        if pruned:
            self._by_shard[shard] = [
                ckpt for ckpt in held if ckpt.version <= version
            ]
            if self.path is not None:
                for stale in pruned:
                    try:
                        os.unlink(self._file_of(shard, stale))
                    except FileNotFoundError:
                        pass
        return pruned

    def latest(self, shard: int) -> Optional[ShardCheckpoint]:
        held = self._by_shard.get(shard)
        return held[-1] if held else None

    def latest_version(self, shard: int) -> Optional[int]:
        checkpoint = self.latest(shard)
        return checkpoint.version if checkpoint is not None else None

    def load(self, shard: int, version: int) -> ShardCheckpoint:
        """Fetch one checkpoint for restore; only the latest is loadable.

        A superseded version is rejected with :class:`StaleCheckpointError`:
        the write-ahead log before the newer cut has been truncated, so an
        older restore point could never be replayed up to the present.
        """
        latest = self.latest(shard)
        if latest is None:
            raise CheckpointError(f"no checkpoints stored for shard {shard}")
        if version < latest.version:
            raise StaleCheckpointError(
                f"checkpoint v{version} for shard {shard} is stale: "
                f"v{latest.version} superseded it and the replay log before "
                f"its cut was truncated; restore from v{latest.version}"
            )
        if version > latest.version:
            raise CheckpointError(
                f"checkpoint v{version} for shard {shard} was never stored "
                f"(latest is v{latest.version})"
            )
        return latest

    def shards(self) -> list[int]:
        return sorted(self._by_shard)

    def versions(self, shard: int) -> list[int]:
        return [ckpt.version for ckpt in self._by_shard.get(shard, ())]

    def describe(self) -> str:
        lines = [
            f"CheckpointStore({self.path or 'memory'}, "
            f"keep_last={self.keep_last})"
        ]
        for shard in self.shards():
            latest = self.latest(shard)
            lines.append(
                f"  shard {shard}: versions {self.versions(shard)}, latest "
                f"v{latest.version} carries {len(latest.components)} "
                f"components / state={latest.state_carried} at position "
                f"{latest.position}"
            )
        return "\n".join(lines)


# -- worker-side capture / restore ---------------------------------------------------


def capture_manifest(
    runtime, version: int, base_offsets: Optional[dict] = None
) -> dict:
    """Snapshot every live component of a worker's runtime (non-destructive).

    Runs on the worker, between two data frames (the command queue is the
    serialization point, so the cut is exact).  Groups active queries into
    connected components, serializes each via the runtime's
    :meth:`~repro.runtime.runtime.QueryRuntime.checkpoint_component` +
    :func:`~repro.shard.wire.encode_transfer`, and side-channels captured
    histories owned by no live component.  Returns the wire manifest
    payload (:func:`~repro.shard.wire.encode_manifest`).

    ``base_offsets`` (query id → captured-history length at the last
    checkpoint the coordinator acked) switches the manifest to
    **differential**: each captured history is trimmed to the suffix past
    its base offset before encoding, so only the delta since the previous
    version crosses the wire.  ``captured_offsets`` are always computed
    from the *full* lengths first — they name the absolute cut, not the
    delta — and the trim builds new lists, leaving live histories intact.
    The coordinator splices deltas onto its cached copy of the previous
    version before storing, so stored checkpoints stay self-contained.
    """
    seen: set = set()
    components = []
    for query_id in runtime.active_queries:
        if query_id in seen:
            continue
        transfer = runtime.checkpoint_component(query_id)
        query_ids = sorted(transfer.query_ids)
        seen.update(query_ids)
        # A component's blob may also carry captured history for *retired*
        # queries whose instances still attribute its merged m-ops; those
        # histories ride the blob and must not ride captured_extra too.
        seen.update(transfer.captured)
        captured_offsets = {
            moved_id: len(history)
            for moved_id, history in transfer.captured.items()
        }
        if base_offsets is not None:
            transfer.captured = {
                moved_id: list(history[base_offsets.get(moved_id, 0):])
                for moved_id, history in transfer.captured.items()
            }
        components.append(
            {
                "queries": query_ids,
                "blob": encode_transfer(transfer),
                "state_carried": transfer.state_carried,
                "captured_offsets": captured_offsets,
            }
        )
    captured_extra = {
        query_id: list(history)
        for query_id, history in runtime.captured.items()
        if query_id not in seen
    }
    if base_offsets is not None:
        captured_extra = {
            query_id: history[base_offsets.get(query_id, 0):]
            for query_id, history in captured_extra.items()
        }
    relays = {}
    for alias, entry in runtime.relay_exports.items():
        if entry.get("query_id") is None:
            continue  # adopt-only alias: another shard owns the producer
        tap = runtime.engine.relay_tap(entry["channel"].channel_id)
        if tap is not None:
            relays[alias] = tap.produced
    return encode_manifest(
        version,
        runtime.cursor,
        components,
        captured_extra,
        runtime.stats,
        base=base_offsets,
        relays=relays,
    )


def apply_restore(runtime, payload: dict) -> dict:
    """Re-seed a fresh worker runtime from a checkpoint's restore payload.

    Imports every component blob (building fresh executors and restoring
    their state snapshots), re-homes the orphan captured histories, and
    resets the runtime's stream cursor to the checkpoint cut — replay of
    the log suffix then continues the count exactly where the dead
    incarnation left it.
    """
    restored: list = []
    state_restored = 0
    for blob in payload["components"]:
        transfer = decode_transfer(blob)
        migration = runtime.import_component(transfer)
        state_restored += migration.state_carried
        restored.extend(transfer.query_ids)
    extra = payload["captured_extra"]
    if isinstance(extra, bytes):
        extra = pickle.loads(extra)
    for query_id, history in extra.items():
        runtime.engine.captured.setdefault(query_id, []).extend(history)
    stats = payload.get("stats")
    if isinstance(stats, bytes):
        stats = pickle.loads(stats)
    if stats is not None:
        # The cut's cumulative counters replace the fresh runtime's: replay
        # of the log suffix then accumulates on top, exactly as the dead
        # incarnation would have.
        runtime.stats = stats
    runtime.cursor.clear()
    runtime.cursor.update(payload["cursor"])
    return {"queries": sorted(restored), "state_restored": state_restored}
