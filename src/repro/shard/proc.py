"""The process-mode sharded lifecycle runtime.

:class:`ProcessShardedRuntime` is the cross-process sibling of
:class:`~repro.shard.runtime.ShardedRuntime`: the same API (register /
unregister / reoptimize / process / process_batch / rebalance), but every
shard's :class:`~repro.runtime.QueryRuntime` lives on a forked **worker
process**, driven by a command protocol layered on the
:mod:`~repro.shard.wire` frame format.

Protocol
--------

Each worker owns one command queue (coordinator → worker) and one reply
queue (worker → coordinator).  Two traffic classes share the command queue,
so their relative order — which is what makes lifecycle changes land on
batch boundaries — is preserved by construction:

- **data frames** (``schema`` / ``run``, the existing wire format) are
  fire-and-forget: the coordinator encodes each source run once and ships
  it to every shard whose queries read that stream (schema frames are
  broadcast to all workers, mirroring :class:`~repro.shard.engine.SourceRouter`);
- **command frames** (``register`` / ``unregister`` / ``reoptimize`` /
  ``rebalance`` / ``stats`` / ``snapshot``) are synchronous RPCs: the
  coordinator blocks for the matching reply before issuing anything else,
  retransmitting on timeout.  Workers deduplicate by sequence number and
  answer duplicates from a reply cache, so commands apply exactly once even
  when the fault harness drops or duplicates frames.

Cross-process rebalance decomposes into two commands: ``rebalance("out")``
on the donor exports the component and serializes it
(:func:`~repro.shard.wire.encode_transfer` — plan subgraph + executor state
snapshots + captured histories), ``rebalance("in")`` on the receiver
deserializes and imports it, re-seeding freshly built executors with the
donor's window/sequence state.  If the import fails — including the
receiver dying mid-import — the coordinator re-imports the still-held blob
into the donor, so the component is never lost and never duplicated.

Failure semantics
-----------------

A worker that dies (detected via its exit code when an RPC times out) is
respawned with a **fresh incarnation**: a new id range
(:mod:`repro.core.idspace`), a replay of all schema frames, and a
re-registration of every query the coordinator's catalog places on that
shard.  Queries stay registered and keep producing from the respawn point
on; operator state accumulated by the dead incarnation is lost (documented
at-least-serving semantics).  Components in flight during the crash roll
back to their donor with state intact.

Determinism
-----------

With no injected faults, a process-mode serve is event-for-event identical
to the in-process :class:`ShardedRuntime` over the same schedule: placement
uses the same least-loaded heuristic, routing the same query→source
catalog, and each worker's ``QueryRuntime`` sees the exact per-shard
subsequence of events and lifecycle calls.  The property suite
(``tests/test_shardproc_equivalence.py``) asserts byte-identical captured
outputs across random churn schedules with mid-stream rebalances.
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_module
import traceback
from collections import OrderedDict
from dataclasses import dataclass, field
from random import Random
from typing import Optional, Sequence, Union

from repro.core.idspace import reseed_identifiers, worker_id_base
from repro.engine.metrics import RunStats
from repro.errors import LifecycleError, QueryLanguageError, RumorError
from repro.lang.ast import LogicalQuery
from repro.runtime.runtime import QueryRuntime
from repro.shard.engine import fork_available
from repro.shard.wire import (
    ERR,
    OK,
    REBALANCE,
    REGISTER,
    REOPTIMIZE,
    RUN,
    SCHEMA,
    SNAPSHOT,
    STATS,
    STOP,
    STOP_FRAME,
    UNREGISTER,
    WireDecoder,
    WireEncoder,
    decode_command,
    decode_reply,
    decode_transfer,
    encode_command,
    encode_reply,
    encode_transfer,
)
from repro.streams.channel import Channel, ChannelTuple
from repro.streams.schema import Schema
from repro.streams.stream import StreamDef
from repro.streams.tuples import StreamTuple


class WorkerCrashError(RumorError):
    """A worker process died before acknowledging a command."""


class WorkerCommandError(LifecycleError):
    """A worker rejected a command (it is alive and rolled back cleanly)."""


@dataclass
class WorkerFaults:
    """Deterministic crash injection for one worker's command loop.

    ``crash_on`` names the command kind and its 1-based occurrence count at
    which the worker hard-exits (``os._exit``) — rebalance commands are
    split into ``"rebalance-out"`` and ``"rebalance-in"`` so the two phases
    are injectable independently.  ``when`` selects whether the crash fires
    before the command is applied or after it is applied but before the
    reply is sent (the nastier window: the coordinator cannot tell the two
    apart).  Faults are armed only for a shard's first incarnation unless
    ``rearm`` is set, so crash recovery does not immediately re-crash.
    """

    crash_on: Optional[tuple[str, int]] = None
    when: str = "before"
    exit_code: int = 32
    rearm: bool = False

    def __post_init__(self):
        if self.when not in ("before", "after"):
            raise LifecycleError(f"WorkerFaults.when must be before/after, got {self.when!r}")

    def matches(self, kind: str, count: int) -> bool:
        return self.crash_on is not None and (kind, count) == self.crash_on


@dataclass
class FrameFaults:
    """Seed-driven drop/duplicate injection for command frames.

    Applied on the coordinator's send path (data frames are never touched —
    the protocol recovers commands via retransmission and deduplication,
    while data loss would silently change outputs, which must fail loudly
    instead).  Counters record what the harness actually did so tests can
    assert the chaos really happened.
    """

    seed: int = 0
    drop_rate: float = 0.0
    dup_rate: float = 0.0
    dropped: int = 0
    duplicated: int = 0
    _rng: Random = field(init=False, repr=False, compare=False, default=None)

    def __post_init__(self):
        if not 0.0 <= self.drop_rate + self.dup_rate <= 1.0:
            raise LifecycleError("drop_rate + dup_rate must be within [0, 1]")
        self._rng = Random(self.seed)

    def copies_of(self, frame: tuple) -> int:
        """How many copies of this command frame to actually send."""
        roll = self._rng.random()
        if roll < self.drop_rate:
            self.dropped += 1
            return 0
        if roll < self.drop_rate + self.dup_rate:
            self.duplicated += 1
            return 2
        return 1


@dataclass
class _WorkerOptions:
    """Per-worker runtime configuration (pickled once at spawn)."""

    capture_outputs: bool = False
    track_latency: bool = False
    incremental: bool = True


@dataclass
class _WorkerHandle:
    process: multiprocessing.process.BaseProcess
    commands: object
    replies: object
    incarnation: int


#: Worker-side reply cache size (duplicate commands beyond this window would
#: require the coordinator to have abandoned >128 in-flight commands, which
#: the synchronous RPC discipline makes impossible).
_REPLY_CACHE = 128


def _apply_command(runtime: QueryRuntime, kind: str, payload):
    """Execute one command against the worker's runtime; returns the reply
    payload.  Raises to signal an ``err`` reply (the runtime's own rollback
    discipline — registration rollback, import rollback — has already run
    by the time the exception surfaces)."""
    if kind == REGISTER:
        report = runtime.register(payload)
        return {
            "query_id": payload.query_id,
            "mops": len(runtime.plan.mops),
            "mops_considered": report.mops_considered,
        }
    if kind == UNREGISTER:
        removed = runtime.unregister(payload)
        return {"removed_mops": len(removed)}
    if kind == REOPTIMIZE:
        report = runtime.reoptimize()
        return {"mops_considered": report.mops_considered}
    if kind == REBALANCE:
        action, value = payload
        if action == "out":
            transfer = runtime.export_component(value)
            try:
                blob = encode_transfer(transfer)
            except Exception:
                # Serialization failed after the export detached the
                # component: put it straight back (lossless — the transfer
                # still holds the live executors) before reporting the
                # error, so the donor keeps serving.
                runtime.import_component(transfer)
                raise
            return {"blob": blob, "queries": transfer.query_ids}
        if action == "in":
            transfer = decode_transfer(value)
            runtime.import_component(transfer)
            return {"queries": transfer.query_ids}
        raise LifecycleError(f"unknown rebalance action {action!r}")
    if kind == STATS:
        return runtime.stats
    if kind == SNAPSHOT:
        if isinstance(payload, dict) and "component_of" in payload:
            # Focused snapshot: just the component membership of one query
            # (the rebalance policies' oversized pre-check).
            return {
                "component": runtime.component_query_ids(payload["component_of"])
            }
        return {
            "captured": {
                query_id: list(history)
                for query_id, history in runtime.captured.items()
            },
            "state_size": runtime.state_size,
            "active_queries": list(runtime.active_queries),
            "migrations": runtime.stats.migrations,
            "mops": len(runtime.plan.mops),
        }
    raise LifecycleError(f"unknown command kind {kind!r}")


def _worker_main(
    shard: int,
    incarnation: int,
    streams: list[StreamDef],
    channels: dict[str, Channel],
    commands,
    replies,
    options: _WorkerOptions,
    faults: Optional[WorkerFaults],
) -> None:
    """Worker body: one QueryRuntime served by the command/data loop."""
    reseed_identifiers(worker_id_base(incarnation))
    runtime = QueryRuntime(
        capture_outputs=options.capture_outputs,
        track_latency=options.track_latency,
        incremental=options.incremental,
    )
    for stream in streams:
        runtime.adopt_source(stream, channels[stream.name])
    decoder = WireDecoder(channels.values())
    counts: dict[str, int] = {}
    cache: OrderedDict[int, tuple] = OrderedDict()
    while True:
        try:
            frame = commands.get()
        except (EOFError, OSError, KeyboardInterrupt):
            return
        kind = frame[0]
        if kind == STOP:
            return
        if kind == SCHEMA or kind == RUN:
            decoded = decoder.decode(frame)
            if decoded is not None:
                channel, batch = decoded
                # Source channels are singletons in the lifecycle runtime,
                # so the run maps 1:1 onto the stream's own batch path.
                stream = channel.streams[0]
                runtime.process_batch(
                    stream.name, [channel_tuple.tuple for channel_tuple in batch]
                )
            continue
        kind, seq, payload = decode_command(frame)
        fault_kind = kind if kind != REBALANCE else f"rebalance-{payload[0]}"
        count = counts.get(fault_kind, 0) + 1
        counts[fault_kind] = count
        crashing = faults is not None and faults.matches(fault_kind, count)
        if crashing and faults.when == "before":
            os._exit(faults.exit_code)
        cached = cache.get(seq)
        if cached is not None:
            # Duplicate (retransmitted or fault-injected) command: answer
            # from the cache, never re-apply.
            replies.put(cached)
            continue
        try:
            result = _apply_command(runtime, kind, payload)
            status = OK
        except RumorError as error:
            status, result = ERR, f"{type(error).__name__}: {error}"
        except Exception:  # noqa: BLE001 - must cross the process boundary
            status, result = ERR, traceback.format_exc()
        if crashing and faults.when == "after":
            os._exit(faults.exit_code)
        reply = encode_reply(seq, status, result)
        cache[seq] = reply
        while len(cache) > _REPLY_CACHE:
            cache.popitem(last=False)
        replies.put(reply)


class ProcessShardedRuntime:
    """``n`` worker-process QueryRuntimes serving one changing population.

    Mirrors the :class:`~repro.shard.runtime.ShardedRuntime` API; see the
    module docstring for the protocol and failure semantics.  Sources must
    all be declared before the first lifecycle or event call — workers fork
    with the source stream/channel objects, which is what keeps ids and
    wiring signatures consistent across every process.
    """

    def __init__(
        self,
        sources: Optional[dict[str, Schema]] = None,
        n_shards: int = 2,
        capture_outputs: bool = False,
        track_latency: bool = False,
        incremental: bool = True,
        max_batch: int = 1024,
        command_timeout: float = 2.0,
        max_retries: int = 30,
        faults: Optional[FrameFaults] = None,
        worker_faults: Optional[dict[int, WorkerFaults]] = None,
    ):
        if n_shards < 1:
            raise LifecycleError(f"n_shards must be at least 1, got {n_shards}")
        if not fork_available():
            raise LifecycleError(
                "ProcessShardedRuntime requires the fork start method; "
                "use ShardedRuntime on this platform"
            )
        self.n_shards = n_shards
        self.max_batch = max_batch
        self.command_timeout = command_timeout
        self.max_retries = max_retries
        self.faults = faults
        self._worker_faults = dict(worker_faults or {})
        self._options = _WorkerOptions(
            capture_outputs=capture_outputs,
            track_latency=track_latency,
            incremental=incremental,
        )
        self._context = multiprocessing.get_context("fork")
        self.streams: dict[str, StreamDef] = {}
        self._channels: dict[str, Channel] = {}
        #: query_id -> LogicalQuery (the recovery catalog), insertion order.
        self._queries: dict[str, LogicalQuery] = {}
        #: query_id -> owning shard, insertion order (mirrors ShardedRuntime).
        self._query_shard: dict[str, int] = {}
        self._workers: list[Optional[_WorkerHandle]] = [None] * n_shards
        self._spawned: list[int] = [0] * n_shards
        self._incarnations = iter(range(1, 1 << 20)).__next__
        self._encoder = WireEncoder()
        self._schema_frames: list[tuple] = []
        self._route_cache: dict[str, tuple[int, ...]] = {}
        self._seq = 0
        self._started = False
        self._closed = False
        #: Coordinator-side input accounting (each source event once,
        #: however many shards consume it — the single-runtime convention).
        self.input_stats = RunStats()
        self.rebalances = 0
        self.crash_recoveries = 0
        if sources:
            for name, schema in sources.items():
                self.add_source(name, schema)

    # -- sources ---------------------------------------------------------------------

    def add_source(
        self,
        name: str,
        schema: Schema,
        sharable_label: Optional[str] = None,
    ) -> StreamDef:
        """Declare a source; must happen before the workers fork."""
        if self._started:
            raise LifecycleError(
                "sources must be declared before the first lifecycle call "
                "(workers inherit them at fork)"
            )
        if name in self.streams:
            raise LifecycleError(f"source {name!r} is already declared")
        stream = StreamDef(name, schema, sharable_label=sharable_label)
        self.streams[name] = stream
        self._channels[name] = Channel.singleton(stream)
        return stream

    # -- worker management -----------------------------------------------------------

    def _ensure_started(self) -> None:
        if self._closed:
            raise LifecycleError("runtime is closed")
        if self._started:
            return
        self._started = True
        for shard in range(self.n_shards):
            self._workers[shard] = self._spawn(shard)

    def _spawn(self, shard: int) -> _WorkerHandle:
        self._spawned[shard] += 1
        faults = self._worker_faults.get(shard)
        if faults is not None and self._spawned[shard] > 1 and not faults.rearm:
            faults = None
        incarnation = self._incarnations()
        commands = self._context.Queue()
        replies = self._context.Queue()
        process = self._context.Process(
            target=_worker_main,
            args=(
                shard,
                incarnation,
                list(self.streams.values()),
                dict(self._channels),
                commands,
                replies,
                self._options,
                faults,
            ),
            daemon=True,
        )
        process.start()
        return _WorkerHandle(
            process=process,
            commands=commands,
            replies=replies,
            incarnation=incarnation,
        )

    def close(self) -> None:
        """Stop every worker (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for handle in self._workers:
            if handle is None:
                continue
            try:
                handle.commands.put(STOP_FRAME)
            except (OSError, ValueError):
                pass
        for handle in self._workers:
            if handle is None:
                continue
            handle.process.join(timeout=2.0)
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(timeout=1.0)

    def __enter__(self) -> "ProcessShardedRuntime":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- RPC -------------------------------------------------------------------------

    def _send_command(self, handle: _WorkerHandle, frame: tuple) -> None:
        copies = self.faults.copies_of(frame) if self.faults is not None else 1
        for __ in range(copies):
            handle.commands.put(frame)

    def _rpc(self, shard: int, kind: str, payload=None):
        """Send one command and block for its reply (raw, no recovery)."""
        handle = self._workers[shard]
        self._seq += 1
        seq = self._seq
        frame = encode_command(kind, seq, payload)
        self._send_command(handle, frame)
        retries = 0
        while True:
            try:
                reply = handle.replies.get(timeout=self.command_timeout)
            except queue_module.Empty:
                if handle.process.exitcode is not None:
                    raise WorkerCrashError(
                        f"shard {shard} worker exited with code "
                        f"{handle.process.exitcode} during {kind}"
                    ) from None
                retries += 1
                if retries > self.max_retries:
                    raise LifecycleError(
                        f"shard {shard} did not acknowledge {kind} after "
                        f"{retries} attempts"
                    ) from None
                self._send_command(handle, frame)
                continue
            reply_seq, status, result = decode_reply(reply)
            if reply_seq != seq:
                continue  # stale reply of a duplicated earlier command
            if status == OK:
                return result
            raise WorkerCommandError(f"shard {shard} {kind} failed: {result}")

    def _rpc_recovering(self, shard: int, kind: str, payload=None):
        """RPC that survives one worker crash: recover, then retry once."""
        try:
            return self._rpc(shard, kind, payload)
        except WorkerCrashError:
            self._recover(shard)
            return self._rpc(shard, kind, payload)

    def _recover(self, shard: int) -> None:
        """Respawn a dead worker and re-register its catalog queries.

        Operator state and captured history accumulated by the dead
        incarnation are lost; serving resumes from the respawn point.
        """
        old = self._workers[shard]
        old.process.join(timeout=2.0)
        handle = self._spawn(shard)
        self._workers[shard] = handle
        for frame in self._schema_frames:
            handle.commands.put(frame)
        for query_id, owner in self._query_shard.items():
            if owner == shard:
                self._rpc(shard, REGISTER, self._queries[query_id])
        self.crash_recoveries += 1
        self._route_cache.clear()

    # -- lifecycle -------------------------------------------------------------------

    @property
    def active_queries(self) -> list[str]:
        return list(self._query_shard)

    def shard_of(self, query_id: str) -> int:
        try:
            return self._query_shard[query_id]
        except KeyError:
            raise LifecycleError(
                f"query {query_id!r} is not registered"
            ) from None

    def shard_loads(self) -> list[int]:
        loads = [0] * self.n_shards
        for shard in self._query_shard.values():
            loads[shard] += 1
        return loads

    def queries_on(self, shard: int) -> list[str]:
        return [
            query_id
            for query_id, owner in self._query_shard.items()
            if owner == shard
        ]

    def place(self, logical: LogicalQuery) -> int:
        """Least-loaded placement, identical to ShardedRuntime.place."""
        loads = self.shard_loads()
        return min(range(self.n_shards), key=lambda index: (loads[index], index))

    def register(
        self,
        query: Union[str, LogicalQuery],
        query_id: Optional[str] = None,
        shard: Optional[int] = None,
    ) -> dict:
        """Register a query on a worker; returns the worker's summary."""
        from repro.lang.compiler import as_logical

        self._ensure_started()
        try:
            logical = as_logical(query, query_id)
        except QueryLanguageError as error:
            raise LifecycleError(str(error)) from error
        if logical.query_id in self._query_shard:
            raise LifecycleError(
                f"query {logical.query_id!r} is already registered"
            )
        for name in logical.sources():
            if name not in self.streams:
                raise LifecycleError(
                    f"query {logical.query_id!r} reads unknown source {name!r}"
                )
        if shard is None:
            shard = self.place(logical)
        elif not 0 <= shard < self.n_shards:
            raise LifecycleError(
                f"shard {shard} out of range (n_shards={self.n_shards})"
            )
        result = self._rpc_recovering(shard, REGISTER, logical)
        self._queries[logical.query_id] = logical
        self._query_shard[logical.query_id] = shard
        self._route_cache.clear()
        return result

    def unregister(self, query_id: str) -> dict:
        self._ensure_started()
        shard = self.shard_of(query_id)
        result = self._rpc_recovering(shard, UNREGISTER, query_id)
        del self._query_shard[query_id]
        del self._queries[query_id]
        self._route_cache.clear()
        return result

    def reoptimize(self, shard: Optional[int] = None) -> list[dict]:
        self._ensure_started()
        shards = range(self.n_shards) if shard is None else [shard]
        return [
            self._rpc_recovering(index, REOPTIMIZE) for index in shards
        ]

    # -- rebalance -------------------------------------------------------------------

    def rebalance(self, query_id: str, to_shard: int) -> list[str]:
        """Move ``query_id``'s component to ``to_shard``, state intact.

        Returns the moved query ids.  On *any* import failure — a worker
        error reply or the receiver dying mid-import — the component is
        restored onto the donor (state included) before the error is
        re-raised, so the runtime never stops serving a registered query.
        """
        self._ensure_started()
        if not 0 <= to_shard < self.n_shards:
            raise LifecycleError(
                f"shard {to_shard} out of range (n_shards={self.n_shards})"
            )
        from_shard = self.shard_of(query_id)
        if from_shard == to_shard:
            raise LifecycleError(
                f"query {query_id!r} already lives on shard {to_shard}"
            )
        try:
            exported = self._rpc(from_shard, REBALANCE, ("out", query_id))
        except WorkerCrashError:
            # The donor died exporting; its state is gone either way, so
            # recovery (respawn + re-register) is the best serving outcome.
            self._recover(from_shard)
            raise LifecycleError(
                f"shard {from_shard} crashed during export; its queries "
                f"were re-registered in place"
            ) from None
        blob = exported["blob"]
        try:
            self._rpc(to_shard, REBALANCE, ("in", blob))
        except WorkerCrashError:
            self._recover(to_shard)
            self._rpc(from_shard, REBALANCE, ("in", blob))
            self._route_cache.clear()
            raise LifecycleError(
                f"shard {to_shard} crashed during rebalance import; "
                f"component restored on shard {from_shard}"
            ) from None
        except WorkerCommandError:
            self._rpc(from_shard, REBALANCE, ("in", blob))
            self._route_cache.clear()
            raise
        for moved_id in exported["queries"]:
            self._query_shard[moved_id] = to_shard
        self._route_cache.clear()
        self.rebalances += 1
        return list(exported["queries"])

    # -- event processing ------------------------------------------------------------

    def _consumers_of(self, stream_name: str) -> tuple[int, ...]:
        shards = self._route_cache.get(stream_name)
        if shards is None:
            if stream_name not in self.streams:
                raise LifecycleError(f"unknown source stream {stream_name!r}")
            consuming: set[int] = set()
            for query_id, shard in self._query_shard.items():
                if stream_name in self._queries[query_id].sources():
                    consuming.add(shard)
            shards = tuple(sorted(consuming))
            self._route_cache[stream_name] = shards
        return shards

    def process(self, stream_name: str, tuple_: StreamTuple) -> RunStats:
        return self.process_batch(stream_name, [tuple_])

    def process_batch(
        self, stream_name: str, tuples: Sequence[StreamTuple]
    ) -> RunStats:
        """Ship a run of source events to every consuming worker.

        Fire-and-forget: data frames pipeline behind earlier commands on
        each worker's queue, so lifecycle changes still land on batch
        boundaries.  The returned stats carry coordinator-side input
        accounting only — per-query outputs accumulate in the workers and
        surface through :meth:`collect_stats` / :attr:`captured`.
        """
        shards = self._consumers_of(stream_name)
        batch_stats = RunStats()
        batch_stats.input_events = len(tuples)
        batch_stats.physical_input_events = len(tuples)
        self.input_stats.absorb(batch_stats)
        if not tuples or not shards:
            return batch_stats
        self._ensure_started()
        channel = self._channels[stream_name]
        bit = 1 << channel.position_of(self.streams[stream_name])
        encoded = [ChannelTuple(tuple_, bit) for tuple_ in tuples]
        start = 0
        while start < len(encoded):
            run = encoded[start : start + self.max_batch]
            start += self.max_batch
            for frame in self._encoder.encode_run(channel, run):
                if frame[0] == SCHEMA:
                    # Broadcast + record, so respawned workers can replay
                    # the interning state before their first run frame.
                    self._schema_frames.append(frame)
                    for handle in self._workers:
                        handle.commands.put(frame)
                else:
                    for shard in shards:
                        self._workers[shard].commands.put(frame)
        return batch_stats

    # -- introspection ---------------------------------------------------------------

    def shard_stats(self) -> list[RunStats]:
        """Per-worker cumulative RunStats (synchronous; a batch barrier)."""
        self._ensure_started()
        return [
            self._rpc_recovering(shard, STATS) for shard in range(self.n_shards)
        ]

    def collect_stats(self) -> RunStats:
        """Aggregate statistics with single-counted inputs.

        Worker counters sum (queries are disjoint across shards); input
        events come from the coordinator's own accounting so replicated
        streams count once, matching ``ShardedRuntime.stats``.
        """
        merged = RunStats()
        for stats in self.shard_stats():
            merged.absorb(stats)
        merged.input_events = self.input_stats.input_events
        merged.physical_input_events = self.input_stats.physical_input_events
        return merged

    def snapshot(self) -> list[dict]:
        """Per-worker observability snapshot (captured outputs, state size,
        active queries, migrations, plan size)."""
        self._ensure_started()
        return [
            self._rpc_recovering(shard, SNAPSHOT)
            for shard in range(self.n_shards)
        ]

    def component_queries(self, query_id: str) -> list[str]:
        """Every query that would move with ``query_id`` (one worker RPC)."""
        self._ensure_started()
        shard = self.shard_of(query_id)
        result = self._rpc_recovering(
            shard, SNAPSHOT, {"component_of": query_id}
        )
        return result["component"]

    @property
    def captured(self) -> dict:
        """query_id -> captured outputs, merged across workers."""
        merged: dict = {}
        for entry in self.snapshot():
            merged.update(entry["captured"])
        return merged

    @property
    def state_size(self) -> int:
        return sum(entry["state_size"] for entry in self.snapshot())

    def describe(self) -> str:
        lines = [
            f"ProcessShardedRuntime: {len(self._query_shard)} active queries "
            f"over {self.n_shards} worker processes, "
            f"loads={self.shard_loads()}, rebalances={self.rebalances}, "
            f"recoveries={self.crash_recoveries}"
        ]
        for shard, entry in enumerate(self.snapshot()):
            handle = self._workers[shard]
            lines.append(
                f"-- shard {shard} (pid {handle.process.pid}, incarnation "
                f"{handle.incarnation}) --"
            )
            lines.append(
                f"   queries={entry['active_queries']} "
                f"mops={entry['mops']} state={entry['state_size']} "
                f"migrations={entry['migrations']}"
            )
        return "\n".join(lines)
