"""The process-mode sharded lifecycle runtime.

:class:`ProcessShardedRuntime` is the cross-process sibling of
:class:`~repro.shard.runtime.ShardedRuntime`: the same API (register /
unregister / reoptimize / process / process_batch / rebalance), but every
shard's :class:`~repro.runtime.QueryRuntime` lives on a forked **worker
process**, driven by a command protocol layered on the
:mod:`~repro.shard.wire` frame format.

Protocol
--------

Each worker owns one command queue (coordinator → worker) and one reply
queue (worker → coordinator).  Two traffic classes share the command queue,
so their relative order — which is what makes lifecycle changes land on
batch boundaries — is preserved by construction:

- **data frames** (``schema`` / ``run``, the existing wire format) are
  fire-and-forget: the coordinator encodes each source run once and ships
  it to every shard whose queries read that stream (schema frames are
  broadcast to all workers, mirroring :class:`~repro.shard.engine.SourceRouter`);
- **command frames** (``register`` / ``unregister`` / ``reoptimize`` /
  ``rebalance`` / ``stats`` / ``snapshot``) are synchronous RPCs: the
  coordinator blocks for the matching reply before issuing anything else,
  retransmitting on timeout.  Workers deduplicate by sequence number and
  answer duplicates from a reply cache, so commands apply exactly once even
  when the fault harness drops or duplicates frames.

Cross-process rebalance decomposes into two commands: ``rebalance("out")``
on the donor exports the component and serializes it
(:func:`~repro.shard.wire.encode_transfer` — plan subgraph + executor state
snapshots + captured histories), ``rebalance("in")`` on the receiver
deserializes and imports it, re-seeding freshly built executors with the
donor's window/sequence state.  If the import fails — including the
receiver dying mid-import — the coordinator re-imports the still-held blob
into the donor, so the component is never lost and never duplicated.

Durability and checkpoints
--------------------------

With ``durable=True`` the coordinator keeps a per-shard **write-ahead log**
(:class:`~repro.shard.checkpoint.ShardLog`): every data run and every
applied lifecycle command shipped to a worker, in order.  With
``checkpoint_every=N`` it additionally initiates a **checkpoint round**
every ``N`` batches: a ``checkpoint`` command is enqueued to every worker
(so each worker snapshots at an exact point in its own frame order — the
consistency cut), and the replies are collected **pipelined**: the
coordinator keeps serving data and lifecycle traffic while snapshots are
in flight, stashing manifest replies that arrive during other RPCs and
polling the rest on later batch boundaries.  A collected manifest becomes a
versioned :class:`~repro.shard.checkpoint.ShardCheckpoint` in the
:class:`~repro.shard.checkpoint.CheckpointStore` (per-component transfer
blobs + stream cursors), and the shard's log is truncated to the cut — the
log suffix past the newest checkpoint is exactly the recovery replay
window.

Failure semantics
-----------------

A worker that dies (detected via its exit code when an RPC times out, a
checkpoint collection notices, or :meth:`ProcessShardedRuntime.heartbeat`
scans it) is respawned with a **fresh incarnation**: a new id range
(:mod:`repro.core.idspace`) and a replay of all schema frames.  What
happens next depends on durability:

- **durable**: the worker is restored from its latest stored checkpoint
  (``restore`` command — components re-imported with executor state
  re-seeded, captured histories re-homed, stream cursor reset to the cut),
  then the write-ahead-log suffix is replayed — lifecycle commands
  re-applied and source runs re-shipped in their original order — so the
  respawned worker's outputs are **byte-identical** to a never-crashed
  serve.  Without a completed checkpoint the replay starts from the log's
  origin (blank re-registration + full replay).
- **non-durable** (the PR-4 default): every catalog query is re-registered
  blank; operator state accumulated by the dead incarnation is lost
  (at-least-serving semantics).

Either way the recovery emits a structured
:class:`~repro.shard.checkpoint.RecoveryReport` (``recovery_log``,
``logging`` warning on state loss) — state is never dropped silently.
Components in flight during the crash roll back to their donor with state
intact.

Coordinator durability and elasticity
-------------------------------------

With ``journal=<dir>`` the coordinator's own durable state — write-ahead
logs, checkpoint-store index, shard→component placement, logical-query
catalog, input cursors — lives in an on-disk
:class:`~repro.shard.coordlog.CoordinatorLog` (append-only journal +
atomic-rename snapshot, sharing the checkpoint directory).  A restarted
coordinator either **re-adopts** still-live workers
(:meth:`ProcessShardedRuntime.readopt` — a ``hello`` handshake per worker
reports incarnation, highest applied command seq and stream cursors; the
coordinator reconciles each against its journal, rolling back unjournaled
effects and re-shipping journaled-but-unshipped data, then resumes RPCs
with no replay) or **cold-starts** the whole fleet from disk
(:meth:`ProcessShardedRuntime.from_journal` — every worker respawned from
its latest checkpoint + journaled log suffix), byte-identical to a
never-crashed serve either way.  The ordering disciplines that make this
sound (data journal-before-ship, lifecycle RPC-then-journal, checkpoints
store-then-journal) are documented in :mod:`repro.shard.coordlog`.

Checkpoints can ship **differentially** (``differential=True``): the
coordinator sends each worker the captured-history offsets of its last
stored checkpoint and the worker ships only the suffixes past them; the
coordinator splices the deltas onto its cached previous version before
storing, so the store stays self-contained while the wire carries a
fraction of the bytes (bounded by a periodic forced full round every
``full_checkpoint_every`` versions).

The fleet also resizes mid-serve: :meth:`ProcessShardedRuntime.add_worker`
spawns a fresh shard (ids are sparse and never reused), and
:meth:`ProcessShardedRuntime.remove_worker` drains a departing worker by
non-destructive component copy (``rebalance("copy")`` — snapshot + import
on a survivor, then unregister-with-purge on the donor) before stopping
it, with zero query loss and policy hooks
(:meth:`~repro.shard.policy.RebalancePolicy.on_grow` /
:meth:`~repro.shard.policy.RebalancePolicy.on_shrink`) choosing what
moves.

Determinism
-----------

With no injected faults, a process-mode serve is event-for-event identical
to the in-process :class:`ShardedRuntime` over the same schedule: placement
uses the same least-loaded heuristic, routing the same query→source
catalog, and each worker's ``QueryRuntime`` sees the exact per-shard
subsequence of events and lifecycle calls.  The property suite
(``tests/test_shardproc_equivalence.py``) asserts byte-identical captured
outputs across random churn schedules with mid-stream rebalances.
"""

from __future__ import annotations

import functools
import logging
import multiprocessing
import os
import pickle
import queue as queue_module
import threading
import time
import traceback
from collections import OrderedDict
from dataclasses import dataclass, field
from random import Random
from typing import Optional, Sequence, Union

from contextlib import contextmanager

from repro.core.idspace import reseed_identifiers, worker_id_base
from repro.engine.metrics import RunStats
from repro.obs.events import EventLog
from repro.obs.trace import SpanRecorder
from repro.errors import (
    ChannelError,
    CheckpointError,
    CoordinatorCrashError,
    JournalError,
    LifecycleError,
    QueryLanguageError,
    RumorError,
    WorkerUnreachableError,
)
from repro.lang.ast import LogicalQuery
from repro.runtime.config import internal_construction, warn_direct_construction
from repro.runtime.runtime import QueryRuntime
from repro.shard.checkpoint import (
    CheckpointStore,
    ComponentCheckpoint,
    RecoveryReport,
    ShardCheckpoint,
    ShardLog,
    apply_restore,
    capture_manifest,
)
from repro.shard.coordlog import CoordinatorFaults, CoordinatorLog
from repro.shard.engine import fork_available
from repro.shard.ring import RingBuffer
from repro.shard.relay import decode_local_frames, relay_rows
from repro.shard.wire import (
    CHECKPOINT,
    COLLECT_RELAY,
    CRUN,
    ERR,
    HELLO,
    OK,
    PING,
    REBALANCE,
    REGISTER,
    RELAY_TAP,
    REOPTIMIZE,
    RESTORE,
    RING,
    RUN,
    RelayCodec,
    SCHEMA,
    SCHEMA_RETIRE,
    SNAPSHOT,
    STATS,
    STOP,
    STOP_FRAME,
    UNREGISTER,
    WireDecoder,
    WireEncoder,
    decode_command,
    decode_manifest,
    decode_reply,
    decode_transfer,
    encode_command,
    encode_reply,
    encode_transfer,
    frame_trace,
    pack_run_record,
)
from repro.streams.channel import Channel, ChannelTuple
from repro.streams.columns import ColumnBatch
from repro.streams.schema import Schema
from repro.streams.stream import StreamDef
from repro.streams.tuples import StreamTuple

logger = logging.getLogger(__name__)


def _locked(method):
    """Serialize a public entry point on the coordinator's re-entrant lock.

    The serve tier drives one runtime from several threads — the session's
    pump thread shipping data, a heartbeat timer, callers sampling stats —
    and every RPC conversation must own the worker reply queues exclusively
    or replies interleave across conversations.  Re-entrant so locked
    methods can compose (``collect_stats`` → ``shard_stats``)."""

    @functools.wraps(method)
    def wrapper(self, *args, **kwargs):
        with self._lock:
            return method(self, *args, **kwargs)

    return wrapper


class WorkerCrashError(RumorError):
    """A worker process died before acknowledging a command."""


class WorkerCommandError(LifecycleError):
    """A worker rejected a command (it is alive and rolled back cleanly)."""


@dataclass
class CoordinatorHandoff:
    """Live worker handles surrendered by a dead coordinator.

    Produced by :meth:`ProcessShardedRuntime.detach` after a (simulated)
    coordinator crash: the worker processes keep running with their full
    in-memory state, and a successor coordinator built with
    :meth:`ProcessShardedRuntime.readopt` adopts them through the ``hello``
    handshake instead of cold-starting from checkpoints.
    """

    #: shard id → :class:`_WorkerHandle` of the still-running worker.
    workers: dict


@dataclass
class WorkerFaults:
    """Deterministic crash injection for one worker's command loop.

    ``crash_on`` names the command kind and its 1-based occurrence count at
    which the worker hard-exits (``os._exit``) — rebalance commands are
    split into ``"rebalance-out"`` and ``"rebalance-in"`` so the two phases
    are injectable independently, and the pseudo-kind ``"data"`` counts
    data deliveries over every transport (``run`` and ``crun`` frames plus
    ``ring`` markers), so a crash can land *mid-stream* between two data
    batches where no RPC is watching.  ``when`` selects whether the crash
    fires before the command (or run frame) is applied or after it is
    applied but before the reply is sent (the nastier window: the
    coordinator cannot tell the two apart; for ``"checkpoint"`` this is a
    crash during the snapshot reply).  Faults are armed only for a shard's
    first incarnation unless ``rearm`` is set, so crash recovery does not
    immediately re-crash.
    """

    crash_on: Optional[tuple[str, int]] = None
    when: str = "before"
    exit_code: int = 32
    rearm: bool = False

    def __post_init__(self):
        if self.when not in ("before", "after"):
            raise LifecycleError(f"WorkerFaults.when must be before/after, got {self.when!r}")

    def matches(self, kind: str, count: int) -> bool:
        return self.crash_on is not None and (kind, count) == self.crash_on


@dataclass
class FrameFaults:
    """Seed-driven drop/duplicate injection for command frames.

    Applied on the coordinator's send path.  Two frame classes are exempt
    by design: **data frames** (loss would silently change outputs, which
    must fail loudly instead) and **checkpoint frames** (their position in
    the worker's queue *is* the consistency cut — a dropped-then-
    retransmitted checkpoint command would snapshot at a later cut than the
    coordinator recorded, which the cursor cross-check rejects as protocol
    corruption).  Every other command recovers via retransmission plus
    sequence-number deduplication.  Counters record what the harness
    actually did so tests can assert the chaos really happened.
    """

    seed: int = 0
    drop_rate: float = 0.0
    dup_rate: float = 0.0
    dropped: int = 0
    duplicated: int = 0
    _rng: Random = field(init=False, repr=False, compare=False, default=None)

    def __post_init__(self):
        if not 0.0 <= self.drop_rate + self.dup_rate <= 1.0:
            raise LifecycleError("drop_rate + dup_rate must be within [0, 1]")
        self._rng = Random(self.seed)

    def copies_of(self, frame: tuple) -> int:
        """How many copies of this command frame to actually send."""
        roll = self._rng.random()
        if roll < self.drop_rate:
            self.dropped += 1
            return 0
        if roll < self.drop_rate + self.dup_rate:
            self.duplicated += 1
            return 2
        return 1


@dataclass
class _WorkerOptions:
    """Per-worker runtime configuration (pickled once at spawn)."""

    capture_outputs: bool = False
    track_latency: bool = False
    incremental: bool = True
    observe: bool = False


@dataclass
class _WorkerHandle:
    process: multiprocessing.process.BaseProcess
    commands: object
    replies: object
    incarnation: int
    #: Shared-memory data ring (columnar plane), fork-inherited by the
    #: worker; None on the pickle plane.  Rides the handle so re-adoption
    #: hands the live ring to the successor coordinator with the queues.
    ring: Optional[RingBuffer] = None


#: Worker-side reply cache size (duplicate commands beyond this window would
#: require the coordinator to have abandoned >128 in-flight commands, which
#: the synchronous RPC discipline makes impossible).
_REPLY_CACHE = 128


def _apply_command(runtime: QueryRuntime, kind: str, payload, recorder=None):
    """Execute one command against the worker's runtime; returns the reply
    payload.  Raises to signal an ``err`` reply (the runtime's own rollback
    discipline — registration rollback, import rollback — has already run
    by the time the exception surfaces).  ``recorder`` is the worker's span
    recorder (observing workers only); the telemetry ``stats`` variant
    drains it into the reply."""
    if kind == REGISTER:
        report = runtime.register(payload)
        return {
            "query_id": payload.query_id,
            "mops": len(runtime.plan.mops),
            "mops_considered": report.mops_considered,
        }
    if kind == UNREGISTER:
        query_id, purge = payload, False
        if isinstance(payload, dict):
            # Extended form used by re-adopt reconciliation and copy-drain:
            # the query's captured history must not survive as a retired
            # orphan, because the journal says it lives elsewhere (or never
            # existed) — keeping it would double it at the next snapshot.
            query_id = payload["query_id"]
            purge = bool(payload.get("purge_captured"))
        removed = runtime.unregister(query_id)
        if purge:
            runtime.engine.captured.pop(query_id, None)
        return {"removed_mops": len(removed)}
    if kind == REOPTIMIZE:
        report = runtime.reoptimize()
        return {"mops_considered": report.mops_considered}
    if kind == REBALANCE:
        action, value = payload
        if action == "out":
            transfer = runtime.export_component(value)
            try:
                blob = encode_transfer(transfer)
            except Exception:
                # Serialization failed after the export detached the
                # component: put it straight back (lossless — the transfer
                # still holds the live executors) before reporting the
                # error, so the donor keeps serving.
                runtime.import_component(transfer)
                raise
            # Exports fed by moved queries leave with them: the coordinator
            # re-installs the tap on the recipient at the collected cursor.
            moved = set(transfer.query_ids)
            for alias in [
                alias
                for alias, entry in runtime.relay_exports.items()
                if entry.get("query_id") in moved
            ]:
                runtime.remove_export(alias)
            return {"blob": blob, "queries": transfer.query_ids}
        if action == "in":
            transfer = decode_transfer(value)
            runtime.import_component(transfer)
            return {"queries": transfer.query_ids}
        if action == "copy":
            # Non-destructive export (elastic drain transport): snapshot
            # the component exactly like a checkpoint would, leaving the
            # live copy serving until the coordinator retires it.
            transfer = runtime.checkpoint_component(value)
            return {
                "blob": encode_transfer(transfer),
                "queries": sorted(transfer.query_ids),
            }
        raise LifecycleError(f"unknown rebalance action {action!r}")
    if kind == RELAY_TAP:
        alias = payload["alias"]
        if payload.get("remove"):
            runtime.remove_export(alias)
            return {"alias": alias}
        stream, channel = payload.get("stream"), payload.get("channel")
        if payload.get("make"):
            # Owner-side creation: mint the alias stream/channel in this
            # worker's id-space (collision-free by reseed_identifiers) and
            # hand them back for coordinator registration + broadcast
            # adoption on the other shards.
            from repro.shard.relay import sink_channel_of

            sink = sink_channel_of(runtime.plan, payload["query_id"])
            stream = StreamDef(
                alias,
                sink.streams[0].schema,
                sharable_label=payload.get("sharable_label"),
            )
            channel = Channel.singleton(stream)
        runtime.export_stream(
            alias,
            payload.get("query_id"),
            stream,
            channel,
            cursor=payload.get("cursor", 0),
        )
        return {"alias": alias, "stream": stream, "channel": channel}
    if kind == COLLECT_RELAY:
        alias = payload["alias"]
        start, runs, produced = runtime.collect_relay(alias, payload["ack"])
        codec = RelayCodec(
            payload["edge"],
            runtime.relay_exports[alias]["alias_channel"],
            columnar=payload.get("columnar", True),
        )
        frames = []
        for run in runs:
            frames.extend(codec.encode(run))
        frames.append(codec.encode_eof())
        return {"start": start, "frames": frames, "produced": produced}
    if kind == CHECKPOINT:
        return capture_manifest(
            runtime, payload["version"], payload.get("base")
        )
    if kind == RESTORE:
        return apply_restore(runtime, payload)
    if kind == STATS:
        if isinstance(payload, dict) and payload.get("telemetry"):
            observer = runtime.engine.observer
            return {
                "stats": runtime.stats,
                "mop_stats": runtime.mop_stats(),
                "query_heat": runtime.query_heat(),
                "peak_state": observer.peak_state if observer is not None else 0,
                "spans": recorder.drain() if recorder is not None else [],
                "state_size": runtime.state_size,
            }
        return runtime.stats
    if kind == SNAPSHOT:
        if isinstance(payload, dict) and "component_of" in payload:
            # Focused snapshot: just the component membership of one query
            # (the rebalance policies' oversized pre-check).
            return {
                "component": runtime.component_query_ids(payload["component_of"])
            }
        return {
            "captured": {
                query_id: list(history)
                for query_id, history in runtime.captured.items()
            },
            "state_size": runtime.state_size,
            "active_queries": list(runtime.active_queries),
            "migrations": runtime.stats.migrations,
            "mops": len(runtime.plan.mops),
        }
    raise LifecycleError(f"unknown command kind {kind!r}")


def _worker_main(
    shard: int,
    incarnation: int,
    streams: list[StreamDef],
    channels: dict[str, Channel],
    commands,
    replies,
    options: _WorkerOptions,
    faults: Optional[WorkerFaults],
    ring: Optional[RingBuffer] = None,
) -> None:
    """Worker body: one QueryRuntime served by the command/data loop."""
    reseed_identifiers(worker_id_base(incarnation))
    with internal_construction():
        runtime = QueryRuntime(
            capture_outputs=options.capture_outputs,
            track_latency=options.track_latency,
            incremental=options.incremental,
            observe=options.observe,
        )
    for stream in streams:
        runtime.adopt_source(stream, channels[stream.name])
    recorder = (
        SpanRecorder(f"w{shard}.{incarnation}") if options.observe else None
    )
    decoder = WireDecoder(channels.values())
    counts: dict[str, int] = {}
    cache: OrderedDict[int, tuple] = OrderedDict()
    max_seq = 0
    while True:
        try:
            frame = commands.get()
        except (EOFError, OSError, KeyboardInterrupt):
            return
        kind = frame[0]
        if kind == STOP:
            return
        if (
            kind == SCHEMA
            or kind == RUN
            or kind == CRUN
            or kind == RING
            or kind == SCHEMA_RETIRE
        ):
            crashing = False
            is_data = kind == RUN or kind == CRUN or kind == RING
            if is_data and faults is not None:
                count = counts.get("data", 0) + 1
                counts["data"] = count
                crashing = faults.matches("data", count)
                if crashing and faults.when == "before":
                    os._exit(faults.exit_code)
            trace = frame_trace(frame) if recorder is not None else None
            if kind == RING:
                # The marker announces one packed record already resident
                # in the shared ring; the queue put that delivered the
                # marker is the memory barrier, so the bytes are present.
                decoded = decoder.decode_ring(ring.read(frame[1]))
            else:
                decoded = decoder.decode(frame)
            if decoded is not None:
                channel, batch = decoded
                # Source channels are singletons in the lifecycle runtime,
                # so the run maps 1:1 onto the stream's own batch path.
                stream = channel.streams[0]
                if isinstance(batch, ColumnBatch):
                    if trace is not None:
                        with recorder.span(
                            "data:apply",
                            trace[0],
                            parent_id=trace[1],
                            shard=shard,
                            stream=stream.name,
                            count=batch.count,
                        ):
                            runtime.process_columns(stream.name, batch)
                    else:
                        runtime.process_columns(stream.name, batch)
                else:
                    tuples = [
                        channel_tuple.tuple for channel_tuple in batch
                    ]
                    if trace is not None:
                        with recorder.span(
                            "data:apply",
                            trace[0],
                            parent_id=trace[1],
                            shard=shard,
                            stream=stream.name,
                            count=len(tuples),
                        ):
                            runtime.process_batch(stream.name, tuples)
                    else:
                        runtime.process_batch(stream.name, tuples)
            if crashing and faults.when == "after":
                os._exit(faults.exit_code)
            continue
        trace = frame_trace(frame) if recorder is not None else None
        kind, seq, payload = decode_command(frame)
        if kind == HELLO or kind == PING:
            # ``hello``: a restarted coordinator's adoption handshake.
            # ``ping``: the coordinator's liveness probe.  Both answered
            # outside the reply cache and the fault counters: a hello's seq
            # comes from a *new* coordinator's numbering (which restarts
            # below the old one's, so a cached reply keyed by a recycled
            # seq must never answer it), and injected crash schedules count
            # real commands only.  The reply is a pure read — repeats are
            # safe, and a hung runtime (not a dead process) simply never
            # gets here, which is exactly what the ping probe detects.
            replies.put(
                encode_reply(
                    seq,
                    OK,
                    {
                        "shard": shard,
                        "incarnation": incarnation,
                        "max_seq": max_seq,
                        "cursor": dict(runtime.cursor),
                        "active_queries": sorted(runtime.active_queries),
                        "exports": sorted(runtime.relay_exports),
                    },
                )
            )
            continue
        if seq > max_seq:
            max_seq = seq
        fault_kind = kind if kind != REBALANCE else f"rebalance-{payload[0]}"
        count = counts.get(fault_kind, 0) + 1
        counts[fault_kind] = count
        crashing = faults is not None and faults.matches(fault_kind, count)
        if crashing and faults.when == "before":
            os._exit(faults.exit_code)
        cached = cache.get(seq)
        if cached is not None:
            # Duplicate (retransmitted or fault-injected) command: answer
            # from the cache, never re-apply.
            replies.put(cached)
            continue
        try:
            if trace is not None:
                with recorder.span(
                    f"apply:{fault_kind}",
                    trace[0],
                    parent_id=trace[1],
                    shard=shard,
                ):
                    result = _apply_command(runtime, kind, payload, recorder)
            else:
                result = _apply_command(runtime, kind, payload, recorder)
            if kind == RELAY_TAP and isinstance(result, dict):
                # Adopting an alias must also teach the wire decoder its
                # channel, or relayed runs shipped on it cannot decode.
                adopted = result.get("channel")
                if adopted is not None:
                    decoder.add_channel(adopted)
            status = OK
        except RumorError as error:
            status, result = ERR, f"{type(error).__name__}: {error}"
        except Exception:  # noqa: BLE001 - must cross the process boundary
            status, result = ERR, traceback.format_exc()
        if crashing and faults.when == "after":
            os._exit(faults.exit_code)
        reply = encode_reply(seq, status, result)
        cache[seq] = reply
        while len(cache) > _REPLY_CACHE:
            cache.popitem(last=False)
        replies.put(reply)


class ProcessShardedRuntime:
    """``n`` worker-process QueryRuntimes serving one changing population.

    Mirrors the :class:`~repro.shard.runtime.ShardedRuntime` API; see the
    module docstring for the protocol and failure semantics.  Sources must
    all be declared before the first lifecycle or event call — workers fork
    with the source stream/channel objects, which is what keeps ids and
    wiring signatures consistent across every process.
    """

    def __init__(
        self,
        sources: Optional[dict[str, Schema]] = None,
        n_shards: int = 2,
        capture_outputs: bool = False,
        track_latency: bool = False,
        incremental: bool = True,
        max_batch: int = 1024,
        data_plane: str = "columnar",
        command_timeout: float = 2.0,
        max_retries: int = 30,
        retry_budget: float = 0.0,
        faults: Optional[FrameFaults] = None,
        worker_faults: Optional[dict[int, WorkerFaults]] = None,
        durable: bool = False,
        checkpoint_every: int = 0,
        store: Optional[CheckpointStore] = None,
        observe: bool = False,
        journal: Union[str, CoordinatorLog, None] = None,
        differential: bool = True,
        full_checkpoint_every: int = 8,
        coordinator_faults: Optional[CoordinatorFaults] = None,
        _resume: bool = False,
        _handoff: Optional[CoordinatorHandoff] = None,
    ):
        warn_direct_construction("ProcessShardedRuntime")
        if not fork_available():
            raise LifecycleError(
                "ProcessShardedRuntime requires the fork start method; "
                "use ShardedRuntime on this platform"
            )
        if checkpoint_every < 0:
            raise LifecycleError(
                f"checkpoint_every must be non-negative, got {checkpoint_every}"
            )
        if full_checkpoint_every < 1:
            raise LifecycleError(
                f"full_checkpoint_every must be at least 1, got "
                f"{full_checkpoint_every}"
            )
        if retry_budget < 0:
            raise LifecycleError(
                f"retry_budget must be non-negative, got {retry_budget}"
            )
        if data_plane not in ("columnar", "pickle"):
            raise LifecycleError(
                f"data_plane must be 'columnar' or 'pickle', "
                f"got {data_plane!r}"
            )
        #: Data transport for source runs: ``"columnar"`` packs runs into
        #: schema-interned columns shipped through per-worker shared-memory
        #: rings (falling back to queue frames per run when unpackable);
        #: ``"pickle"`` keeps every run on the legacy pickled-tuple wire.
        self.data_plane = data_plane
        self._journal = (
            journal
            if isinstance(journal, CoordinatorLog) or journal is None
            else CoordinatorLog(journal)
        )
        self._resume = bool(_resume)
        self._handoff = _handoff
        if self._resume and self._journal is None:
            raise JournalError("resuming requires a coordinator journal")
        if (
            self._journal is not None
            and not self._resume
            and not self._journal.is_fresh
        ):
            path = self._journal.path
            self._journal.close()
            raise JournalError(
                f"{path!r} already holds a previous serve's coordinator "
                f"journal; resume it with ProcessShardedRuntime.from_journal"
                f"(...) / .readopt(...), or point journal= at a fresh "
                f"directory"
            )
        self.max_batch = max_batch
        self.command_timeout = command_timeout
        self.max_retries = max_retries
        #: Wall-clock retransmission budget per RPC in seconds (0 disables;
        #: ``max_retries`` still applies either way).
        self.retry_budget = retry_budget
        self.faults = faults
        self._worker_faults = dict(worker_faults or {})
        self._coordinator_faults = coordinator_faults
        # Checkpointing (and a coordinator journal) implies durability: a
        # checkpoint without the log suffix behind it could not be replayed
        # to the present.
        self.durable = (
            durable
            or checkpoint_every > 0
            or store is not None
            or self._journal is not None
        )
        self.checkpoint_every = checkpoint_every
        self.differential = bool(differential)
        self.full_checkpoint_every = full_checkpoint_every
        if store is None and self._journal is not None:
            # The journal directory doubles as the checkpoint directory —
            # one place on disk holds everything a cold start needs.
            store = CheckpointStore(self._journal.path)
        self.store = (
            store if store is not None
            else (CheckpointStore() if self.durable else None)
        )
        #: Per-shard checkpoints stored / rounds that lost a shard.
        self.checkpoints_stored = 0
        self.checkpoint_failures = 0
        #: Manifest bytes received over the wire by checkpoint rounds
        #: (differential rounds shrink this, not what lands in the store).
        self.checkpoint_wire_bytes = 0
        #: RPC retransmissions sent / RPCs abandoned after the retry budget.
        self.rpc_retransmissions = 0
        self.rpc_unreachable = 0
        #: Final counters of workers retired by elastic shrink (their
        #: outputs would otherwise vanish from :meth:`collect_stats`).
        self._retired_stats = RunStats()
        #: Structured per-recovery accounts, in order (silent-loss fix).
        self.recovery_log: list[RecoveryReport] = []
        self.observe = bool(observe)
        #: One trace covers the whole serve; spans on both sides carry it.
        self.trace_id = f"serve-{os.getpid()}-{id(self) & 0xFFFFFF:x}"
        self.recorder = SpanRecorder("c") if self.observe else None
        #: Structured event log, mirrored onto this module's logger (so the
        #: existing log-capture contracts — recovery warnings on
        #: ``repro.shard.proc`` — keep holding).
        self.events = EventLog(logger)
        self._span_stack: list[str] = []
        self._options = _WorkerOptions(
            capture_outputs=capture_outputs,
            track_latency=track_latency,
            incremental=incremental,
            observe=self.observe,
        )
        self._context = multiprocessing.get_context("fork")
        self.streams: dict[str, StreamDef] = {}
        self._channels: dict[str, Channel] = {}
        self._source_labels: dict[str, Optional[str]] = {}
        #: query_id -> LogicalQuery (the recovery catalog), insertion order.
        self._queries: dict[str, LogicalQuery] = {}
        #: query_id -> owning shard, insertion order (mirrors ShardedRuntime).
        self._query_shard: dict[str, int] = {}
        #: Live shard ids, in creation order.  Sparse after an elastic
        #: shrink: ids are never reused, so checkpoints, logs and journal
        #: records always refer to exactly one worker lineage.
        self._shards: list[int] = []
        self._workers: dict[int, _WorkerHandle] = {}
        self._spawned: dict[int, int] = {}
        self._wal: Optional[dict[int, ShardLog]] = {} if self.durable else None
        #: Per-shard, per-stream shipped-event counts — the coordinator's
        #: view of each worker's stream cursor, cross-checked against every
        #: checkpoint manifest.
        self._shipped: dict[int, dict[str, int]] = {}
        self._next_shard = 0
        self._batches = 0
        self._pending_ckpt: Optional[dict] = None
        #: Re-entrant coordinator lock: every public entry point runs under
        #: it (see :func:`_locked`), making the runtime safe to drive from
        #: a serve session's pump thread + heartbeat timer + sampling
        #: callers concurrently.
        self._lock = threading.RLock()
        #: shard → OrderedDict(seq → pending entry) of pipelined lifecycle
        #: commands shipped but not yet acknowledged (the PR-5 pipelined
        #: checkpoint pattern applied to register/unregister).
        self._pending_cmds: dict[int, OrderedDict] = {}
        #: shard → (version, {query_id: full captured history}) cache of the
        #: latest stored checkpoint's materialized histories — the splice
        #: base for differential rounds (rebuilt lazily from store blobs).
        self._ckpt_captured: dict[int, tuple[int, dict]] = {}
        self._encoder = WireEncoder()
        self._schema_frames: list[tuple] = []
        self._route_cache: dict[str, tuple[int, ...]] = {}
        self._seq = 0
        self._started = False
        self._closed = False
        #: Coordinator-side input accounting (each source event once,
        #: however many shards consume it — the single-runtime convention).
        self.input_stats = RunStats()
        self.rebalances = 0
        self.crash_recoveries = 0
        #: alias → ``{"query_id", "edge", "collected"}`` — cross-shard
        #: relay exports (see :meth:`export_stream`).  ``collected`` is the
        #: journal-backed exactly-once watermark for relayed tuples.
        self._relays: dict[str, dict] = {}
        #: Monotone relay edge-id seed (frames the per-collect codecs).
        self._next_relay_edge = 1
        #: Relayed (derived) tuples re-emitted across shards — volume
        #: counter only; relay traffic never counts as source input.
        self.relayed_events = 0
        incarnation_start = 1
        if self._resume:
            state = self._journal.state
            self._shards = list(state.shards)
            self._next_shard = state.next_shard
            self._spawned = dict(state.spawned)
            self._wal = {
                shard: log.clone() for shard, log in state.wal.items()
            }
            self._shipped = {
                shard: dict(counts) for shard, counts in state.shipped.items()
            }
            self._queries = dict(state.queries)
            self._query_shard = dict(state.query_shard)
            self._batches = state.batches
            self._ckpt_version = state.ckpt_version
            # Unlike a foreign reopened store, the journaled checkpoints
            # ARE this serve's restore points — the floor stays at zero and
            # anything the journal never acknowledged is pruned so restores
            # only ever use journaled cuts (store-then-journal ordering).
            self._ckpt_floor = 0
            for shard in list(self.store.shards()):
                self.store.prune_above(shard, state.ckpt_valid.get(shard, 0))
            incarnation_start = state.next_incarnation
            for name, (stream, channel, label) in state.sources.items():
                self.streams[name] = stream
                self._channels[name] = channel
                self._source_labels[name] = label
            for alias, info in state.relays.items():
                self._relays[alias] = dict(info)
                if info["edge"] >= self._next_relay_edge:
                    self._next_relay_edge = info["edge"] + 1
            self.input_stats.input_events = state.input_events
            self.input_stats.physical_input_events = state.input_events
            if state.retired_stats is not None:
                self._retired_stats.absorb(state.retired_stats)
        else:
            if n_shards < 1:
                raise LifecycleError(
                    f"n_shards must be at least 1, got {n_shards}"
                )
            # A reopened on-disk store may hold a *previous run's*
            # checkpoints.  Those are foreign to this serve: their versions
            # seed ours (so new rounds supersede instead of colliding) but
            # they are never restorable — this run's recovery floor starts
            # above them.
            self._ckpt_floor = (
                max(
                    (
                        self.store.latest_version(shard) or 0
                        for shard in self.store.shards()
                    ),
                    default=0,
                )
                if self.store is not None
                else 0
            )
            self._ckpt_version = self._ckpt_floor
            if self._journal is not None:
                self._journal.append(
                    "options",
                    {
                        "capture_outputs": capture_outputs,
                        "track_latency": track_latency,
                        "incremental": incremental,
                        "max_batch": max_batch,
                        "data_plane": data_plane,
                        "checkpoint_every": checkpoint_every,
                        "observe": self.observe,
                        "differential": self.differential,
                        "full_checkpoint_every": full_checkpoint_every,
                    },
                )
            for __ in range(n_shards):
                shard = self._next_shard
                self._next_shard += 1
                self._shards.append(shard)
                self._shipped[shard] = {}
                if self._wal is not None:
                    self._wal[shard] = ShardLog()
                if self._journal is not None:
                    self._journal.append("add_worker", shard)
        self._incarnations = iter(range(incarnation_start, 1 << 20)).__next__
        if sources:
            for name, schema in sources.items():
                self.add_source(name, schema)

    # -- resume constructors -----------------------------------------------------------

    @classmethod
    def from_journal(
        cls, journal: Union[str, CoordinatorLog], **options
    ) -> "ProcessShardedRuntime":
        """Cold-start a runtime from a prior serve's coordinator journal.

        The journal's folded state supplies the topology, source catalog,
        query placement, input cursors and runtime options (keyword
        arguments override the journaled options); the fleet is respawned
        lazily on the first lifecycle or data call, each worker restored
        from its latest journaled checkpoint plus its journaled
        write-ahead-log suffix — byte-identical to a never-crashed serve.
        """
        log = (
            journal
            if isinstance(journal, CoordinatorLog)
            else CoordinatorLog(journal)
        )
        if log.is_fresh:
            raise JournalError(
                f"no coordinator journal found under {log.path!r}; nothing "
                f"to resume"
            )
        merged = dict(log.state.options)
        merged.update(options)
        merged.pop("n_shards", None)  # topology comes from the journal
        with internal_construction():  # already a factory entry point
            return cls(journal=log, _resume=True, **merged)

    @classmethod
    def readopt(
        cls,
        journal: Union[str, CoordinatorLog],
        handoff: CoordinatorHandoff,
        **options,
    ) -> "ProcessShardedRuntime":
        """Resume a serve by re-adopting a dead coordinator's live workers.

        Like :meth:`from_journal`, but instead of respawning the fleet the
        new coordinator handshakes every still-running worker in
        ``handoff`` (``hello`` → incarnation, applied seq, stream cursors,
        active queries), reconciles each against the journal — unjournaled
        effects rolled back, journaled-but-unshipped data re-shipped, dead
        or diverged workers respawned from checkpoints — and resumes RPCs
        without replaying the fleet.
        """
        log = (
            journal
            if isinstance(journal, CoordinatorLog)
            else CoordinatorLog(journal)
        )
        if log.is_fresh:
            raise JournalError(
                f"no coordinator journal found under {log.path!r}; nothing "
                f"to resume"
            )
        merged = dict(log.state.options)
        merged.update(options)
        merged.pop("n_shards", None)
        with internal_construction():  # already a factory entry point
            return cls(journal=log, _resume=True, _handoff=handoff, **merged)

    # -- sources ---------------------------------------------------------------------

    def add_source(
        self,
        name: str,
        schema: Schema,
        sharable_label: Optional[str] = None,
    ) -> StreamDef:
        """Declare a source; must happen before the workers fork."""
        if self._started:
            raise LifecycleError(
                "sources must be declared before the first lifecycle call "
                "(workers inherit them at fork)"
            )
        if name in self.streams:
            raise LifecycleError(f"source {name!r} is already declared")
        stream = StreamDef(name, schema, sharable_label=sharable_label)
        self.streams[name] = stream
        self._channels[name] = Channel.singleton(stream)
        self._source_labels[name] = sharable_label
        if self._journal is not None:
            # The stream and channel objects are journaled whole: their
            # pickled identities (stream/channel ids) are what a resumed
            # coordinator needs to keep talking to workers — and to spawn
            # workers — that inherited these exact objects.
            self._journal.append("source", name, stream, self._channels[name], sharable_label)
        return stream

    # -- topology --------------------------------------------------------------------

    @property
    def n_shards(self) -> int:
        """Live worker count (elastic: changes mid-serve)."""
        return len(self._shards)

    def shard_ids(self) -> list[int]:
        """Live shard ids in creation order (sparse after a shrink)."""
        return list(self._shards)

    # -- worker management -----------------------------------------------------------

    def _ensure_started(self) -> None:
        if self._closed:
            raise LifecycleError("runtime is closed")
        if self._started:
            return
        self._started = True
        if self._resume and self._handoff is not None:
            handoff, self._handoff = self._handoff, None
            self._adopt(handoff)
            return
        for shard in list(self._shards):
            self._workers[shard] = self._spawn(shard)
        if self._resume:
            self._cold_start()

    def _spawn(self, shard: int) -> _WorkerHandle:
        self._spawned[shard] = self._spawned.get(shard, 0) + 1
        faults = self._worker_faults.get(shard)
        if faults is not None and self._spawned[shard] > 1 and not faults.rearm:
            faults = None
        incarnation = self._incarnations()
        if self._journal is not None:
            # Journaled before the fork: the journal's next_incarnation is
            # then always >= any incarnation that ever ran, so a resumed
            # coordinator can never alias a live worker's id range.
            self._journal.append("spawn", shard, incarnation)
        commands = self._context.Queue()
        replies = self._context.Queue()
        # The data ring is allocated before the fork so the child inherits
        # the shared arena; a respawn gets a fresh ring (the dead
        # incarnation's unread bytes die with it — every announced record
        # was matched by a queue marker the new queue no longer holds).
        ring = RingBuffer() if self.data_plane == "columnar" else None
        process = self._context.Process(
            target=_worker_main,
            name=f"shard{shard}.{incarnation}",
            args=(
                shard,
                incarnation,
                list(self.streams.values()),
                dict(self._channels),
                commands,
                replies,
                self._options,
                faults,
                ring,
            ),
            daemon=True,
        )
        process.start()
        return _WorkerHandle(
            process=process,
            commands=commands,
            replies=replies,
            incarnation=incarnation,
            ring=ring,
        )

    @_locked
    def close(self) -> None:
        """Stop every worker (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for handle in self._workers.values():
            try:
                handle.commands.put(STOP_FRAME)
            except (OSError, ValueError):
                pass
        for handle in self._workers.values():
            handle.process.join(timeout=2.0)
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(timeout=1.0)
        if self._journal is not None:
            self._journal.close()

    def _stop_handle(self, handle: _WorkerHandle) -> None:
        """Stop one worker gracefully, escalating to terminate."""
        try:
            handle.commands.put(STOP_FRAME)
        except (OSError, ValueError):
            pass
        handle.process.join(timeout=2.0)
        if handle.process.is_alive():
            handle.process.terminate()
            handle.process.join(timeout=1.0)

    def detach(self) -> CoordinatorHandoff:
        """Surrender the live worker handles without stopping the workers.

        Models a coordinator crash whose workers survive (they are separate
        processes; losing the coordinator does not kill them): the runtime
        object is dead afterwards (``close`` becomes a no-op and no further
        calls are valid), and the returned handoff feeds
        :meth:`readopt` on a successor coordinator.
        """
        handoff = CoordinatorHandoff(workers=dict(self._workers))
        self._workers = {}
        self._closed = True
        if self._journal is not None:
            self._journal.close()
        return handoff

    def abandon(self) -> None:
        """Hard-kill the fleet and drop the runtime (simulated total loss).

        No STOP commands, no draining — the workers are terminated the way
        a machine failure would take them, leaving only the on-disk journal
        and checkpoint store for :meth:`from_journal` to cold-start from.
        """
        self._closed = True
        for handle in self._workers.values():
            if handle.process.is_alive():
                handle.process.terminate()
            handle.process.join(timeout=1.0)
        self._workers = {}
        if self._journal is not None:
            self._journal.close()

    def _crash_point(self, point: str, phase: str) -> None:
        """Fire an armed coordinator fault (no-op without injection)."""
        if self._coordinator_faults is None:
            return
        try:
            self._coordinator_faults.check(point, phase)
        except CoordinatorCrashError:
            # The coordinator is dead from here on; the test harness
            # catches the error and either abandons or detaches the fleet.
            self.events.emit(
                "coordinator_crash",
                message=f"injected coordinator crash at {point} ({phase})",
                level=logging.WARNING,
                point=point,
                phase=phase,
            )
            raise

    def __enter__(self) -> "ProcessShardedRuntime":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- tracing ---------------------------------------------------------------------

    def _trace_ctx(self) -> Optional[tuple]:
        """The ``(trace_id, parent_span_id)`` pair to piggyback on a frame:
        the innermost open coordinator span, or the serve root."""
        if self.recorder is None:
            return None
        parent = self._span_stack[-1] if self._span_stack else None
        return (self.trace_id, parent)

    @contextmanager
    def _traced(self, name: str, **attrs):
        """Coordinator span covering a structural operation (rebalance,
        recovery, checkpoint round); RPCs and shipped runs issued inside it
        nest under it via :meth:`_trace_ctx`.  No-op when not observing."""
        if self.recorder is None:
            yield None
            return
        parent = self._span_stack[-1] if self._span_stack else None
        span = self.recorder.start(name, self.trace_id, parent, **attrs)
        self._span_stack.append(span.span_id)
        try:
            yield span
        except BaseException:
            span.attrs["error"] = True
            raise
        finally:
            self._span_stack.pop()
            span.finish()
            self.recorder.record(span)

    # -- RPC -------------------------------------------------------------------------

    def _send_command(self, handle: _WorkerHandle, frame: tuple) -> None:
        copies = self.faults.copies_of(frame) if self.faults is not None else 1
        for __ in range(copies):
            handle.commands.put(frame)

    def _new_command(self, shard: int, kind: str, payload=None):
        """Allocate the next sequence number and encode a command frame.

        Returns ``(seq, frame, span)``; the caller owns finishing the span
        (when observing) once the conversation ends.
        """
        self._seq += 1
        seq = self._seq
        span = None
        if self.recorder is not None:
            span = self.recorder.start(
                f"rpc:{kind}",
                self.trace_id,
                self._span_stack[-1] if self._span_stack else None,
                shard=shard,
            )
            trace = (self.trace_id, span.span_id)
        else:
            trace = None
        frame = encode_command(kind, seq, payload, trace=trace)
        return seq, frame, span

    def _await_reply(
        self, shard: int, handle: _WorkerHandle, seq: int, frame: tuple,
        kind: str, span=None,
    ):
        """Block for the reply matching ``seq``, retransmitting on timeout.

        Stray replies that land in between — pipelined checkpoint manifests
        or pipelined lifecycle acknowledgements — are routed to their
        pending entries; stale duplicates are dropped.
        """
        retries = 0
        started = time.monotonic()
        # Exponential backoff with deterministic jitter: each timeout
        # doubles (capped at 8x) and is scaled by a seq-seeded factor in
        # [0.5, 1.5), so retransmission storms de-synchronize while
        # tests stay reproducible.
        jitter = Random(seq)
        timeout = self.command_timeout
        while True:
            try:
                reply = handle.replies.get(timeout=timeout)
            except queue_module.Empty:
                if handle.process.exitcode is not None:
                    if span is not None:
                        span.attrs["error"] = True
                    raise WorkerCrashError(
                        f"shard {shard} worker exited with code "
                        f"{handle.process.exitcode} during {kind}"
                    ) from None
                retries += 1
                elapsed = time.monotonic() - started
                if retries > self.max_retries or (
                    self.retry_budget > 0 and elapsed > self.retry_budget
                ):
                    if span is not None:
                        span.attrs["error"] = True
                    self.rpc_unreachable += 1
                    raise WorkerUnreachableError(
                        f"shard {shard} did not acknowledge {kind} after "
                        f"{retries} attempts ({elapsed:.1f}s; "
                        f"max_retries={self.max_retries}, "
                        f"retry_budget={self.retry_budget or 'off'})",
                        shard=shard,
                        kind=kind,
                        attempts=retries,
                        elapsed_seconds=elapsed,
                    ) from None
                self.rpc_retransmissions += 1
                self._send_command(handle, frame)
                timeout = min(
                    self.command_timeout * (2 ** retries),
                    self.command_timeout * 8,
                ) * jitter.uniform(0.5, 1.5)
                continue
            reply_seq, status, result = decode_reply(reply)
            if reply_seq != seq:
                # A pipelined checkpoint manifest or lifecycle ack landing
                # between two synchronous commands (route it to its pending
                # entry) — or a stale reply of a duplicated earlier command
                # (drop it).
                self._stash_stray_reply(shard, reply_seq, status, result)
                continue
            if status == OK:
                return result
            if span is not None:
                span.attrs["error"] = True
            raise WorkerCommandError(
                f"shard {shard} {kind} failed: {result}"
            )

    def _rpc(self, shard: int, kind: str, payload=None):
        """Send one command and block for its reply (raw, no recovery)."""
        handle = self._workers[shard]
        seq, frame, span = self._new_command(shard, kind, payload)
        try:
            self._send_command(handle, frame)
            return self._await_reply(shard, handle, seq, frame, kind, span)
        finally:
            if span is not None:
                span.finish()
                self.recorder.record(span)

    def _rpc_fanout(self, kind: str, payloads: dict) -> dict:
        """Pipelined fan-out: ship one command per shard, then collect.

        ``payloads`` maps shard → payload.  Every frame is enqueued before
        any reply is awaited, so the workers decode and answer
        concurrently and the barrier costs the *slowest* round trip instead
        of the sum — on a fleet with deep data queues this is the
        difference between one queue drain and ``n`` of them.  A shard that
        dies mid-fan is recovered and its command retried once (the
        :meth:`_rpc_recovering` discipline, per shard).  Returns
        shard → result, every shard answered.
        """
        sent = []
        for shard, payload in payloads.items():
            handle = self._workers[shard]
            seq, frame, span = self._new_command(shard, kind, payload)
            self._send_command(handle, frame)
            sent.append((shard, payload, handle, seq, frame, span))
        results = {}
        for shard, payload, handle, seq, frame, span in sent:
            try:
                results[shard] = self._await_reply(
                    shard, handle, seq, frame, kind, span
                )
            except WorkerCrashError:
                # Recovery drains only this shard's reply queue, so the
                # other in-flight fan replies are untouched; the respawned
                # worker never saw the fan frame, so re-send fresh.
                self._recover(shard)
                results[shard] = self._rpc(shard, kind, payload)
            finally:
                if span is not None:
                    span.finish()
                    self.recorder.record(span)
        return results

    def _stash_stray_reply(
        self, shard: int, reply_seq: int, status: str, result
    ) -> bool:
        """Route a reply that is not the one currently awaited: pending
        checkpoint manifests first, then pending pipelined lifecycle
        commands.  Returns False for stale duplicates (dropped)."""
        if self._stash_checkpoint_reply(shard, reply_seq, status, result):
            return True
        return self._resolve_lifecycle_reply(shard, reply_seq, status, result)

    def _rpc_recovering(self, shard: int, kind: str, payload=None):
        """RPC that survives one worker crash: recover, then retry once."""
        try:
            return self._rpc(shard, kind, payload)
        except WorkerCrashError:
            self._recover(shard)
            return self._rpc(shard, kind, payload)

    def _recover(self, shard: int) -> RecoveryReport:
        """Respawn a dead worker and bring it back to the present.

        Durable mode restores the shard's latest checkpoint (executor state
        re-seeded, captured histories re-homed, cursor reset to the cut) and
        replays the write-ahead-log suffix — lifecycle commands and source
        runs in their original order — so the respawned worker is
        byte-identical to one that never crashed.  Non-durable mode blank
        re-registers the catalog queries, dropping the dead incarnation's
        operator state.  Either way a structured :class:`RecoveryReport` is
        appended to :attr:`recovery_log` and emitted through ``logging``.
        """
        with self._traced("recovery", shard=shard):
            return self._recover_inner(shard)

    def _recover_inner(self, shard: int) -> RecoveryReport:
        old = self._workers[shard]
        old.process.join(timeout=2.0)
        started = time.perf_counter()
        # A snapshot in flight on the dead worker can never complete; its
        # round proceeds without this shard (older version retained).
        # Pending pipelined lifecycle submissions are owned by the replay.
        self._cancel_pending_checkpoint(shard)
        self._cancel_pending_lifecycle(shard)
        handle = self._spawn(shard)
        self._workers[shard] = handle
        for frame in self._schema_frames:
            handle.commands.put(frame)
        self._shipped[shard] = {}
        report = RecoveryReport(
            shard=shard,
            incarnation=handle.incarnation,
            durable=self.durable,
            checkpoint_version=None,
        )
        if self.durable:
            self._restore_worker(shard, report)
        else:
            for query_id, owner in self._query_shard.items():
                if owner == shard:
                    self._rpc(shard, REGISTER, self._queries[query_id])
                    report.queries_lost_state.append(query_id)
            # Re-tap exported sinks at the collected watermark so relay
            # numbering stays aligned (the operator state behind them is
            # gone either way — that's the documented non-durable loss).
            for alias, info in self._relays.items():
                if self._query_shard.get(info["query_id"]) == shard:
                    self._install_relay_tap(shard, alias, info["collected"])
        report.elapsed_seconds = time.perf_counter() - started
        self.recovery_log.append(report)
        # str(report) carries the full account (including the DROPPED
        # state-loss marker the log-capture tests assert on).
        self.events.emit(
            "recovery",
            message=str(report),
            level=logging.WARNING if report.state_lost else logging.INFO,
            shard=shard,
            incarnation=handle.incarnation,
            state_lost=report.state_lost,
        )
        self.crash_recoveries += 1
        self._route_cache.clear()
        return report

    def _restore_worker(self, shard: int, report: RecoveryReport) -> None:
        """Bring a freshly spawned worker to the present: restore its
        latest restorable checkpoint, then replay its write-ahead-log
        suffix.  Shared by crash recovery, journal cold start and re-adopt
        respawns — the log may be the live one or a clone of the journal's
        folded mirror; the replay discipline is identical."""
        checkpoint = self.store.latest(shard)
        if checkpoint is not None and checkpoint.version <= self._ckpt_floor:
            # A previous run's checkpoint: foreign state, never restored
            # into this serve (this run's write-ahead log starts empty,
            # so replay-from-origin is the correct recovery).
            checkpoint = None
        if checkpoint is not None:
            report.checkpoint_version = checkpoint.version
            restored = self._rpc(
                shard,
                RESTORE,
                {
                    "components": [
                        component.blob
                        for component in checkpoint.components
                    ],
                    "captured_extra": checkpoint.captured_extra,
                    "stats": checkpoint.stats,
                    "cursor": dict(checkpoint.cursor),
                },
            )
            report.queries_restored = restored["queries"]
            report.state_restored = restored["state_restored"]
            self._shipped[shard] = dict(checkpoint.cursor)
            position = checkpoint.position
            # Taps live at the cut re-install at their manifest cursors
            # (== the journaled collected watermark, because relays drain
            # before every cut); taps created after the cut replay from
            # the log suffix below.
            for alias, cursor in checkpoint.relays.items():
                if alias in self._relays:
                    self._install_relay_tap(shard, alias, cursor)
        else:
            position = self._wal[shard].start
        for entry in self._wal[shard].entries_from(position):
            kind = entry[0]
            if kind == "data":
                __, stream_name, chunk = entry
                self._ship_run(stream_name, chunk, (shard,))
                report.tuples_replayed += len(chunk)
            elif kind == "register":
                self._rpc(shard, REGISTER, entry[1])
                report.queries_replayed.append(entry[1].query_id)
                report.lifecycle_replayed += 1
            elif kind == "unregister":
                self._rpc(shard, UNREGISTER, entry[1])
                report.lifecycle_replayed += 1
            elif kind == "reoptimize":
                self._rpc(shard, REOPTIMIZE)
                report.lifecycle_replayed += 1
            elif kind == "import":
                self._rpc(shard, REBALANCE, ("in", entry[1]))
                report.lifecycle_replayed += 1
            elif kind == "export":
                # Replayed components leave again; the live copy is on
                # the shard the original rebalance moved it to.
                self._rpc(shard, REBALANCE, ("out", entry[1]))
                report.lifecycle_replayed += 1
            elif kind == "relay-tap":
                __, alias, cursor = entry
                if alias in self._relays:
                    self._install_relay_tap(shard, alias, cursor)
                    report.lifecycle_replayed += 1
            elif kind == "relay-untap":
                self._rpc(shard, RELAY_TAP, {"alias": entry[1], "remove": True})
                report.lifecycle_replayed += 1
            else:
                raise CheckpointError(
                    f"unknown write-ahead-log entry kind {kind!r}"
                )

    # -- resume: cold start and re-adoption --------------------------------------------

    def _cold_start(self) -> None:
        """Restore the whole fleet from the journal (total-loss recovery).

        Every shard in the journaled topology has just been respawned
        blank; each is restored from its latest journaled checkpoint plus
        the journal's folded write-ahead-log suffix.  Schema frames re-emit
        naturally — the fresh encoder interns each journaled channel on its
        first replayed run.
        """
        with self._traced("cold_start", shards=len(self._shards)):
            for shard in self._shards:
                started = time.perf_counter()
                self._shipped[shard] = {}
                report = RecoveryReport(
                    shard=shard,
                    incarnation=self._workers[shard].incarnation,
                    durable=True,
                    checkpoint_version=None,
                )
                self._restore_worker(shard, report)
                report.elapsed_seconds = time.perf_counter() - started
                self.recovery_log.append(report)
                self.events.emit(
                    "cold_start_shard",
                    message=str(report),
                    shard=shard,
                    incarnation=report.incarnation,
                )
        self.events.emit(
            "cold_start",
            message=(
                f"cold-started {len(self._shards)} workers from journal "
                f"{self._journal.path!r}"
            ),
            shards=len(self._shards),
        )

    def _adopt(self, handoff: CoordinatorHandoff) -> None:
        """Re-adopt a dead coordinator's still-live workers.

        Per worker: drain stale replies, ``hello`` (incarnation, highest
        applied command seq, stream cursors, active queries), then
        reconcile against the journal.  Reconciliation order matters:
        first every *unjournaled* effect is rolled back on every live
        worker (extra queries unregistered with their captured history
        purged — the journal says they live elsewhere or nowhere), then
        workers *missing* journaled queries are respawned from checkpoints
        (the respawn may re-import a component whose live copy was just
        purged — purging first prevents duplication), and finally
        journaled-but-unshipped data (the journal-before-ship window) is
        re-shipped from the folded log tails.  The coordinator's sequence
        numbering resumes above every worker's applied seq, so reply
        caches keyed by the old numbering can never answer a new command.
        """
        with self._traced("readopt", shards=len(self._shards)):
            for shard, handle in handoff.workers.items():
                if shard not in self._shards:
                    # Journaled as removed before the crash; the handoff
                    # raced the topology change.  Retire it.
                    self._stop_handle(handle)
            hello: dict[int, dict] = {}
            for shard in self._shards:
                handle = handoff.workers.get(shard)
                if handle is None or handle.process.exitcode is not None:
                    continue
                while True:  # stale replies of the dead coordinator's RPCs
                    try:
                        handle.replies.get_nowait()
                    except queue_module.Empty:
                        break
                self._workers[shard] = handle
                try:
                    hello[shard] = self._rpc(shard, HELLO)
                except (WorkerCrashError, LifecycleError):
                    self._workers.pop(shard, None)
            self._seq = max(
                [self._seq] + [info["max_seq"] for info in hello.values()]
            )
            for shard, info in hello.items():
                journaled = {
                    query_id
                    for query_id, owner in self._query_shard.items()
                    if owner == shard
                }
                for query_id in info["active_queries"]:
                    if query_id not in journaled:
                        self._rpc(
                            shard,
                            UNREGISTER,
                            {"query_id": query_id, "purge_captured": True},
                        )
                # Same rollback for relay exports the journal never
                # committed (the dead coordinator crashed between the tap
                # RPC and the "relay" record).
                for alias in info.get("exports", ()):
                    owner_info = self._relays.get(alias)
                    if (
                        owner_info is None
                        or self._query_shard.get(owner_info["query_id"])
                        != shard
                    ):
                        self._rpc(shard, RELAY_TAP, {"alias": alias, "remove": True})
            adopted = 0
            for shard in self._shards:
                info = hello.get(shard)
                journaled = {
                    query_id
                    for query_id, owner in self._query_shard.items()
                    if owner == shard
                }
                if info is None:
                    self._force_respawn(shard)
                    continue
                missing = journaled - set(info["active_queries"])
                if missing:
                    self._force_respawn(shard)
                    continue
                self._reship_deficit(shard, info["cursor"])
                adopted += 1
        self._route_cache.clear()
        self.events.emit(
            "readopt",
            message=(
                f"re-adopted {adopted}/{len(self._shards)} workers from "
                f"handoff (journal {self._journal.path!r})"
            ),
            adopted=adopted,
            shards=len(self._shards),
        )

    def _force_respawn(self, shard: int) -> None:
        """Replace a dead or journal-diverged worker during re-adoption."""
        handle = self._workers.pop(shard, None)
        if handle is not None:
            self._stop_handle(handle)
        started = time.perf_counter()
        replacement = self._spawn(shard)
        self._workers[shard] = replacement
        for frame in self._schema_frames:
            replacement.commands.put(frame)
        self._shipped[shard] = {}
        report = RecoveryReport(
            shard=shard,
            incarnation=replacement.incarnation,
            durable=self.durable,
            checkpoint_version=None,
        )
        self._restore_worker(shard, report)
        report.elapsed_seconds = time.perf_counter() - started
        self.recovery_log.append(report)
        self.crash_recoveries += 1
        self.events.emit(
            "readopt_respawn",
            message=str(report),
            level=logging.INFO,
            shard=shard,
            incarnation=replacement.incarnation,
        )

    def _reship_deficit(self, shard: int, worker_cursor: dict) -> None:
        """Re-ship journaled-but-unshipped data to an adopted worker.

        Data is journaled before it is shipped, so a worker's cursor can
        only be at or behind the journal, and the unshipped events are
        always a clean suffix of the folded log.  The suffix is matched
        exactly (chunk boundaries and all); any misalignment — a cursor
        ahead of the journal, a lifecycle entry inside the deficit window —
        means the worker's timeline diverged from the journal's, and the
        worker is respawned from its checkpoint instead.
        """
        shipped = self._shipped[shard]
        for stream_name, count in worker_cursor.items():
            if count > shipped.get(stream_name, 0):
                raise CheckpointError(
                    f"shard {shard} processed {count} events of "
                    f"{stream_name!r} but the journal shipped only "
                    f"{shipped.get(stream_name, 0)} — data was shipped "
                    f"without being journaled; the journal-before-ship "
                    f"discipline is broken"
                )
        deficits = {
            stream_name: count - worker_cursor.get(stream_name, 0)
            for stream_name, count in shipped.items()
            if count - worker_cursor.get(stream_name, 0) > 0
        }
        if not deficits:
            return
        log = self._wal[shard]
        entries = log.entries_from(log.start)
        suffix: list[tuple] = []
        need = dict(deficits)
        for entry in reversed(entries):
            if not any(count > 0 for count in need.values()):
                break
            if entry[0] != "data":
                self._force_respawn(shard)
                return
            __, stream_name, chunk = entry
            remaining = need.get(stream_name, 0)
            if len(chunk) > remaining:
                self._force_respawn(shard)
                return
            need[stream_name] = remaining - len(chunk)
            suffix.append(entry)
        if any(count != 0 for count in need.values()):
            self._force_respawn(shard)
            return
        for __, stream_name, chunk in reversed(suffix):
            # count=False: the journal already counted these events as
            # shipped — re-shipping closes the gap, it does not extend it.
            self._ship_run(stream_name, chunk, (shard,), count=False)
        self.events.emit(
            "readopt_reship",
            level=logging.DEBUG,
            shard=shard,
            deficits=deficits,
        )

    # -- checkpoints -----------------------------------------------------------------

    @_locked
    def checkpoint(self, wait: bool = True) -> int:
        """Initiate a checkpoint round across every worker.

        Enqueues one ``checkpoint`` command per worker (the command's
        position in each worker's frame order is the consistency cut) and
        returns the round's version.  With ``wait=False`` the snapshots are
        collected pipelined — on later batch boundaries, during other RPCs,
        or by :meth:`collect_checkpoints` — so serving never stalls on
        checkpoint capture.
        """
        if not self.durable:
            raise CheckpointError(
                "checkpointing requires a durable runtime "
                "(durable=True / checkpoint_every > 0)"
            )
        self._ensure_started()
        version = self._initiate_checkpoint()
        if wait:
            self.collect_checkpoints()
        return version

    @_locked
    def collect_checkpoints(self) -> None:
        """Block until no checkpoint round is pending (crash-recovering)."""
        while self._pending_ckpt is not None:
            pending = self._pending_ckpt
            shard, entry = next(iter(pending["shards"].items()))
            handle = self._workers[shard]
            try:
                reply = handle.replies.get(timeout=self.command_timeout)
            except queue_module.Empty:
                if handle.process.exitcode is not None:
                    self._recover(shard)
                    continue
                entry["retries"] += 1
                if entry["retries"] > self.max_retries:
                    self.rpc_unreachable += 1
                    raise WorkerUnreachableError(
                        f"shard {shard} did not acknowledge checkpoint "
                        f"v{pending['version']} after {entry['retries']} "
                        f"attempts",
                        shard=shard,
                        kind=CHECKPOINT,
                        attempts=entry["retries"],
                    ) from None
                # Safe retransmit: the original frame was delivered (the
                # reliable path never drops), so the first copy already
                # fixed the cut; a duplicate is answered from the worker's
                # reply cache.
                self.rpc_retransmissions += 1
                handle.commands.put(entry["frame"])
                continue
            reply_seq, status, result = decode_reply(reply)
            if reply_seq == entry["seq"]:
                self._finish_shard_checkpoint(shard, status, result)
            else:
                # A pipelined lifecycle ack landing during collection — or a
                # stale duplicate of an already-acknowledged command (drop).
                self._resolve_lifecycle_reply(shard, reply_seq, status, result)

    def _initiate_checkpoint(self) -> int:
        # One round in flight at a time: a new cut only makes sense once
        # the previous one has fully landed (or its shard died).
        if self._pending_ckpt is not None:
            self.collect_checkpoints()
        # Relays must be quiescent at the cut: with every produced tuple
        # journaled as collected, each manifest's relay cursor equals the
        # journaled watermark — otherwise tuples retained at the cut would
        # be restored over (the tap resumes past them) yet never shipped.
        self._drain_relays()
        self._ckpt_version += 1
        version = self._ckpt_version
        # Differential cadence: deltas by default, a forced full round
        # every ``full_checkpoint_every`` versions bounding how many
        # splices any restore chain depends on (the store itself is always
        # materialized full, so the bound is about blast radius of a bad
        # splice base, not about restore cost).
        differential = (
            self.differential
            and self.full_checkpoint_every > 0
            and version % self.full_checkpoint_every != 0
        )
        shards: dict[int, dict] = {}
        with self._traced("checkpoint:round", version=version):
            # Worker-side apply:checkpoint spans parent to this round span
            # even though the snapshots land later, pipelined — the span
            # marks the initiation cut, not the collection.
            trace = self._trace_ctx()
            for shard in self._shards:
                base = self._ckpt_base(shard) if differential else None
                self._seq += 1
                frame = encode_command(
                    CHECKPOINT,
                    self._seq,
                    {"version": version, "base": base},
                    trace=trace,
                )
                shards[shard] = {
                    "seq": self._seq,
                    "frame": frame,
                    "position": self._wal[shard].end,
                    "expected_cursor": dict(self._shipped[shard]),
                    "expected_relays": {
                        alias: info["collected"]
                        for alias, info in self._relays.items()
                        if self._query_shard[info["query_id"]] == shard
                    },
                    "base": base,
                    "retries": 0,
                }
                # Bypass FrameFaults: a checkpoint command's queue position
                # IS the cut it records, so it ships on the reliable path
                # like the data frames it cuts between (see FrameFaults).
                self._workers[shard].commands.put(frame)
        self._pending_ckpt = {"version": version, "shards": shards}
        self._crash_point("ckpt-round", "before")
        self.events.emit(
            "checkpoint_initiated", level=logging.DEBUG, version=version
        )
        return version

    def _ckpt_base(self, shard: int) -> Optional[dict]:
        """Captured-history offsets of the shard's last stored checkpoint —
        the delta base a differential round sends the worker.  ``None``
        (→ full manifest) when no restorable checkpoint exists."""
        checkpoint = self.store.latest(shard)
        if checkpoint is None or checkpoint.version <= self._ckpt_floor:
            return None
        offsets: dict = {}
        for component in checkpoint.components:
            offsets.update(component.captured_offsets)
        for query_id, history in pickle.loads(
            checkpoint.captured_extra
        ).items():
            offsets.setdefault(query_id, len(history))
        return offsets

    def _captured_cache(self, shard: int) -> dict:
        """The latest stored checkpoint's materialized captured histories
        (query id → full history) — the splice base for differential
        manifests.  Cached per shard; rebuilt from the store's blobs when
        the cached version is stale (e.g. after a resume)."""
        checkpoint = self.store.latest(shard)
        cached = self._ckpt_captured.get(shard)
        if cached is not None and cached[0] == checkpoint.version:
            return cached[1]
        full: dict = {}
        for component in checkpoint.components:
            transfer = decode_transfer(component.blob)
            for query_id, history in transfer.captured.items():
                full[query_id] = list(history)
        for query_id, history in pickle.loads(
            checkpoint.captured_extra
        ).items():
            full[query_id] = list(history)
        self._ckpt_captured[shard] = (checkpoint.version, full)
        return full

    def _poll_checkpoint(self) -> None:
        """Non-blocking sweep for pipelined checkpoint replies."""
        pending = self._pending_ckpt
        if pending is None:
            return
        for shard in list(pending["shards"]):
            entry = pending["shards"].get(shard)
            if entry is None or self._pending_ckpt is not pending:
                break
            handle = self._workers[shard]
            while True:
                try:
                    reply = handle.replies.get_nowait()
                except queue_module.Empty:
                    break
                reply_seq, status, result = decode_reply(reply)
                if reply_seq == entry["seq"]:
                    self._finish_shard_checkpoint(shard, status, result)
                    break
                # A pipelined lifecycle ack — or a stale duplicate (drop).
                self._resolve_lifecycle_reply(shard, reply_seq, status, result)

    def _stash_checkpoint_reply(
        self, shard: int, reply_seq: int, status: str, result
    ) -> bool:
        pending = self._pending_ckpt
        if pending is None:
            return False
        entry = pending["shards"].get(shard)
        if entry is None or entry["seq"] != reply_seq:
            return False
        self._finish_shard_checkpoint(shard, status, result)
        return True

    def _finish_shard_checkpoint(self, shard: int, status: str, result) -> None:
        pending = self._pending_ckpt
        entry = pending["shards"].pop(shard)
        if not pending["shards"]:
            self._pending_ckpt = None
        if status != OK:
            # The worker is alive but could not snapshot; it keeps serving
            # on its previous checkpoint (recovery replays a longer suffix).
            self.checkpoint_failures += 1
            self.events.emit(
                "checkpoint_failed",
                message=(
                    f"shard {shard} failed checkpoint "
                    f"v{pending['version']}: {result}"
                ),
                level=logging.WARNING,
                shard=shard,
                version=pending["version"],
            )
            return
        manifest = decode_manifest(result)
        if manifest["cursor"] != entry["expected_cursor"]:
            raise CheckpointError(
                f"shard {shard} checkpoint v{pending['version']} cursor "
                f"mismatch: worker processed {manifest['cursor']}, "
                f"coordinator shipped {entry['expected_cursor']} before the "
                f"cut — the protocol's ordering guarantee is broken"
            )
        expected_relays = entry.get("expected_relays", {})
        if manifest.get("relays", {}) != expected_relays:
            raise CheckpointError(
                f"shard {shard} checkpoint v{pending['version']} relay "
                f"cursor mismatch: worker produced "
                f"{manifest.get('relays', {})}, coordinator collected "
                f"{expected_relays} before the cut — relays were not "
                f"quiescent at initiation"
            )
        # Account what actually crossed the wire (differential rounds trim
        # the captured histories to deltas before this point).
        wire_bytes = len(manifest["captured_extra"]) + sum(
            len(component["blob"]) for component in manifest["components"]
        )
        self.checkpoint_wire_bytes += wire_bytes
        base = entry.get("base")
        if base is not None:
            self._materialize_differential(shard, manifest, base)
        checkpoint = ShardCheckpoint(
            shard=shard,
            version=pending["version"],
            position=entry["position"],
            cursor=manifest["cursor"],
            components=tuple(
                ComponentCheckpoint(
                    query_ids=tuple(component["queries"]),
                    blob=component["blob"],
                    state_carried=component["state_carried"],
                    captured_offsets=component["captured_offsets"],
                )
                for component in manifest["components"]
            ),
            captured_extra=manifest["captured_extra"],
            stats=manifest["stats"],
            relays=dict(expected_relays),
        )
        self.store.put(checkpoint)
        # Invalidate the splice cache; the next differential round rebuilds
        # it lazily from the version just stored.
        self._ckpt_captured.pop(shard, None)
        # Everything before the cut is now redundant: restore + suffix
        # replay reconstructs the present without it.
        self._wal[shard].truncate_to(entry["position"])
        if self._journal is not None:
            # Store-then-journal: the .ckpt file exists before this record
            # commits it.  A crash in between leaves an unjournaled file,
            # pruned on resume (prune_above) — never a journaled cut whose
            # file is missing.
            self._journal.append(
                "ckpt",
                shard,
                checkpoint.version,
                entry["position"],
                dict(manifest["cursor"]),
            )
        self.checkpoints_stored += 1
        self.events.emit(
            "checkpoint_stored",
            level=logging.DEBUG,
            shard=shard,
            version=checkpoint.version,
            wire_bytes=wire_bytes,
            differential=base is not None,
        )

    def _materialize_differential(
        self, shard: int, manifest: dict, base: dict
    ) -> None:
        """Splice a differential manifest into a self-contained one.

        The worker shipped captured-history *suffixes* past the offsets in
        ``base``; the coordinator owns the previous version's materialized
        histories (:meth:`_captured_cache`, whose lengths equal those
        offsets by construction) and prepends them, re-encoding each
        component blob — so what lands in the store restores without any
        delta chain.
        """
        cache = self._captured_cache(shard)
        for component in manifest["components"]:
            transfer = decode_transfer(component["blob"])
            transfer.captured = {
                query_id: list(cache.get(query_id, ())) + list(delta)
                for query_id, delta in transfer.captured.items()
            }
            component["blob"] = encode_transfer(transfer)
        extra = pickle.loads(manifest["captured_extra"])
        manifest["captured_extra"] = pickle.dumps(
            {
                query_id: list(cache.get(query_id, ())) + list(delta)
                for query_id, delta in extra.items()
            },
            protocol=pickle.HIGHEST_PROTOCOL,
        )

    def _cancel_pending_checkpoint(self, shard: int) -> None:
        pending = self._pending_ckpt
        if pending is None:
            return
        if pending["shards"].pop(shard, None) is not None:
            self.checkpoint_failures += 1
        if not pending["shards"]:
            self._pending_ckpt = None

    def wal_span(self, shard: int) -> tuple[int, int]:
        """Retained write-ahead-log window ``(start, end)`` for a shard."""
        if not self.durable:
            raise CheckpointError("runtime is not durable: no write-ahead log")
        log = self._wal[shard]
        return log.start, log.end

    @_locked
    def heartbeat(self) -> None:
        """Non-blocking health pass: collect pipelined checkpoint and
        lifecycle replies and recover any dead worker.

        Data frames are fire-and-forget, so a worker that dies mid-stream
        is otherwise only noticed at the next synchronous RPC; drivers call
        this on batch boundaries — and, under wall-clock pacing, on a timer
        independent of data arrival (:class:`~repro.serve.drive.HeartbeatTimer`),
        so a dead worker is found during quiet periods too.
        """
        if not self._started or self._closed:
            return
        self._poll_checkpoint()
        self._poll_lifecycle()
        for shard, handle in list(self._workers.items()):
            if handle.process.exitcode is not None:
                self._recover(shard)

    # -- lifecycle -------------------------------------------------------------------

    @property
    def active_queries(self) -> list[str]:
        return list(self._query_shard)

    def shard_of(self, query_id: str) -> int:
        try:
            return self._query_shard[query_id]
        except KeyError:
            raise LifecycleError(
                f"query {query_id!r} is not registered"
            ) from None

    def shard_loads(self) -> list[int]:
        """Query counts in :meth:`shard_ids` order (positional while the
        fleet is dense; consumers that need ids use ``shard_ids``)."""
        loads = {shard: 0 for shard in self._shards}
        for shard in self._query_shard.values():
            loads[shard] += 1
        return [loads[shard] for shard in self._shards]

    def queries_on(self, shard: int) -> list[str]:
        return [
            query_id
            for query_id, owner in self._query_shard.items()
            if owner == shard
        ]

    def place(self, logical: LogicalQuery) -> int:
        """Least-loaded placement, identical to ShardedRuntime.place."""
        loads = {shard: 0 for shard in self._shards}
        for owner in self._query_shard.values():
            loads[owner] += 1
        return min(self._shards, key=lambda shard: (loads[shard], shard))

    @_locked
    def register(
        self,
        query: Union[str, LogicalQuery],
        query_id: Optional[str] = None,
        shard: Optional[int] = None,
    ) -> dict:
        """Register a query on a worker; returns the worker's summary."""
        from repro.lang.compiler import as_logical

        self._ensure_started()
        try:
            logical = as_logical(query, query_id)
        except QueryLanguageError as error:
            raise LifecycleError(str(error)) from error
        if logical.query_id in self._query_shard:
            raise LifecycleError(
                f"query {logical.query_id!r} is already registered"
            )
        for name in logical.sources():
            if name not in self.streams:
                raise LifecycleError(
                    f"query {logical.query_id!r} reads unknown source {name!r}"
                )
        if shard is None:
            shard = self.place(logical)
        elif shard not in self._shards:
            raise LifecycleError(
                f"shard {shard} out of range (live shards: {self._shards})"
            )
        result = self._rpc_recovering(shard, REGISTER, logical)
        if self.durable:
            self._wal[shard].append(("register", logical))
        self._crash_point("register", "before")
        if self._journal is not None:
            self._journal.append("register", shard, logical)
        self._crash_point("register", "after")
        self._queries[logical.query_id] = logical
        self._query_shard[logical.query_id] = shard
        self._route_cache.clear()
        self.events.emit(
            "register",
            level=logging.DEBUG,
            query=logical.query_id,
            shard=shard,
        )
        return result

    @_locked
    def unregister(self, query_id: str) -> dict:
        self._ensure_started()
        for alias, info in self._relays.items():
            if info["query_id"] == query_id:
                raise LifecycleError(
                    f"query {query_id!r} feeds exported stream {alias!r}; "
                    f"remove the export before unregistering"
                )
        shard = self.shard_of(query_id)
        result = self._rpc_recovering(shard, UNREGISTER, query_id)
        if self.durable:
            self._wal[shard].append(("unregister", query_id))
        self._crash_point("unregister", "before")
        if self._journal is not None:
            self._journal.append("unregister", shard, query_id)
        self._crash_point("unregister", "after")
        del self._query_shard[query_id]
        del self._queries[query_id]
        self._route_cache.clear()
        self._retire_schemas()
        self.events.emit(
            "unregister", level=logging.DEBUG, query=query_id, shard=shard
        )
        return result

    def _retire_schemas(self) -> None:
        """Release wire schema tokens no remaining query's sources need.

        The bugfix for the encoder pinning every schema it ever interned:
        the schemas that can still appear on the data wire are exactly the
        schemas of streams some registered query consumes (a run with no
        consumer never ships).  Tokens are monotonic and never reused, so
        a retire frame cannot alias a token still riding an earlier queued
        frame — and because the retire frame follows those frames on each
        worker's ordered queue, every in-flight run decodes before its
        token is dropped.  The respawn replay prefix is regenerated from
        the surviving internings, which is what keeps it (and the decoder
        tables) bounded under query churn instead of growing forever.
        """
        live = [
            self.streams[name].schema
            for name in {
                source
                for query in self._queries.values()
                for source in query.sources()
            }
            if name in self.streams
        ]
        frame = self._encoder.retire_schemas(live)
        if frame is None:
            return
        for handle in self._workers.values():
            handle.commands.put(frame)
        self._schema_frames = self._encoder.schema_frames()

    # -- pipelined lifecycle -----------------------------------------------------------
    #
    # The synchronous register/unregister block the coordinator for one full
    # round trip each — and on a fleet with deep data queues, "one round
    # trip" means draining everything queued in front of the command.  The
    # pipelined variants apply the PR-5 checkpoint-collection pattern to
    # lifecycle: validate on the coordinator, record the effects (catalog,
    # routing, write-ahead log) at *submit* time — which preserves
    # queue-order = log-order, the invariant recovery replay depends on —
    # ship the frame, and collect the acknowledgement later (during other
    # RPCs, on heartbeats, or at an explicit ``collect_lifecycle`` barrier).
    # Workers dedupe by seq exactly as for synchronous commands.  A worker
    # that dies with submissions outstanding is recovered normally; the
    # recovery replay re-applies the submitted commands from the log (or the
    # blank re-registration re-creates them from the catalog), so the
    # pending entries resolve as done.  Journaled runtimes fall back to the
    # synchronous path: the journal's lifecycle discipline is
    # RPC-then-journal, which pipelining would invert.

    def _submit_lifecycle(self, shard: int, kind: str, payload, label) -> int:
        handle = self._workers[shard]
        seq, frame, span = self._new_command(shard, kind, payload)
        if span is not None:
            span.attrs["pipelined"] = True
            span.finish()  # marks the submission; the ack lands later
            self.recorder.record(span)
        # Reliable path (no FrameFaults): like a checkpoint cut, a pipelined
        # lifecycle frame's queue position *is* its apply order relative to
        # the surrounding data — a dropped-then-retransmitted frame would
        # apply later than the write-ahead log recorded it.
        handle.commands.put(frame)
        entries = self._pending_cmds.setdefault(shard, OrderedDict())
        entries[seq] = {
            "seq": seq,
            "kind": kind,
            "label": label,
            "frame": frame,
            "retries": 0,
        }
        return seq

    @_locked
    def submit_register(
        self,
        query: Union[str, LogicalQuery],
        query_id: Optional[str] = None,
        shard: Optional[int] = None,
    ) -> int:
        """Pipelined :meth:`register`: validate, place, ship — no waiting.

        Returns the owning shard immediately; the worker's acknowledgement
        is collected later (:meth:`collect_lifecycle`, :meth:`heartbeat`,
        or in passing during any other RPC).  All user-facing validation
        (duplicate id, unknown source, shard range) happens here, so a
        worker-side rejection of a submitted command is a protocol bug and
        raises :class:`WorkerCommandError` at collection.
        """
        from repro.lang.compiler import as_logical

        self._ensure_started()
        try:
            logical = as_logical(query, query_id)
        except QueryLanguageError as error:
            raise LifecycleError(str(error)) from error
        if self._journal is not None:
            self.register(logical)
            return self._query_shard[logical.query_id]
        if logical.query_id in self._query_shard:
            raise LifecycleError(
                f"query {logical.query_id!r} is already registered"
            )
        for name in logical.sources():
            if name not in self.streams:
                raise LifecycleError(
                    f"query {logical.query_id!r} reads unknown source {name!r}"
                )
        if shard is None:
            shard = self.place(logical)
        elif shard not in self._shards:
            raise LifecycleError(
                f"shard {shard} out of range (live shards: {self._shards})"
            )
        self._submit_lifecycle(shard, REGISTER, logical, logical.query_id)
        if self.durable:
            self._wal[shard].append(("register", logical))
        self._queries[logical.query_id] = logical
        self._query_shard[logical.query_id] = shard
        self._route_cache.clear()
        self.events.emit(
            "register",
            level=logging.DEBUG,
            query=logical.query_id,
            shard=shard,
            pipelined=True,
        )
        return shard

    @_locked
    def submit_unregister(self, query_id: str) -> int:
        """Pipelined :meth:`unregister`; returns the shard it left."""
        self._ensure_started()
        for alias, info in self._relays.items():
            if info["query_id"] == query_id:
                raise LifecycleError(
                    f"query {query_id!r} feeds exported stream {alias!r}; "
                    f"remove the export before unregistering"
                )
        shard = self.shard_of(query_id)
        if self._journal is not None:
            self.unregister(query_id)
            return shard
        self._submit_lifecycle(shard, UNREGISTER, query_id, query_id)
        if self.durable:
            self._wal[shard].append(("unregister", query_id))
        del self._query_shard[query_id]
        del self._queries[query_id]
        self._route_cache.clear()
        self._retire_schemas()
        self.events.emit(
            "unregister",
            level=logging.DEBUG,
            query=query_id,
            shard=shard,
            pipelined=True,
        )
        return shard

    @property
    def pending_lifecycle(self) -> int:
        """Pipelined lifecycle commands shipped but not yet acknowledged."""
        return sum(len(entries) for entries in self._pending_cmds.values())

    @_locked
    def collect_lifecycle(self) -> int:
        """Block until every pipelined lifecycle command is acknowledged.

        Returns the number of commands resolved (acknowledged, or absorbed
        by a crash recovery whose replay re-applied them).  Mirrors
        :meth:`collect_checkpoints`: timeouts retransmit (duplicates are
        answered from the worker reply cache), a dead worker is recovered
        and its pending entries resolve through the replay.
        """
        collected = 0
        while True:
            pending = [
                (shard, entries)
                for shard, entries in self._pending_cmds.items()
                if entries
            ]
            if not pending:
                return collected
            shard, entries = pending[0]
            entry = next(iter(entries.values()))
            handle = self._workers[shard]
            try:
                reply = handle.replies.get(timeout=self.command_timeout)
            except queue_module.Empty:
                if handle.process.exitcode is not None:
                    # Recovery replays every submitted command from the
                    # write-ahead log (or re-creates it from the catalog),
                    # and drops this shard's pending entries — resolved.
                    collected += len(entries)
                    self._recover(shard)
                    continue
                entry["retries"] += 1
                if entry["retries"] > self.max_retries:
                    self.rpc_unreachable += 1
                    raise WorkerUnreachableError(
                        f"shard {shard} did not acknowledge pipelined "
                        f"{entry['kind']} {entry['label']!r} after "
                        f"{entry['retries']} attempts",
                        shard=shard,
                        kind=entry["kind"],
                        attempts=entry["retries"],
                    ) from None
                self.rpc_retransmissions += 1
                handle.commands.put(entry["frame"])
                continue
            reply_seq, status, result = decode_reply(reply)
            if self._resolve_lifecycle_reply(shard, reply_seq, status, result):
                collected += 1
            else:
                self._stash_checkpoint_reply(shard, reply_seq, status, result)

    def _resolve_lifecycle_reply(
        self, shard: int, reply_seq: int, status: str, result
    ) -> bool:
        entries = self._pending_cmds.get(shard)
        if not entries:
            return False
        entry = entries.pop(reply_seq, None)
        if entry is None:
            return False
        if status != OK:
            # Pipelined commands are fully pre-validated on the coordinator
            # and their catalog/log effects were recorded at submit time — a
            # worker-side rejection means the two sides disagree about the
            # plan state, which is a protocol bug, not a rollbackable user
            # error.
            raise WorkerCommandError(
                f"shard {shard} rejected pipelined {entry['kind']} "
                f"{entry['label']!r}: {result}"
            )
        return True

    def _poll_lifecycle(self) -> None:
        """Non-blocking sweep for pipelined lifecycle acknowledgements."""
        for shard, entries in list(self._pending_cmds.items()):
            if not entries:
                continue
            handle = self._workers.get(shard)
            if handle is None:
                continue
            while entries:
                try:
                    reply = handle.replies.get_nowait()
                except queue_module.Empty:
                    break
                reply_seq, status, result = decode_reply(reply)
                if not self._resolve_lifecycle_reply(
                    shard, reply_seq, status, result
                ):
                    self._stash_checkpoint_reply(
                        shard, reply_seq, status, result
                    )

    def _cancel_pending_lifecycle(self, shard: int) -> None:
        """Forget a dead worker's pending submissions (recovery owns them).

        Their effects were recorded (catalog + write-ahead log) at submit
        time, so the durable replay re-applies them and the non-durable
        blank re-registration re-creates them — the replies themselves will
        never arrive.
        """
        self._pending_cmds.pop(shard, None)

    @_locked
    def reoptimize(self, shard: Optional[int] = None) -> list[dict]:
        self._ensure_started()
        if shard is not None:
            results = [self._rpc_recovering(shard, REOPTIMIZE)]
            shards = [shard]
        else:
            fanned = self._rpc_fanout(
                REOPTIMIZE, {index: None for index in self._shards}
            )
            shards = list(self._shards)
            results = [fanned[index] for index in shards]
        for index in shards:
            if self.durable:
                self._wal[index].append(("reoptimize", None))
            if self._journal is not None:
                self._journal.append("reoptimize", index)
        return results

    @_locked
    def ping(self) -> dict[int, dict]:
        """Probe every worker's command loop (pipelined ``ping`` fan-out).

        Unlike :meth:`heartbeat`, which only notices a worker whose
        *process* exited, a ping round also detects a hung worker — alive
        but no longer serving its queue — surfacing it as
        :class:`~repro.errors.WorkerUnreachableError` once the retry budget
        is exhausted.  A dead worker found by the probe is recovered like
        any other RPC crash.  Returns shard → worker info (the ``hello``
        reply shape: incarnation, applied seq, cursor, active queries).
        """
        self._ensure_started()
        return self._rpc_fanout(PING, {shard: None for shard in self._shards})

    # -- rebalance -------------------------------------------------------------------

    @_locked
    def rebalance(self, query_id: str, to_shard: int) -> list[str]:
        """Move ``query_id``'s component to ``to_shard``, state intact.

        Returns the moved query ids.  On *any* import failure — a worker
        error reply or the receiver dying mid-import — the component is
        restored onto the donor (state included) before the error is
        re-raised, so the runtime never stops serving a registered query.
        """
        self._ensure_started()
        if to_shard not in self._shards:
            raise LifecycleError(
                f"shard {to_shard} out of range (live shards: {self._shards})"
            )
        from_shard = self.shard_of(query_id)
        if from_shard == to_shard:
            raise LifecycleError(
                f"query {query_id!r} already lives on shard {to_shard}"
            )
        with self._traced(
            "rebalance", query=query_id, source=from_shard, target=to_shard
        ):
            # Flush bridge traffic first: the export drops the donor's
            # relay taps, and dropped runs are only safe once collected
            # and journaled.
            self._drain_relays()
            try:
                exported = self._rpc(from_shard, REBALANCE, ("out", query_id))
            except WorkerCrashError:
                # The donor died exporting.  No export entry was logged (the
                # reply never arrived), so durable recovery restores the
                # component onto the donor with state intact; without
                # durability the respawn re-registers its queries blank.
                report = self._recover(from_shard)
                detail = (
                    "its queries were re-registered in place (state lost)"
                    if report.state_lost
                    else "its component was restored in place from checkpoint "
                    "+ log replay, state intact"
                )
                raise LifecycleError(
                    f"shard {from_shard} crashed during export; {detail}"
                ) from None
            blob = exported["blob"]
            moved_relays = {
                alias: info
                for alias, info in self._relays.items()
                if info["query_id"] in set(exported["queries"])
            }
            self._crash_point("rebalance-mid", "before")
            try:
                self._rpc(to_shard, REBALANCE, ("in", blob))
            except WorkerCrashError:
                self._recover(to_shard)
                self._rpc(from_shard, REBALANCE, ("in", blob))
                for alias, info in moved_relays.items():
                    self._install_relay_tap(
                        from_shard, alias, info["collected"]
                    )
                self._route_cache.clear()
                raise LifecycleError(
                    f"shard {to_shard} crashed during rebalance import; "
                    f"component restored on shard {from_shard}"
                ) from None
            except WorkerCommandError:
                self._rpc(from_shard, REBALANCE, ("in", blob))
                for alias, info in moved_relays.items():
                    self._install_relay_tap(
                        from_shard, alias, info["collected"]
                    )
                self._route_cache.clear()
                raise
            # Exports ride with their producers: re-tap on the recipient at
            # the collected watermark (the drain above made it exact).
            for alias, info in moved_relays.items():
                self._install_relay_tap(to_shard, alias, info["collected"])
            if self.durable:
                # A rolled-back rebalance is a net no-op and records nothing;
                # a successful one is two log entries: the component leaves
                # the donor's timeline and enters the receiver's, blob
                # included — replaying either shard reproduces the move
                # exactly.
                self._wal[from_shard].append(("export", query_id))
                self._wal[to_shard].append(("import", blob))
                for alias, info in moved_relays.items():
                    self._wal[from_shard].append(("relay-untap", alias))
                    self._wal[to_shard].append(
                        ("relay-tap", alias, info["collected"])
                    )
            if self._journal is not None:
                self._journal.append(
                    "rebalance",
                    query_id,
                    from_shard,
                    to_shard,
                    list(exported["queries"]),
                    blob,
                    {
                        alias: info["collected"]
                        for alias, info in moved_relays.items()
                    },
                )
            for moved_id in exported["queries"]:
                self._query_shard[moved_id] = to_shard
            self._route_cache.clear()
            self.rebalances += 1
            self.events.emit(
                "rebalance",
                query=query_id,
                source=from_shard,
                target=to_shard,
                moved=len(exported["queries"]),
            )
            return list(exported["queries"])

    # -- elastic scale-out -------------------------------------------------------------

    @_locked
    def add_worker(self, policy=None) -> int:
        """Grow the fleet by one worker mid-serve; returns its shard id.

        The new shard spawns with the full schema-frame history replayed
        (so in-flight streams decode immediately) and starts empty; pass a
        :class:`~repro.shard.policy.RebalancePolicy` to let its
        :meth:`~repro.shard.policy.RebalancePolicy.on_grow` hook move
        components onto the newcomer in the same call.
        """
        self._ensure_started()
        shard = self._next_shard
        self._next_shard += 1
        with self._traced("scale_up", shard=shard):
            self._shards.append(shard)
            self._shipped[shard] = {}
            if self._wal is not None:
                self._wal[shard] = ShardLog()
            if self._journal is not None:
                # Journal-then-spawn: a crash in between leaves a journaled
                # shard with no live worker, which resume respawns (empty
                # log → empty worker) — never a live worker the journal
                # does not know about.
                self._journal.append("add_worker", shard)
            handle = self._spawn(shard)
            self._workers[shard] = handle
            for frame in self._schema_frames:
                handle.commands.put(frame)
            self._route_cache.clear()
            self.events.emit(
                "scale_up",
                message=(
                    f"shard {shard} joined (fleet now {self.n_shards} "
                    f"workers)"
                ),
                shard=shard,
                n_shards=self.n_shards,
            )
            if policy is not None:
                for query_id, target in policy.on_grow(self, shard):
                    if self.shard_of(query_id) != target:
                        self.rebalance(query_id, target)
        return shard

    @_locked
    def remove_worker(self, shard: int, policy=None) -> dict:
        """Retire a worker mid-serve with zero query loss.

        Every component on the departing shard is drained first — copied
        non-destructively (``rebalance("copy")``), imported on a surviving
        shard (the policy's
        :meth:`~repro.shard.policy.RebalancePolicy.on_shrink` chooses the
        target, defaulting to least-loaded), then retired on the donor —
        before the worker is stopped and its id removed from the fleet
        (ids are never reused).  Returns ``{"shard", "moved"}``.
        """
        self._ensure_started()
        if shard not in self._shards:
            raise LifecycleError(
                f"shard {shard} out of range (live shards: {self._shards})"
            )
        if self.n_shards <= 1:
            raise LifecycleError("cannot remove the last worker")
        for alias, info in self._relays.items():
            if self._query_shard.get(info["query_id"]) == shard:
                raise LifecycleError(
                    f"shard {shard} owns the producer of exported stream "
                    f"{alias!r}; rebalance {info['query_id']!r} away before "
                    f"removing the worker"
                )
        moved: list[str] = []
        with self._traced("scale_down", shard=shard):
            while True:
                resident = [
                    query_id
                    for query_id, owner in self._query_shard.items()
                    if owner == shard
                ]
                if not resident:
                    break
                query_id = resident[0]
                target = None
                if policy is not None:
                    target = policy.on_shrink(self, shard, query_id)
                if target is None or target == shard or target not in self._shards:
                    survivors = [s for s in self._shards if s != shard]
                    loads = {s: 0 for s in survivors}
                    for owner in self._query_shard.values():
                        if owner in loads:
                            loads[owner] += 1
                    target = min(survivors, key=lambda s: (loads[s], s))
                moved.extend(self._migrate_copy(query_id, target))
            # A snapshot in flight on the departing worker will never be
            # collected; its round proceeds without it.
            self._cancel_pending_checkpoint(shard)
            # The retiring worker's cumulative counters (it owned the
            # drained queries' whole output history) fold into the
            # coordinator's accumulator — and into the journal, so they
            # also survive a coordinator restart.
            departing_stats = self._rpc_recovering(shard, STATS)
            self._retired_stats.absorb(departing_stats)
            if self._journal is not None:
                self._journal.append("remove_worker", shard, departing_stats)
            handle = self._workers.pop(shard)
            self._stop_handle(handle)
            self._shards.remove(shard)
            self._shipped.pop(shard, None)
            if self._wal is not None:
                self._wal.pop(shard, None)
            self._spawned.pop(shard, None)
            self._worker_faults.pop(shard, None)
            self._ckpt_captured.pop(shard, None)
            self._route_cache.clear()
            self.events.emit(
                "scale_down",
                message=(
                    f"shard {shard} retired, {len(moved)} queries drained "
                    f"(fleet now {self.n_shards} workers)"
                ),
                shard=shard,
                moved=len(moved),
                n_shards=self.n_shards,
            )
        return {"shard": shard, "moved": moved}

    def _migrate_copy(self, query_id: str, to_shard: int) -> list[str]:
        """Move a component by non-destructive copy (the drain transport).

        Copy is side-effect-free on the donor, so a worker crash on either
        side mid-migration is recovered and the whole migration retried
        from scratch — the component is never in a half-moved state.
        """
        for attempt in (0, 1):
            try:
                return self._migrate_copy_once(query_id, to_shard)
            except WorkerCrashError:
                if attempt:
                    raise
                self.heartbeat()  # recovers whichever side died
        raise AssertionError("unreachable")

    def _migrate_copy_once(self, query_id: str, to_shard: int) -> list[str]:
        from_shard = self.shard_of(query_id)
        with self._traced(
            "rebalance:copy", query=query_id, source=from_shard,
            target=to_shard,
        ):
            copied = self._rpc(from_shard, REBALANCE, ("copy", query_id))
            blob = copied["blob"]
            self._crash_point("rebalance-mid", "before")
            self._rpc(to_shard, REBALANCE, ("in", blob))
            # The donor's live copy retires query by query, history purged:
            # the receiver's imported copy owns the captured histories now.
            for moved_id in copied["queries"]:
                self._rpc(
                    from_shard,
                    UNREGISTER,
                    {"query_id": moved_id, "purge_captured": True},
                )
            if self.durable:
                # The write-ahead effect of a completed drain is identical
                # to a destructive rebalance: the component leaves the
                # donor's timeline and enters the receiver's.
                self._wal[from_shard].append(("export", query_id))
                self._wal[to_shard].append(("import", blob))
            if self._journal is not None:
                self._journal.append(
                    "rebalance",
                    query_id,
                    from_shard,
                    to_shard,
                    list(copied["queries"]),
                    blob,
                )
            for moved_id in copied["queries"]:
                self._query_shard[moved_id] = to_shard
            self._route_cache.clear()
            self.rebalances += 1
            self.events.emit(
                "rebalance",
                query=query_id,
                source=from_shard,
                target=to_shard,
                moved=len(copied["queries"]),
                mode="copy",
            )
            return list(copied["queries"])

    # -- cross-shard derived channels (relay exports) ----------------------------------

    @_locked
    def export_stream(
        self,
        query_id: str,
        alias: str,
        sharable_label: Optional[str] = None,
    ) -> StreamDef:
        """Re-emit ``query_id``'s output channel as derived source ``alias``.

        The owning worker mints the alias stream/channel in its id-space
        and taps the query's sink; every other worker adopts the alias as
        a plain source.  From then on each batch boundary collects the
        tap's pending runs over the relay wire and re-emits them to the
        alias's consuming shards — queries on *any* shard can read the
        exported query's output, which is what lets the planner split an
        entry-channel connected component across workers.

        RPC-then-journal, like register: a coordinator crash in between
        leaves a tap the journal never committed, rolled back by re-adopt
        reconciliation.
        """
        self._ensure_started()
        if alias in self.streams:
            raise LifecycleError(f"stream name {alias!r} is already in use")
        owner = self.shard_of(query_id)
        edge = self._next_relay_edge
        made = self._rpc_recovering(
            owner,
            RELAY_TAP,
            {
                "alias": alias,
                "query_id": query_id,
                "make": True,
                "sharable_label": sharable_label,
                "cursor": 0,
            },
        )
        stream, channel = made["stream"], made["channel"]
        for shard in self._shards:
            if shard == owner:
                continue
            self._rpc_recovering(
                shard,
                RELAY_TAP,
                {
                    "alias": alias,
                    "query_id": None,
                    "stream": stream,
                    "channel": channel,
                    "cursor": 0,
                },
            )
        if self.durable:
            self._wal[owner].append(("relay-tap", alias, 0))
        self._crash_point("relay", "before")
        if self._journal is not None:
            self._journal.append(
                "relay", alias, query_id, owner, stream, channel, edge
            )
        self._crash_point("relay", "after")
        self._next_relay_edge = edge + 1
        self.streams[alias] = stream
        self._channels[alias] = channel
        self._source_labels[alias] = sharable_label
        self._relays[alias] = {
            "query_id": query_id,
            "edge": edge,
            "collected": 0,
        }
        self._route_cache.clear()
        self.events.emit(
            "export_stream",
            level=logging.DEBUG,
            alias=alias,
            query=query_id,
            shard=owner,
        )
        return stream

    def exported_streams(self) -> dict[str, str]:
        """Live exports: alias → producing query id."""
        return {
            alias: info["query_id"] for alias, info in self._relays.items()
        }

    def _install_relay_tap(self, shard: int, alias: str, cursor: int) -> None:
        """(Re)install an export's tap on a respawned or recipient worker."""
        info = self._relays.get(alias)
        self._rpc(
            shard,
            RELAY_TAP,
            {
                "alias": alias,
                "query_id": info["query_id"] if info is not None else None,
                "stream": self.streams[alias],
                "channel": self._channels[alias],
                "cursor": cursor,
            },
        )

    def _drain_relays(self) -> None:
        """Collect every export's pending runs and re-emit them downstream.

        Loops until quiescent: a relayed run can itself drive an exported
        query on another shard (chained bridges), whose new output must
        flow in the same drain.  Each collect acknowledges the journaled
        ``collected`` watermark — the worker prunes runs at or below it and
        returns the unacknowledged suffix, so a coordinator that crashed
        after journaling but before shipping re-collects exactly the runs
        it already owns (the skip below discards the journaled prefix).
        """
        if not self._relays:
            return
        progress = True
        while progress:
            progress = False
            for alias, info in list(self._relays.items()):
                owner = self._query_shard[info["query_id"]]
                reply = self._rpc_recovering(
                    owner,
                    COLLECT_RELAY,
                    {
                        "alias": alias,
                        "edge": info["edge"],
                        "ack": info["collected"],
                        "columnar": self.data_plane == "columnar",
                    },
                )
                skip = info["collected"] - reply["start"]
                if skip < 0:
                    raise ChannelError(
                        f"relay {alias!r} cursor regressed: worker retained "
                        f"from {reply['start']} but coordinator already "
                        f"collected {info['collected']}"
                    )
                codec = RelayCodec(
                    info["edge"],
                    self._channels[alias],
                    columnar=self.data_plane == "columnar",
                )
                rows: list[StreamTuple] = []
                for __, batch in decode_local_frames(reply["frames"], codec):
                    batch_rows = relay_rows(batch)
                    if skip:
                        if skip >= len(batch_rows):
                            skip -= len(batch_rows)
                            continue
                        batch_rows = batch_rows[skip:]
                        skip = 0
                    rows.extend(batch_rows)
                if rows:
                    progress = True
                    self._emit_relay(alias, rows)

    def _emit_relay(self, alias: str, rows: list) -> None:
        """Journal-then-ship one alias's collected rows to its consumers.

        Mirrors :meth:`process_batch`'s chunk loop, except relayed tuples
        are derived traffic: they advance the export's ``collected``
        watermark and the consumer WALs, never ``input_positions`` or the
        coordinator's input accounting.
        """
        info = self._relays[alias]
        shards = self._consumers_of(alias)
        start = 0
        while start < len(rows):
            chunk = rows[start : start + self.max_batch]
            start += self.max_batch
            self._crash_point("rbatch", "before")
            if self._journal is not None:
                self._journal.append("rbatch", alias, chunk, list(shards))
            self._crash_point("rbatch", "after")
            if self.durable:
                for shard in shards:
                    self._wal[shard].append(("data", alias, chunk))
            info["collected"] += len(chunk)
            if shards:
                self._ship_run(alias, chunk, shards)
        self.relayed_events += len(rows)

    # -- event processing ------------------------------------------------------------

    def _consumers_of(self, stream_name: str) -> tuple[int, ...]:
        shards = self._route_cache.get(stream_name)
        if shards is None:
            if stream_name not in self.streams:
                raise LifecycleError(f"unknown source stream {stream_name!r}")
            consuming: set[int] = set()
            for query_id, shard in self._query_shard.items():
                if stream_name in self._queries[query_id].sources():
                    consuming.add(shard)
            shards = tuple(sorted(consuming))
            self._route_cache[stream_name] = shards
        return shards

    def process(self, stream_name: str, tuple_: StreamTuple) -> RunStats:
        return self.process_batch(stream_name, [tuple_])

    @_locked
    def process_batch(
        self, stream_name: str, tuples: Sequence[StreamTuple]
    ) -> RunStats:
        """Ship a run of source events to every consuming worker.

        Fire-and-forget: data frames pipeline behind earlier commands on
        each worker's queue, so lifecycle changes still land on batch
        boundaries.  The returned stats carry coordinator-side input
        accounting only — per-query outputs accumulate in the workers and
        surface through :meth:`collect_stats` / :attr:`captured`.

        Durable runtimes record each shipped run in the consuming shards'
        write-ahead logs, and batch boundaries double as the checkpoint
        schedule: every ``checkpoint_every`` batches a new round is
        initiated, with earlier rounds' snapshot replies collected
        non-blockingly along the way.
        """
        shards = self._consumers_of(stream_name)
        batch_stats = RunStats()
        batch_stats.input_events = len(tuples)
        batch_stats.physical_input_events = len(tuples)
        self.input_stats.absorb(batch_stats)
        if not tuples or not shards:
            if tuples and self._journal is not None:
                # No consumer yet, but the journal must still account the
                # input so a resumed driver skips the same prefix.
                self._journal.append("advance", stream_name, len(tuples))
            return batch_stats
        self._ensure_started()
        self._poll_checkpoint()
        start = 0
        while start < len(tuples):
            chunk = list(tuples[start : start + self.max_batch])
            start += self.max_batch
            final = start >= len(tuples)
            # Journal-before-ship: once a chunk is on any worker queue it
            # will be absorbed, so the journal must already own it.  A
            # crash between append and ship merely re-ships on resume.
            self._crash_point("batch", "before")
            if self._journal is not None:
                self._journal.append(
                    "batch", stream_name, chunk, list(shards), final
                )
            self._crash_point("batch", "after")
            if self.durable:
                for shard in shards:
                    self._wal[shard].append(("data", stream_name, chunk))
            self._ship_run(stream_name, chunk, shards)
        # Bridge traffic flows on batch boundaries: collect every export's
        # pending output and re-emit it to consuming shards before the
        # checkpoint trigger (cuts require quiescent relays).
        self._drain_relays()
        self._batches += 1
        if self.checkpoint_every and self._batches % self.checkpoint_every == 0:
            self._initiate_checkpoint()
        return batch_stats

    def _ship_run(
        self, stream_name: str, chunk: Sequence[StreamTuple], shards,
        count: bool = True,
    ) -> None:
        """Encode one run and put its frames on the target shards' queues.

        ``count=False`` re-ships without advancing the shipped counters —
        used by re-adoption to close a worker's delivery deficit whose
        events the journal already counted.

        Columnar plane: the run is packed once into schema-interned
        columns and written into each consuming worker's shared-memory
        ring, announced by a ``ring`` marker on that worker's ordered
        queue (the marker is the ordering edge, so ring records interleave
        safely with lifecycle frames and queue fallbacks).  A shard whose
        ring is full, missing, or too small for the record receives the
        same columns as a ``crun`` queue frame; a run that cannot pack at
        all (mixed schema objects, oversized mask) ships on the legacy
        pickle wire.  All three transports are byte-identical at the sink.
        """
        stream = self.streams[stream_name]
        channel = self._channels[stream_name]
        bit = 1 << channel.position_of(stream)
        trace = None
        if self.recorder is not None:
            span = self.recorder.start(
                "ship:run",
                self.trace_id,
                self._span_stack[-1] if self._span_stack else None,
                stream=stream_name,
                count=len(chunk),
                shards=list(shards),
            )
            trace = (self.trace_id, span.span_id)
            span.finish()  # ship is enqueue-only; the span marks lineage
            self.recorder.record(span)
        batch = (
            ColumnBatch.from_rows(stream.schema, chunk, bit)
            if self.data_plane == "columnar"
            else None
        )
        if batch is not None:
            frames = self._encoder.encode_run_columns(
                channel, batch, trace=trace
            )
            crun = frames[-1]
            for frame in frames[:-1]:
                # Broadcast + record, so respawned workers can replay
                # the interning state before their first run frame.
                self._schema_frames.append(frame)
                for handle in self._workers.values():
                    handle.commands.put(frame)
            parts = total = None
            for shard in shards:
                handle = self._workers[shard]
                ring = handle.ring
                shipped = False
                if ring is not None:
                    if parts is None:
                        parts, total = pack_run_record(
                            channel.channel_id, crun[2], batch
                        )
                    if ring.try_write(parts, total):
                        marker = (
                            (RING, total)
                            if trace is None
                            else (RING, total, trace)
                        )
                        handle.commands.put(marker)
                        shipped = True
                if not shipped:
                    handle.commands.put(crun)
        else:
            encoded = [ChannelTuple(tuple_, bit) for tuple_ in chunk]
            for frame in self._encoder.encode_run(
                channel, encoded, trace=trace
            ):
                if frame[0] == SCHEMA:
                    self._schema_frames.append(frame)
                    for handle in self._workers.values():
                        handle.commands.put(frame)
                else:
                    for shard in shards:
                        self._workers[shard].commands.put(frame)
        if count:
            for shard in shards:
                counts = self._shipped[shard]
                counts[stream_name] = counts.get(stream_name, 0) + len(chunk)

    # -- introspection ---------------------------------------------------------------

    @_locked
    def shard_stats(self, pipelined: bool = True) -> list[RunStats]:
        """Per-worker cumulative RunStats (a batch barrier).

        The barrier is pipelined by default — all ``stats`` frames ship
        before any reply is awaited, so the fan costs the slowest worker's
        round trip, not the sum.  ``pipelined=False`` keeps the historical
        serial fan (one blocking RPC per shard, in order); the serve
        benchmark measures the two against each other.
        """
        self._ensure_started()
        if not pipelined:
            return [
                self._rpc_recovering(shard, STATS) for shard in self._shards
            ]
        results = self._rpc_fanout(STATS, {s: None for s in self._shards})
        return [results[shard] for shard in self._shards]

    def collect_stats(self) -> RunStats:
        """Aggregate statistics with single-counted inputs.

        Worker counters sum (queries are disjoint across shards); input
        events come from the coordinator's own accounting so replicated
        streams count once, matching ``ShardedRuntime.stats``.
        """
        merged = RunStats()
        for stats in self.shard_stats():
            merged.absorb(stats)
        # Workers retired by elastic shrink took their counters with them;
        # the coordinator keeps their final stats so aggregates match a
        # fleet that never resized.
        merged.absorb(self._retired_stats)
        merged.input_events = self.input_stats.input_events
        merged.physical_input_events = self.input_stats.physical_input_events
        return merged

    @_locked
    def shard_telemetry(self) -> list[dict]:
        """Per-worker telemetry view via the extended ``stats`` RPC:
        ``{"shard", "mop_stats", "query_heat", "peak_state", "stats",
        "state_size"}``, the same shape as
        :meth:`~repro.shard.runtime.ShardedRuntime.shard_telemetry`.  When
        observing, each worker's accumulated spans ride the reply and are
        merged into the coordinator's recorder, completing the trace tree."""
        self._ensure_started()
        views = []
        replies = self._rpc_fanout(
            STATS, {shard: {"telemetry": True} for shard in self._shards}
        )
        for shard in self._shards:
            reply = replies[shard]
            if self.recorder is not None and reply.get("spans"):
                self.recorder.add(reply["spans"])
            views.append(
                {
                    "shard": shard,
                    "mop_stats": reply["mop_stats"],
                    "query_heat": reply["query_heat"],
                    "peak_state": reply["peak_state"],
                    "stats": reply["stats"],
                    "state_size": reply["state_size"],
                }
            )
        return views

    def metrics_registry(self):
        """A fresh :class:`~repro.obs.metrics.MetricsRegistry` holding the
        cluster view: per-shard RunStats counters, per-m-op records (when
        observing), and the coordinator's own lifecycle counters."""
        from repro.obs.metrics import MetricsRegistry, publish_run_stats
        from repro.obs.mops import MOpObserver

        registry = MetricsRegistry()
        for view in self.shard_telemetry():
            shard = view["shard"]
            publish_run_stats(registry, view["stats"], shard=shard)
            if view["mop_stats"]:
                # Rebuild an observer-shaped view from the worker's exported
                # records; publishing it mirrors the in-process path.
                observer = MOpObserver()
                observer.absorb(view["mop_stats"])
                observer.peak_state = view["peak_state"]
                observer.publish(registry, shard=shard)
        registry.counter("rumor_rebalances_total").inc(self.rebalances)
        registry.counter("rumor_recoveries_total").inc(self.crash_recoveries)
        registry.counter("rumor_checkpoints_stored_total").inc(
            self.checkpoints_stored
        )
        registry.counter("rumor_checkpoint_failures_total").inc(
            self.checkpoint_failures
        )
        registry.counter("rumor_rpc_retransmissions_total").inc(
            self.rpc_retransmissions
        )
        registry.counter("rumor_rpc_unreachable_total").inc(
            self.rpc_unreachable
        )
        registry.counter("rumor_checkpoint_wire_bytes_total").inc(
            self.checkpoint_wire_bytes
        )
        return registry

    @_locked
    def snapshot(self) -> list[dict]:
        """Per-worker observability snapshot (captured outputs, state size,
        active queries, migrations, plan size).  Pipelined fan-out."""
        self._ensure_started()
        results = self._rpc_fanout(SNAPSHOT, {s: None for s in self._shards})
        return [results[shard] for shard in self._shards]

    @_locked
    def component_queries(self, query_id: str) -> list[str]:
        """Every query that would move with ``query_id`` (one worker RPC)."""
        self._ensure_started()
        shard = self.shard_of(query_id)
        result = self._rpc_recovering(
            shard, SNAPSHOT, {"component_of": query_id}
        )
        return result["component"]

    @property
    def captured(self) -> dict:
        """query_id -> captured outputs, merged across workers."""
        merged: dict = {}
        for entry in self.snapshot():
            merged.update(entry["captured"])
        return merged

    @property
    def state_size(self) -> int:
        return sum(entry["state_size"] for entry in self.snapshot())

    def input_positions(self) -> dict:
        """Per-stream journaled input positions (events absorbed so far).

        Resume drivers use this to skip the already-served prefix of each
        source stream; requires a coordinator journal.
        """
        if self._journal is None:
            raise JournalError(
                "input_positions requires a coordinator journal"
            )
        return dict(self._journal.state.input_positions)

    @property
    def lifecycle_ops(self) -> int:
        """Count of journaled lifecycle operations (register/unregister)."""
        if self._journal is None:
            return 0
        return self._journal.state.lifecycle_ops

    def describe(self) -> str:
        lines = [
            f"ProcessShardedRuntime: {len(self._query_shard)} active queries "
            f"over {self.n_shards} worker processes, "
            f"loads={self.shard_loads()}, rebalances={self.rebalances}, "
            f"recoveries={self.crash_recoveries}"
        ]
        if self.durable:
            spans = [self.wal_span(shard) for shard in self._shards]
            lines.append(
                f"   durable: checkpoint_every={self.checkpoint_every} "
                f"batches, {self.checkpoints_stored} checkpoints stored "
                f"({self.checkpoint_failures} failures), wal spans={spans}"
            )
        for shard, entry in zip(self.shard_ids(), self.snapshot()):
            handle = self._workers[shard]
            lines.append(
                f"-- shard {shard} (pid {handle.process.pid}, incarnation "
                f"{handle.incarnation}) --"
            )
            lines.append(
                f"   queries={entry['active_queries']} "
                f"mops={entry['mops']} state={entry['state_size']} "
                f"migrations={entry['migrations']}"
            )
        return "\n".join(lines)
