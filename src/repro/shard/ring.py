"""Single-producer single-consumer shared-memory ring buffers.

The columnar data plane ships packed run records (:func:`~repro.shard.wire.
pack_run_record`) through one ring per worker instead of pickling them onto
the ``multiprocessing`` command queue.  The ring is a plain byte arena in
anonymous shared memory (``RawArray``), inherited by the worker at fork —
record bytes are copied exactly once into the arena by the coordinator and
once out by the worker, with no serialization in between.

Ordering is **not** the ring's job: every record is announced by a
``("ring", nbytes)`` marker on the worker's ordered command queue, and the
queue put is both the ordering edge and the memory barrier (the record
bytes are fully written before the marker is enqueued, so the consumer that
dequeues the marker observes them).  The head/tail counters only manage
space reclamation — the writer never overwrites bytes the reader has not
consumed, and the reader frees space by advancing ``head`` after each
record.  Both counters are monotonic 8-byte values with a single writer
each, which is the classic SPSC discipline.

Backpressure: a full ring makes the writer wait briefly for the reader to
drain; if space does not appear (slow or dead reader), :meth:`try_write`
returns False and the caller falls back to shipping the frame over the
queue — marker ordering makes the two transports freely interleavable.
"""

from __future__ import annotations

import time
from multiprocessing import RawArray, RawValue

#: Default per-worker ring capacity (bytes).  Sized for several max_batch
#: runs of wide int columns; records that exceed the whole arena fall back
#: to the queue transport.
DEFAULT_RING_CAPACITY = 1 << 22


class RingBuffer:
    """A byte ring in fork-inherited shared memory (one producer, one
    consumer; ordering and record framing live on the command queue)."""

    def __init__(self, capacity: int = DEFAULT_RING_CAPACITY):
        self.capacity = capacity
        self._arena = RawArray("B", capacity)
        self._view = memoryview(self._arena).cast("B")
        #: Bytes consumed (reader-owned) / produced (writer-owned); both
        #: monotonic, positions are taken modulo capacity.
        self._head = RawValue("Q", 0)
        self._tail = RawValue("Q", 0)

    def __getstate__(self):
        state = self.__dict__.copy()
        # The memoryview cannot pickle; fork shares the arena itself, and
        # a spawn-style pickle round trip rebuilds the view lazily.
        state.pop("_view", None)
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._view = memoryview(self._arena).cast("B")

    @property
    def used(self) -> int:
        return self._tail.value - self._head.value

    @property
    def free(self) -> int:
        return self.capacity - self.used

    def try_write(self, parts, total: int, wait_seconds: float = 0.05) -> bool:
        """Copy ``parts`` (bytes/memoryview pieces summing to ``total``)
        into the ring as one record.  Returns False without writing when
        the reader does not free enough space within ``wait_seconds`` —
        the caller then ships the same payload over the queue instead.
        """
        if total > self.capacity:
            return False
        deadline = None
        while self.capacity - (self._tail.value - self._head.value) < total:
            if deadline is None:
                deadline = time.monotonic() + wait_seconds
            elif time.monotonic() >= deadline:
                return False
            time.sleep(0.0002)
        view = self._view
        capacity = self.capacity
        position = self._tail.value % capacity
        for part in parts:
            if isinstance(part, memoryview):
                piece = part
            else:
                piece = memoryview(part)
            remaining = piece.nbytes
            offset = 0
            while remaining:
                span = min(remaining, capacity - position)
                view[position : position + span] = piece[offset : offset + span]
                position = (position + span) % capacity
                offset += span
                remaining -= span
        # Publish after the copy: the reader only trusts bytes the paired
        # queue marker announces, so tail is purely a space accounting.
        self._tail.value += total
        return True

    def read(self, nbytes: int) -> bytes:
        """Consume one record of ``nbytes`` (announced by a queue marker).

        The marker guarantees the bytes are present; no waiting happens
        here.  Returns an owned bytes copy — ring space is reclaimed
        immediately, so callers may hold the record as long as they like.
        """
        if nbytes > self.capacity:
            raise ValueError(
                f"ring record of {nbytes} bytes exceeds capacity "
                f"{self.capacity}"
            )
        view = self._view
        capacity = self.capacity
        position = self._head.value % capacity
        first = min(nbytes, capacity - position)
        if first == nbytes:
            record = bytes(view[position : position + nbytes])
        else:
            record = bytes(view[position:capacity]) + bytes(
                view[: nbytes - first]
            )
        self._head.value += nbytes
        return record
