"""Sharded parallel execution on top of the batched engine.

The optimizer's output — one shared m-op plan — decomposes into
**entry-channel connected components**: maximal subgraphs connected through
any channel.  Components share nothing, so they are the safe unit of
parallel placement (queries sharing any m-op necessarily co-locate).  This
package partitions a plan along those lines (:class:`ShardPlanner`), runs
one batched engine per shard — on ``multiprocessing`` workers where the
platform allows, inline otherwise (:class:`ShardedEngine`) — and extends
the online lifecycle across shards with state-preserving component
rebalancing (:class:`ShardedRuntime`).
"""

from repro.shard.checkpoint import (
    CheckpointStore,
    ComponentCheckpoint,
    RecoveryReport,
    ShardCheckpoint,
    ShardLog,
)
from repro.shard.engine import ShardedEngine, SourceRouter, fork_available
from repro.shard.planner import ShardComponent, ShardPlan, ShardPlanner
from repro.shard.policy import QueryCountPolicy, RebalancePolicy, ThroughputPolicy
from repro.shard.proc import (
    FrameFaults,
    ProcessShardedRuntime,
    WorkerCrashError,
    WorkerFaults,
)
from repro.shard.runtime import ShardedRuntime
from repro.shard.stats import ShardedRunStats, merge_run_stats
from repro.shard.wire import WireDecoder, WireEncoder

__all__ = [
    "CheckpointStore",
    "ComponentCheckpoint",
    "FrameFaults",
    "ProcessShardedRuntime",
    "QueryCountPolicy",
    "RebalancePolicy",
    "RecoveryReport",
    "ShardCheckpoint",
    "ShardComponent",
    "ShardLog",
    "ShardPlan",
    "ShardPlanner",
    "ShardedEngine",
    "ShardedRunStats",
    "ShardedRuntime",
    "SourceRouter",
    "ThroughputPolicy",
    "WireDecoder",
    "WireEncoder",
    "WorkerCrashError",
    "WorkerFaults",
    "fork_available",
    "merge_run_stats",
]
