"""Sharded parallel execution on top of the batched engine.

The optimizer's output — one shared m-op plan — decomposes into
**entry-channel connected components**: maximal subgraphs connected through
any channel.  Components share nothing, so they are the safe unit of
parallel placement (queries sharing any m-op necessarily co-locate).  This
package partitions a plan along those lines (:class:`ShardPlanner`), runs
one batched engine per shard — on ``multiprocessing`` workers where the
platform allows, inline otherwise (:class:`ShardedEngine`) — and extends
the online lifecycle across shards with state-preserving component
rebalancing (:class:`ShardedRuntime`).

The process-mode runtime (:class:`ProcessShardedRuntime`) adds cluster-grade
durability on top: per-shard write-ahead logs and versioned checkpoints
(:class:`CheckpointStore`) recover crashed workers, a coordinator journal
(:class:`CoordinatorLog`) makes the coordinator itself restartable — cold
start from disk or re-adoption of still-live workers
(:class:`CoordinatorHandoff`) — and the fleet resizes mid-serve
(``add_worker`` / ``remove_worker``) with checkpoint/restore as the drain
transport.
"""

from repro.errors import (
    CoordinatorCrashError,
    JournalError,
    WorkerUnreachableError,
)
from repro.shard.checkpoint import (
    CheckpointStore,
    ComponentCheckpoint,
    RecoveryReport,
    ShardCheckpoint,
    ShardLog,
)
from repro.shard.coordlog import (
    CoordinatorFaults,
    CoordinatorLog,
    CoordinatorState,
)
from repro.shard.engine import ShardedEngine, SourceRouter, fork_available
from repro.shard.planner import ShardComponent, ShardPlan, ShardPlanner
from repro.shard.policy import QueryCountPolicy, RebalancePolicy, ThroughputPolicy
from repro.shard.proc import (
    CoordinatorHandoff,
    FrameFaults,
    ProcessShardedRuntime,
    WorkerCrashError,
    WorkerFaults,
)
from repro.shard.runtime import ShardedRuntime
from repro.shard.stats import ShardedRunStats, merge_run_stats
from repro.shard.wire import WireDecoder, WireEncoder

__all__ = [
    "CheckpointStore",
    "ComponentCheckpoint",
    "CoordinatorCrashError",
    "CoordinatorFaults",
    "CoordinatorHandoff",
    "CoordinatorLog",
    "CoordinatorState",
    "FrameFaults",
    "JournalError",
    "ProcessShardedRuntime",
    "QueryCountPolicy",
    "RebalancePolicy",
    "RecoveryReport",
    "ShardCheckpoint",
    "ShardComponent",
    "ShardLog",
    "ShardPlan",
    "ShardPlanner",
    "ShardedEngine",
    "ShardedRunStats",
    "ShardedRuntime",
    "SourceRouter",
    "ThroughputPolicy",
    "WireDecoder",
    "WireEncoder",
    "WorkerCrashError",
    "WorkerFaults",
    "WorkerUnreachableError",
    "fork_available",
    "merge_run_stats",
]
