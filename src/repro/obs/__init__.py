"""Telemetry subsystem: per-m-op metrics, tracing, events, and exports.

Layout:

- :mod:`repro.obs.metrics` — the :class:`MetricsRegistry` (counters, gauges,
  histograms), picklable snapshots, cross-shard merging, Prometheus-text and
  JSONL exports;
- :mod:`repro.obs.mops` — :class:`MOpObserver`/:class:`MOpRecord`, the
  per-executor attribution the engine updates behind ``observe=``;
- :mod:`repro.obs.trace` — :class:`Span`/:class:`SpanRecorder`, the
  wire-propagated trace tree of a serve;
- :mod:`repro.obs.events` — :class:`EventLog`, the structured lifecycle
  event stream (register/unregister/rebalance/checkpoint/recovery);
- :mod:`repro.obs.logsetup` — :func:`configure_logging`, the CLI's shared
  formatter (timestamp + worker process name, text or JSON lines).
"""

from repro.obs.events import EventLog
from repro.obs.logsetup import configure_logging
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    TelemetryError,
    merge_snapshots,
    publish_run_stats,
    publish_serve_report,
    to_jsonl,
    to_prometheus,
)
from repro.obs.mops import MOpObserver, MOpRecord
from repro.obs.trace import Span, SpanRecorder, span_tree

__all__ = [
    "Counter",
    "EventLog",
    "Gauge",
    "Histogram",
    "MOpObserver",
    "MOpRecord",
    "MetricsRegistry",
    "Span",
    "SpanRecorder",
    "TelemetryError",
    "configure_logging",
    "merge_snapshots",
    "publish_run_stats",
    "publish_serve_report",
    "span_tree",
    "to_jsonl",
    "to_prometheus",
]
