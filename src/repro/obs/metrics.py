"""The metrics registry: counters, gauges and histograms with labels.

The telemetry subsystem's storage layer.  A :class:`MetricsRegistry` holds
named instruments keyed by ``(name, sorted label items)``; the hot paths
(engine dispatch, worker loops) never touch it — they accumulate into plain
record objects (:mod:`repro.obs.mops`) and *publish* into a registry at
snapshot time, so registry flexibility costs nothing per event.

Snapshots are plain picklable dicts: worker processes snapshot their local
registry, ship it through the extended ``stats`` RPC, and the coordinator
merges the snapshots (:func:`merge_snapshots`) into one cluster view —
counters and histogram buckets sum, gauges take the maximum (every gauge in
this system is a pressure/high-water signal, e.g. peak operator state, for
which max is the meaningful cross-shard merge; per-shard detail survives via
the ``shard`` label anyway).

Two export formats:

- :func:`to_prometheus` — the Prometheus text exposition format
  (``name{label="v"} value`` with ``# TYPE`` headers), suitable for a
  textfile collector or a scrape endpoint;
- :func:`to_jsonl` — one JSON object per sample, the same shape the span
  and event exports use, so one tail-able pipeline can ingest all three.
"""

from __future__ import annotations

import json
from typing import Iterable, Optional

from repro.errors import RumorError


class TelemetryError(RumorError):
    """Misuse of the telemetry subsystem (bad labels, type clashes)."""


#: Default histogram bucket upper bounds (seconds-flavoured, log-spaced).
DEFAULT_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


def _label_key(labels: dict) -> tuple:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("value",)
    kind = "counter"

    def __init__(self):
        self.value = 0

    def inc(self, amount=1) -> None:
        if amount < 0:
            raise TelemetryError(f"counter increment must be >= 0, got {amount}")
        self.value += amount


class Gauge:
    """A point-in-time value (last set wins; merges take the max)."""

    __slots__ = ("value",)
    kind = "gauge"

    def __init__(self):
        self.value = 0

    def set(self, value) -> None:
        self.value = value

    def set_max(self, value) -> None:
        """High-water-mark update (the peak-state sampling path)."""
        if value > self.value:
            self.value = value


class Histogram:
    """A cumulative histogram over fixed bucket upper bounds."""

    __slots__ = ("bounds", "counts", "sum", "count")
    kind = "histogram"

    def __init__(self, bounds: Iterable[float] = DEFAULT_BUCKETS):
        self.bounds = tuple(sorted(float(b) for b in bounds))
        if not self.bounds:
            raise TelemetryError("histogram needs at least one bucket bound")
        # One count per bound plus the +Inf overflow bucket.
        self.counts = [0] * (len(self.bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.sum += value
        self.count += 1
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[index] += 1
                return
        self.counts[-1] += 1


class MetricsRegistry:
    """Named, labelled instruments with get-or-create access."""

    def __init__(self):
        # (name, label_key) -> instrument; name -> kind for clash detection.
        self._instruments: dict[tuple, object] = {}
        self._kinds: dict[str, str] = {}

    def _get(self, factory, name: str, labels: dict):
        kind = factory.kind
        known = self._kinds.get(name)
        if known is not None and known != kind:
            raise TelemetryError(
                f"metric {name!r} is already registered as a {known}, "
                f"cannot re-register as a {kind}"
            )
        key = (name, _label_key(labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = factory()
            self._instruments[key] = instrument
            self._kinds[name] = kind
        return instrument

    def counter(self, name: str, **labels) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(
        self, name: str, buckets: Iterable[float] = DEFAULT_BUCKETS, **labels
    ) -> Histogram:
        known = self._kinds.get(name)
        if known is not None and known != Histogram.kind:
            raise TelemetryError(
                f"metric {name!r} is already registered as a {known}, "
                f"cannot re-register as a histogram"
            )
        key = (name, _label_key(labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = Histogram(buckets)
            self._instruments[key] = instrument
            self._kinds[name] = Histogram.kind
        return instrument

    # -- snapshots -------------------------------------------------------------------

    def snapshot(self) -> dict:
        """Plain picklable view: ``{samples: [{name, kind, labels, ...}]}``."""
        samples = []
        for (name, label_key), instrument in sorted(
            self._instruments.items(), key=lambda item: item[0]
        ):
            sample = {
                "name": name,
                "kind": instrument.kind,
                "labels": dict(label_key),
            }
            if instrument.kind == "histogram":
                sample["bounds"] = list(instrument.bounds)
                sample["counts"] = list(instrument.counts)
                sample["sum"] = instrument.sum
                sample["count"] = instrument.count
            else:
                sample["value"] = instrument.value
            samples.append(sample)
        return {"samples": samples}

    def load_snapshot(self, snapshot: dict) -> None:
        """Merge one snapshot into this registry (the coordinator-side
        aggregation path: counters/histograms sum, gauges take the max)."""
        for sample in snapshot.get("samples", ()):
            name, labels = sample["name"], sample["labels"]
            kind = sample["kind"]
            if kind == "counter":
                self.counter(name, **labels).inc(sample["value"])
            elif kind == "gauge":
                self.gauge(name, **labels).set_max(sample["value"])
            elif kind == "histogram":
                histogram = self.histogram(name, sample["bounds"], **labels)
                if tuple(histogram.bounds) != tuple(sample["bounds"]):
                    raise TelemetryError(
                        f"histogram {name!r} bucket bounds differ across "
                        f"snapshots; cannot merge"
                    )
                for index, count in enumerate(sample["counts"]):
                    histogram.counts[index] += count
                histogram.sum += sample["sum"]
                histogram.count += sample["count"]
            else:
                raise TelemetryError(f"unknown sample kind {kind!r}")


def merge_snapshots(snapshots: Iterable[dict]) -> dict:
    """Merge registry snapshots into one (sum counters, max gauges)."""
    merged = MetricsRegistry()
    for snapshot in snapshots:
        merged.load_snapshot(snapshot)
    return merged.snapshot()


# -- export formats ------------------------------------------------------------------


def _format_labels(labels: dict) -> str:
    if not labels:
        return ""
    body = ",".join(
        f'{key}="{str(value)}"' for key, value in sorted(labels.items())
    )
    return "{" + body + "}"


def _format_value(value) -> str:
    if isinstance(value, float):
        return repr(value)
    return str(value)


def to_prometheus(snapshot: dict) -> str:
    """Render a registry snapshot in the Prometheus text exposition format."""
    lines: list[str] = []
    seen_types: set[str] = set()
    for sample in snapshot.get("samples", ()):
        name, kind, labels = sample["name"], sample["kind"], sample["labels"]
        if name not in seen_types:
            seen_types.add(name)
            lines.append(f"# TYPE {name} {kind}")
        if kind == "histogram":
            cumulative = 0
            for bound, count in zip(sample["bounds"], sample["counts"]):
                cumulative += count
                bucket_labels = dict(labels, le=_format_value(float(bound)))
                lines.append(
                    f"{name}_bucket{_format_labels(bucket_labels)} {cumulative}"
                )
            cumulative += sample["counts"][-1]
            lines.append(
                f"{name}_bucket{_format_labels(dict(labels, le='+Inf'))} "
                f"{cumulative}"
            )
            lines.append(
                f"{name}_sum{_format_labels(labels)} "
                f"{_format_value(sample['sum'])}"
            )
            lines.append(f"{name}_count{_format_labels(labels)} {sample['count']}")
        else:
            lines.append(
                f"{name}{_format_labels(labels)} {_format_value(sample['value'])}"
            )
    return "\n".join(lines) + ("\n" if lines else "")


def to_jsonl(snapshot: dict, at: Optional[float] = None) -> str:
    """Render a snapshot as JSONL (one sample per line).

    ``at`` stamps every line with a capture timestamp so periodically
    flushed snapshots appended to one file stay distinguishable.
    """
    lines = []
    for sample in snapshot.get("samples", ()):
        record = dict(sample)
        if at is not None:
            record["at"] = at
        lines.append(json.dumps(record, sort_keys=True, default=str))
    return "\n".join(lines) + ("\n" if lines else "")


def publish_run_stats(
    registry: MetricsRegistry, stats, **labels
) -> None:
    """Publish one :class:`~repro.engine.metrics.RunStats` into a registry.

    Counter semantics: callers publish *cumulative* worker stats into a
    *fresh* registry per snapshot round (the registry is the view, the
    RunStats is the source of truth), so ``inc`` by the absolute value is
    the correct translation.
    """
    registry.counter("rumor_input_events_total", **labels).inc(
        stats.input_events
    )
    registry.counter("rumor_physical_input_events_total", **labels).inc(
        stats.physical_input_events
    )
    registry.counter("rumor_output_events_total", **labels).inc(
        stats.output_events
    )
    registry.counter("rumor_physical_events_total", **labels).inc(
        stats.physical_events
    )
    registry.counter("rumor_busy_seconds_total", **labels).inc(
        stats.elapsed_seconds
    )
    registry.counter("rumor_migrations_total", **labels).inc(stats.migrations)
    if stats.peak_state:
        registry.gauge("rumor_peak_state", **labels).set_max(stats.peak_state)
    for query_id, count in stats.outputs_by_query.items():
        registry.counter(
            "rumor_query_outputs_total", query=query_id, **labels
        ).inc(count)


def publish_serve_report(
    registry: MetricsRegistry, report, **labels
) -> None:
    """Publish a :class:`~repro.serve.drive.ServeReport` into a registry.

    Same cumulative-into-fresh-registry convention as
    :func:`publish_run_stats`: the report is the source of truth, the
    registry is the exported view.  Ship latencies land in a histogram
    bucketed for the sub-millisecond to multi-second range a live front
    door actually spans.
    """
    registry.counter("rumor_serve_events_total", **labels).inc(report.events)
    registry.counter("rumor_serve_runs_total", **labels).inc(report.runs)
    registry.counter("rumor_serve_lifecycle_ops_total", **labels).inc(
        report.lifecycle_ops
    )
    registry.counter("rumor_serve_heartbeats_total", **labels).inc(
        report.heartbeats
    )
    registry.gauge("rumor_serve_events_per_second", **labels).set(
        report.events_per_second
    )
    latency = registry.histogram(
        "rumor_serve_ship_latency_ms",
        buckets=(0.1, 0.5, 1, 5, 10, 50, 100, 500, 1000, 5000),
        **labels,
    )
    for value in report.ship_latencies_ms:
        latency.observe(value)
