"""Logging configuration for the CLI and drivers.

One formatter for the whole tree: timestamp, level, process name (worker
processes are named ``shard{N}.{incarnation}`` at spawn, so every line says
which worker produced it), logger, message.  ``format="json"`` renders each
record as one JSON object per line instead, so serves can be piped into
log tooling without a parse step.
"""

from __future__ import annotations

import json
import logging

#: The shared human-readable layout (worker id via %(processName)s).
TEXT_FORMAT = (
    "%(asctime)s %(levelname)-7s %(processName)s %(name)s: %(message)s"
)

_LEVELS = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
    "error": logging.ERROR,
}


class JsonFormatter(logging.Formatter):
    """One JSON object per record: at/level/process/logger/message."""

    def format(self, record: logging.LogRecord) -> str:
        payload = {
            "at": record.created,
            "level": record.levelname,
            "process": record.processName,
            "logger": record.name,
            "message": record.getMessage(),
        }
        if record.exc_info:
            payload["exception"] = self.formatException(record.exc_info)
        return json.dumps(payload, default=str)


def configure_logging(
    level: str = "info", format: str = "text"
) -> logging.Handler:
    """Install one stderr handler on the ``repro`` logger tree.

    Scoped to ``repro`` (not the root logger) so embedding applications
    keep their own logging config; idempotent — a previous handler installed
    by this function is replaced, not duplicated.
    """
    if level not in _LEVELS:
        raise ValueError(
            f"log level must be one of {sorted(_LEVELS)}, got {level!r}"
        )
    if format not in ("text", "json"):
        raise ValueError(f"log format must be text or json, got {format!r}")
    logger = logging.getLogger("repro")
    for handler in list(logger.handlers):
        if getattr(handler, "_repro_cli", False):
            logger.removeHandler(handler)
    handler = logging.StreamHandler()
    handler._repro_cli = True
    handler.setFormatter(
        JsonFormatter() if format == "json" else logging.Formatter(TEXT_FORMAT)
    )
    logger.addHandler(handler)
    logger.setLevel(_LEVELS[level])
    return handler
