"""Wire-propagated tracing: spans, recorders, and JSONL export.

One *trace* covers one serve; every operation of interest — coordinator-side
command encode, worker-side decode/apply, rebalance transfers, checkpoint
rounds, recoveries — is a *span* with a parent, so the recorded set forms a
tree rooted at the serve.  Trace context crosses the process boundary as a
``(trace_id, parent_span_id)`` pair piggybacked on command and data frames
(:mod:`repro.shard.wire`); the worker records its spans under the shipped
parent and the coordinator drains them back through the extended ``stats``
RPC, merging both sides into one tree.

Span ids must be unique *across processes* without coordination, so each
:class:`SpanRecorder` mints ids under a prefix: the coordinator uses
``c-N``, shard workers ``w{shard}.{incarnation}-N``.  Two recorders with
distinct prefixes can never collide, and the prefix doubles as provenance
when reading an export.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Optional


@dataclass
class Span:
    """One timed operation in a trace tree."""

    trace_id: str
    span_id: str
    parent_id: Optional[str]
    name: str
    start: float  # wall-clock (time.time) — for humans reading exports
    elapsed_seconds: float = 0.0
    attrs: dict = field(default_factory=dict)
    _t0: float = 0.0  # perf_counter anchor; meaningless across processes

    def finish(self) -> None:
        self.elapsed_seconds = time.perf_counter() - self._t0

    def as_dict(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "elapsed_seconds": self.elapsed_seconds,
            "attrs": dict(self.attrs),
        }


class SpanRecorder:
    """In-memory span sink minting ids under a process-unique prefix.

    Bounded: past ``max_spans`` recorded spans, new ones are counted in
    ``dropped`` instead of stored, so a long serve cannot grow without
    bound.  ``drain()`` empties the buffer (the worker→coordinator shipping
    path); ``to_jsonl()`` renders without draining.
    """

    def __init__(self, prefix: str = "c", max_spans: int = 100_000):
        self.prefix = prefix
        self.max_spans = max_spans
        self.spans: list[dict] = []
        self.dropped = 0
        self._next_id = 0

    def new_span_id(self) -> str:
        self._next_id += 1
        return f"{self.prefix}-{self._next_id}"

    def start(
        self,
        name: str,
        trace_id: str,
        parent_id: Optional[str] = None,
        **attrs,
    ) -> Span:
        return Span(
            trace_id=trace_id,
            span_id=self.new_span_id(),
            parent_id=parent_id,
            name=name,
            start=time.time(),
            attrs=attrs,
            _t0=time.perf_counter(),
        )

    def record(self, span: Span) -> None:
        if len(self.spans) >= self.max_spans:
            self.dropped += 1
            return
        self.spans.append(span.as_dict())

    @contextmanager
    def span(
        self,
        name: str,
        trace_id: str,
        parent_id: Optional[str] = None,
        **attrs,
    ):
        """``with recorder.span(...) as s:`` — finished and recorded on exit,
        including the error path (the span still lands, flagged)."""
        entry = self.start(name, trace_id, parent_id, **attrs)
        try:
            yield entry
        except BaseException:
            entry.attrs["error"] = True
            raise
        finally:
            entry.finish()
            self.record(entry)

    def add(self, span_dicts) -> None:
        """Adopt already-rendered spans (the coordinator merging a worker
        drain)."""
        for span_dict in span_dicts:
            if len(self.spans) >= self.max_spans:
                self.dropped += 1
                continue
            self.spans.append(dict(span_dict))

    def drain(self) -> list[dict]:
        drained, self.spans = self.spans, []
        return drained

    def to_jsonl(self) -> str:
        lines = [
            json.dumps(span, sort_keys=True, default=str) for span in self.spans
        ]
        return "\n".join(lines) + ("\n" if lines else "")


def span_tree(span_dicts) -> dict:
    """Index spans as ``parent_id -> [span, ...]`` for tree walks in tests
    and report tooling (roots are under the ``None`` key)."""
    children: dict = {}
    for span in span_dicts:
        children.setdefault(span.get("parent_id"), []).append(span)
    return children
