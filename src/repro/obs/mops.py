"""Per-m-op attribution: who processed how much, and who burns the time.

The engine's hot loop dispatches prebound ``process_batch`` methods from a
flattened channel table — there is no per-m-op accounting anywhere on that
path.  :class:`MOpObserver` adds it behind the ``observe=`` flag without
touching the unobserved loop: the engine builds a parallel *observed*
channel table pairing each method with its :class:`MOpRecord`, and the
observed dispatch variants bump plain slotted-attribute counters inline.

Busy time is *sampled*, not measured per call: every ``sample_every``-th
invocation of an executor is wrapped in a ``time.perf_counter`` pair and
the total is extrapolated (``sampled_seconds × calls / sampled_calls``).
At the default rate that is two clock reads per 32 batches per m-op —
well inside the ≤5 % overhead budget the CI gate enforces — while still
converging on the true share under any steady mix of batch sizes.

Records survive plan rewrites: an m-op that persists across a migration
keeps its cumulative counters, one that is dropped is marked ``retired``
but still reported, so the invariant the tests assert —

    ``RunStats.physical_events ==
    physical_input_events + Σ record.tuples_out``

(every physically dispatched tuple is either a source entry or the output
of exactly one m-op) — holds over a whole serve, churn included.
"""

from __future__ import annotations


class MOpRecord:
    """Cumulative per-m-op counters (one per m-op the observer ever saw)."""

    __slots__ = (
        "mop_id",
        "kind",
        "query_ids",
        "batches",
        "tuples_in",
        "tuples_out",
        "per_tuple_calls",
        "sampled_calls",
        "sampled_seconds",
        "retired",
    )

    def __init__(self, mop_id: int, kind: str, query_ids: tuple):
        self.mop_id = mop_id
        self.kind = kind
        self.query_ids = query_ids
        self.batches = 0  # batched process_batch invocations
        self.tuples_in = 0  # physical tuples handed to this executor
        self.tuples_out = 0  # physical tuples it emitted
        self.per_tuple_calls = 0  # per-tuple-fallback process invocations
        self.sampled_calls = 0
        self.sampled_seconds = 0.0
        self.retired = False

    @property
    def calls(self) -> int:
        return self.batches + self.per_tuple_calls

    @property
    def busy_seconds(self) -> float:
        """Extrapolated executor time (see module docstring)."""
        if not self.sampled_calls:
            return 0.0
        return self.sampled_seconds * self.calls / self.sampled_calls

    def as_dict(self) -> dict:
        return {
            "mop_id": self.mop_id,
            "kind": self.kind,
            "query_ids": list(self.query_ids),
            "batches": self.batches,
            "tuples_in": self.tuples_in,
            "tuples_out": self.tuples_out,
            "per_tuple_calls": self.per_tuple_calls,
            "sampled_calls": self.sampled_calls,
            "sampled_seconds": self.sampled_seconds,
            "busy_seconds": self.busy_seconds,
            "retired": self.retired,
        }


class MOpObserver:
    """Holds per-m-op records and engine-level sampled gauges.

    One observer per engine.  ``refresh(plan)`` is called from every table
    rebuild so attribution (kind, owning query ids) tracks the live plan;
    ``record_for`` hands the dispatch-table builder the record to pair with
    each prebound method.
    """

    def __init__(self, sample_every: int = 32, state_sample_every: int = 16):
        if sample_every < 1:
            raise ValueError(
                f"sample_every must be at least 1, got {sample_every}"
            )
        if state_sample_every < 0:
            raise ValueError(
                "state_sample_every must be >= 0 (0 disables state sampling), "
                f"got {state_sample_every}"
            )
        self.sample_every = sample_every
        self.state_sample_every = state_sample_every
        self.records: dict[int, MOpRecord] = {}
        self.entry_batches = 0
        self.peak_state = 0

    # -- plan attribution ---------------------------------------------------------

    def refresh(self, plan) -> None:
        """Sync records with ``plan``: new m-ops get fresh records, persisting
        ones get their attribution updated (sharing rules can fold more
        queries into a live m-op), vanished ones are marked retired."""
        live = set()
        for mop in plan.mops:
            live.add(mop.mop_id)
            query_ids = tuple(
                sorted(
                    {
                        instance.query_id
                        for instance in mop.instances
                        if instance.query_id is not None
                    },
                    key=str,
                )
            )
            record = self.records.get(mop.mop_id)
            if record is None:
                self.records[mop.mop_id] = MOpRecord(
                    mop.mop_id, mop.kind, query_ids
                )
            else:
                record.kind = mop.kind
                record.query_ids = query_ids
                record.retired = False
        for mop_id, record in self.records.items():
            if mop_id not in live:
                record.retired = True

    def record_for(self, mop_id: int) -> MOpRecord:
        record = self.records.get(mop_id)
        if record is None:
            record = MOpRecord(mop_id, "?", ())
            self.records[mop_id] = record
        return record

    # -- engine-level sampling ----------------------------------------------------

    def maybe_sample_state(self, engine) -> None:
        """Called once per entry batch; probes ``engine.state_size`` every
        ``state_sample_every``-th call (the peak-state gauge source)."""
        self.entry_batches += 1
        every = self.state_sample_every
        if every and self.entry_batches % every == 0:
            size = engine.state_size
            if size > self.peak_state:
                self.peak_state = size

    def sample_state_now(self, engine) -> None:
        """Unconditional probe — hooked at natural boundaries (end of a
        serve, before a migration) so short runs still report a peak."""
        size = engine.state_size
        if size > self.peak_state:
            self.peak_state = size

    # -- views --------------------------------------------------------------------

    def mop_stats(self) -> dict[int, dict]:
        return {
            mop_id: record.as_dict()
            for mop_id, record in sorted(self.records.items())
        }

    def total_tuples_out(self) -> int:
        return sum(record.tuples_out for record in self.records.values())

    def query_heat(self) -> dict:
        """query_id -> extrapolated busy seconds.

        An m-op shared by n queries splits its measured time evenly — the
        sharing rules merged those queries *because* the work is common, so
        an even split is the only attribution that does not double-count.
        """
        heat: dict = {}
        for record in self.records.values():
            if not record.query_ids:
                continue
            share = record.busy_seconds / len(record.query_ids)
            if share == 0.0:
                continue
            for query_id in record.query_ids:
                heat[query_id] = heat.get(query_id, 0.0) + share
        return heat

    def absorb(self, mop_stats: dict) -> None:
        """Merge an exported ``mop_stats`` mapping (e.g. carried over from a
        pre-migration engine) into this observer's records."""
        for mop_id, entry in mop_stats.items():
            mop_id = int(mop_id)
            record = self.records.get(mop_id)
            if record is None:
                record = MOpRecord(
                    mop_id, entry.get("kind", "?"), tuple(entry.get("query_ids", ()))
                )
                record.retired = bool(entry.get("retired", True))
                self.records[mop_id] = record
            record.batches += entry.get("batches", 0)
            record.tuples_in += entry.get("tuples_in", 0)
            record.tuples_out += entry.get("tuples_out", 0)
            record.per_tuple_calls += entry.get("per_tuple_calls", 0)
            record.sampled_calls += entry.get("sampled_calls", 0)
            record.sampled_seconds += entry.get("sampled_seconds", 0.0)

    def publish(self, registry, **labels) -> None:
        """Dump records and gauges into a :class:`MetricsRegistry`."""
        for record in self.records.values():
            mop_labels = dict(
                labels, mop_id=record.mop_id, mop_kind=record.kind
            )
            registry.counter("rumor_mop_tuples_in_total", **mop_labels).inc(
                record.tuples_in
            )
            registry.counter("rumor_mop_tuples_out_total", **mop_labels).inc(
                record.tuples_out
            )
            registry.counter("rumor_mop_batches_total", **mop_labels).inc(
                record.batches
            )
            registry.counter(
                "rumor_mop_per_tuple_fallback_total", **mop_labels
            ).inc(record.per_tuple_calls)
            registry.counter("rumor_mop_busy_seconds_total", **mop_labels).inc(
                record.busy_seconds
            )
        if self.peak_state:
            registry.gauge("rumor_engine_peak_state", **labels).set_max(
                self.peak_state
            )
