"""The structured event log: one stream for every lifecycle transition.

Before this module, lifecycle visibility was scattered: recoveries built
:class:`~repro.shard.checkpoint.RecoveryReport` objects *and* emitted ad-hoc
``logging`` calls, rebalances logged from the policy, checkpoints were
silent.  :class:`EventLog` unifies them — every register/unregister/
rebalance/checkpoint/recovery lands as one structured record *and* is
mirrored to a standard :mod:`logging` logger, so existing ``caplog``-based
tests and console output keep working while exports gain a machine-readable
stream.
"""

from __future__ import annotations

import json
import logging
import time


class EventLog:
    """Bounded in-memory structured event stream mirrored to ``logging``."""

    def __init__(
        self,
        logger: logging.Logger | None = None,
        max_events: int = 100_000,
    ):
        self._logger = logger or logging.getLogger("repro.obs.events")
        self.max_events = max_events
        self.events: list[dict] = []
        self.dropped = 0

    def emit(
        self,
        kind: str,
        message: str | None = None,
        level: int = logging.INFO,
        **fields,
    ) -> dict:
        event = {"at": time.time(), "kind": kind, **fields}
        if len(self.events) >= self.max_events:
            self.dropped += 1
        else:
            self.events.append(event)
        if self._logger.isEnabledFor(level):
            detail = " ".join(
                f"{key}={value}" for key, value in sorted(fields.items())
            )
            text = message or kind
            self._logger.log(level, "%s %s" % (text, detail) if detail else text)
        return event

    def by_kind(self, kind: str) -> list[dict]:
        return [event for event in self.events if event["kind"] == kind]

    #: Event kinds that change the fleet's shape or identity — emitted by
    #: elastic resizes and coordinator restarts.
    TOPOLOGY_KINDS = frozenset(
        {"scale_up", "scale_down", "readopt", "cold_start", "coordinator_crash"}
    )

    def topology(self) -> list[dict]:
        """The topology-change audit trail, in emission order.

        Every worker added or retired and every coordinator restart
        (re-adoption or cold start) appears here — the answer to "how did
        the fleet get into this shape".
        """
        return [
            event
            for event in self.events
            if event["kind"] in self.TOPOLOGY_KINDS
        ]

    def to_jsonl(self) -> str:
        lines = [
            json.dumps(event, sort_keys=True, default=str)
            for event in self.events
        ]
        return "\n".join(lines) + ("\n" if lines else "")
