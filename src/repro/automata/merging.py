"""Prefix state merging (paper §4.3, Fig. 7).

When a query automaton is added to the engine's forest, its longest prefix
that coincides with an existing automaton is shared: "given an existing
automaton F and a new input automaton A, A can be merged into F by
identifying the longest prefixes of F and A that are identical, and share the
two prefixes in the merged automaton".

Two states are mergeable when they read the same stream, have the same
instance schema and identical loop-edge definitions (signature equality), and
are reached by forward edges with identical definitions from already-merged
states.  Merging then proceeds edge by edge: a new forward edge whose
definition matches an existing one shares its target; otherwise the edge (and
the subtree behind it) is grafted onto the shared state.

The paper maps this technique onto plan-level common subexpression
elimination; :class:`repro.core.rules.CseRule` is the plan-side image.
"""

from __future__ import annotations

from typing import Optional

from repro.automata.automaton import Automaton, ForwardEdge, State
from repro.errors import AutomatonError


class Forest:
    """The engine's automaton forest.

    With ``merge=True`` (the default) each stream has one shared start state
    and added automata are prefix-merged into it; with ``merge=False`` every
    automaton keeps its own unshared states — the no-MQO ablation baseline.
    """

    def __init__(self, merge: bool = True):
        self.merge = merge
        #: stream name -> start states reading it (singleton when merging)
        self.starts: dict[str, list[State]] = {}
        #: every state in the forest (deduplicated, insertion-ordered)
        self.states: list[State] = []
        self._known: set[int] = set()

    def _track(self, state: State) -> None:
        if state.state_id not in self._known:
            self._known.add(state.state_id)
            self.states.append(state)

    def add(self, automaton: Automaton) -> int:
        """Merge ``automaton`` into the forest; returns states newly created."""
        created = 0
        start = automaton.start
        stream_starts = self.starts.setdefault(start.stream_name, [])
        shared_start = stream_starts[0] if (self.merge and stream_starts) else None
        if shared_start is None:
            shared_start = State(
                f"start[{start.stream_name}]",
                start.stream_name,
                None,
                is_start=True,
            )
            stream_starts.append(shared_start)
            self._track(shared_start)
            created += 1
        created += self._merge_state(start, shared_start, automaton)
        return created

    def _merge_state(self, source: State, shared: State, automaton: Automaton) -> int:
        """Merge source's outgoing forward edges into the shared state."""
        created = 0
        for edge in source.forwards:
            match = self._matching_edge(shared, edge) if self.merge else None
            if match is not None:
                if edge.target.is_final:
                    match.target.query_ids.extend(edge.target.query_ids)
                else:
                    created += self._merge_state(edge.target, match.target, automaton)
                continue
            grafted, sub_created = self._graft(edge.target)
            shared.forwards.append(ForwardEdge(edge.predicate, edge.schema_map, grafted))
            created += sub_created
        return created

    def _matching_edge(self, shared: State, edge: ForwardEdge) -> Optional[ForwardEdge]:
        for existing in shared.forwards:
            if (
                existing.definition() == edge.definition()
                and existing.target.signature() == edge.target.signature()
            ):
                return existing
        return None

    def _graft(self, state: State) -> tuple[State, int]:
        """Copy a subtree into the forest (no sharing below this point)."""
        copy = State(
            state.name,
            state.stream_name,
            state.instance_schema,
            is_start=False,
            is_final=state.is_final,
        )
        copy.filter_predicate = state.filter_predicate
        copy.rebind_predicate = state.rebind_predicate
        copy.rebind_map = state.rebind_map
        copy.query_ids = list(state.query_ids)
        self._track(copy)
        created = 1
        for edge in state.forwards:
            target_copy, sub_created = self._graft(edge.target)
            copy.forwards.append(ForwardEdge(edge.predicate, edge.schema_map, target_copy))
            created += sub_created
        return copy, created
