"""Cayuga-style automaton substrate (paper §4.2–§4.3).

Event engines like Cayuga implement queries as nondeterministic automata
whose states hold *instances* (partial matches) and whose edges come in three
kinds — filter (stay unchanged), rebind (stay, updated by F_r), forward (move
on, transformed by F_fo).  This subpackage provides:

- :mod:`~repro.automata.automaton` — the automaton model,
- :mod:`~repro.automata.engine` — a baseline execution engine with the three
  Cayuga MQO index structures (FR, AN, AI) and prefix state merging; this is
  the "Cayuga Automata" competitor line of Figures 9 and 10,
- :mod:`~repro.automata.merging` — prefix state merging of query automata
  into the engine's forest,
- :mod:`~repro.automata.translate` — the §4.2 translation of automata into
  RUMOR query plans.
"""

from repro.automata.automaton import Automaton, ForwardEdge, State
from repro.automata.engine import AutomatonEngine
from repro.automata.translate import translate_automaton

__all__ = [
    "Automaton",
    "State",
    "ForwardEdge",
    "AutomatonEngine",
    "translate_automaton",
]
