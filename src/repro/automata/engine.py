"""The baseline automaton execution engine with Cayuga's MQO indexes.

This is the "Cayuga Automata" competitor of Figures 9 and 10.  It executes
the merged automaton forest directly, with the three index structures the
paper translates into RUMOR (§4.3):

- **FR index** — per state, forward/rebind edges whose predicates carry a
  constant equality on an event attribute are hash-indexed by that constant,
  so an event retrieves its satisfied edges with one lookup per attribute;
- **AN index** (Active Node) — states whose entire edge activity is gated by
  a constant equality on the event are indexed engine-wide, so an event only
  touches the states whose gate constant matches;
- **AI index** (Active Instance) — per state, instances are hash-partitioned
  on the bound value of a correlation attribute (``S.a[0] = T.a[0]`` style),
  so events probe matching instances directly.

Event processing is two-phase per event: all states evaluate against the
pre-event snapshot, then newly created instances are committed — an instance
can never react to the event that created it (the behaviour the plan engine
exhibits through its breadth-first propagation order).

Instance survival follows Cayuga semantics — an instance stays at a state iff
its filter or rebind edge fires — with two soundness-preserving fast paths
recognized at compile time (see ``_SurvivalPolicy``): θf = ¬θ_fwd (the
consume-on-match sequence) and θf = ¬θ_corr (the correlation filter that
makes the AI index skip-safe).
"""

from __future__ import annotations

import time
from typing import Iterable, Optional

from repro.automata.automaton import Automaton, State, schema_map_output
from repro.automata.merging import Forest
from repro.engine.metrics import RunStats
from repro.errors import AutomatonError
from repro.operators.expressions import RIGHT
from repro.operators.instances import Instance, InstanceStore
from repro.operators.predicates import (
    FalsePredicate,
    Not,
    Predicate,
    TruePredicate,
    as_constant_equality,
    as_cross_equality,
    as_duration_bound,
    conjuncts,
)
from repro.streams.schema import Schema
from repro.streams.tuples import StreamTuple


class _SurvivalPolicy:
    """How a state decides whether a probed instance stays (filter edge)."""

    STRICT = "strict"            # survive iff filter/rebind predicate fires
    ALWAYS = "always"            # θf = true
    UNLESS_FORWARD = "unless_forward"  # θf = ¬θ_fwd (consume on match)
    UNLESS_PROBED = "unless_probed"    # θf = ¬θ_corr (AI-index skip safety)


class _CompiledForward:
    """A forward edge compiled against its state's schemas."""

    __slots__ = ("predicate", "schema_map", "target", "guards", "window", "output_schema")

    def __init__(self, predicate, schema_map, target, guards, window):
        self.predicate = predicate      # compiled residual (or None)
        self.schema_map = schema_map    # list of compiled expressions
        self.target = target            # the target State
        self.guards = guards            # [(event position, constant)]
        self.window = window            # duration bound or None
        self.output_schema = None       # filled after construction


class _StateRuntime:
    """Mutable execution state + compiled edges for one automaton state."""

    def __init__(self, state: State, event_schema: Schema, engine: "AutomatonEngine"):
        self.state = state
        self.event_schema = event_schema
        instance_schema = state.instance_schema
        self.outputs: list = []

        # -- forward edges -------------------------------------------------------
        self.forwards: list[_CompiledForward] = []
        self.fr_index: dict[int, dict[object, list[_CompiledForward]]] = {}
        self.fr_scan: list[_CompiledForward] = []
        for edge in state.forwards:
            window = None
            guards: list[tuple[int, object]] = []
            residual: list[Predicate] = []
            for part in conjuncts(edge.predicate):
                bound = as_duration_bound(part)
                if bound is not None:
                    window = bound if window is None else min(window, bound)
                    continue
                shape = as_constant_equality(part)
                if shape is not None and shape[0] == RIGHT:
                    guards.append((event_schema.index_of(shape[1]), shape[2]))
                    continue
                residual.append(part)
            from repro.operators.predicates import conjunction

            residual_predicate = conjunction(residual)
            compiled_predicate = (
                None
                if isinstance(residual_predicate, TruePredicate)
                else residual_predicate.compile(instance_schema, event_schema)
            )
            compiled_map = [
                expression.compile(instance_schema, event_schema)
                for __, expression in edge.schema_map
            ]
            compiled = _CompiledForward(
                compiled_predicate,
                compiled_map,
                edge.target,
                guards,
                window,
            )
            self.forwards.append(compiled)
            if engine.use_fr_index and guards:
                position, constant = guards[0]
                self.fr_index.setdefault(position, {}).setdefault(
                    constant, []
                ).append(compiled)
            else:
                self.fr_scan.append(compiled)

        # Output schema per forward edge (computed once).
        for compiled, edge in zip(self.forwards, state.forwards):
            compiled.output_schema = schema_map_output(
                edge.schema_map, instance_schema, event_schema
            )

        # -- rebind edge ---------------------------------------------------------
        if state.rebind_predicate is not None:
            self.rebind_predicate = (
                None
                if isinstance(state.rebind_predicate, TruePredicate)
                else state.rebind_predicate.compile(instance_schema, event_schema)
            )
            self.rebind_map = [
                expression.compile(instance_schema, event_schema)
                for __, expression in state.rebind_map
            ]
            self.rebind_schema = schema_map_output(
                state.rebind_map, instance_schema, event_schema
            )
            self.has_rebind = True
        else:
            self.rebind_predicate = None
            self.rebind_map = None
            self.rebind_schema = None
            self.has_rebind = False

        # -- survival policy (filter edge) ----------------------------------------
        self.survival, self.filter_fn, correlation = self._analyze_filter(
            state, instance_schema, event_schema
        )

        # -- AI index ---------------------------------------------------------------
        self.ai_left_position: Optional[int] = None
        self.ai_right_position: Optional[int] = None
        if engine.use_ai_index and not state.is_start:
            pair = self._common_correlation(state)
            if pair is not None and self._rebind_preserves(state, pair[0]):
                safe = self.survival in (
                    _SurvivalPolicy.ALWAYS,
                    _SurvivalPolicy.UNLESS_FORWARD,
                ) or (
                    self.survival == _SurvivalPolicy.UNLESS_PROBED
                    and correlation == pair
                )
                if safe and instance_schema is not None:
                    self.ai_left_position = instance_schema.index_of(pair[0])
                    self.ai_right_position = event_schema.index_of(pair[1])
        self.store = InstanceStore(indexed=self.ai_left_position is not None)

        # -- AN gate -----------------------------------------------------------------
        # A state may be skipped entirely for events failing a common constant
        # equality, provided skipping never changes survival (policies where
        # untouched instances live on).
        self.an_gate: Optional[tuple[int, object]] = None
        if engine.use_an_index and not state.is_start:
            if self.survival in (
                _SurvivalPolicy.ALWAYS,
                _SurvivalPolicy.UNLESS_FORWARD,
                _SurvivalPolicy.UNLESS_PROBED,
            ):
                gate = self._common_event_constant(state)
                if gate is not None:
                    self.an_gate = (event_schema.index_of(gate[0]), gate[1])

    # -- compile-time analyses ------------------------------------------------------

    def _analyze_filter(self, state: State, instance_schema, event_schema):
        predicate = state.filter_predicate
        if isinstance(predicate, FalsePredicate):
            return _SurvivalPolicy.STRICT, None, None
        if isinstance(predicate, TruePredicate):
            return _SurvivalPolicy.ALWAYS, None, None
        if isinstance(predicate, Not):
            inner = predicate.part
            if len(state.forwards) == 1 and inner == state.forwards[0].predicate:
                return _SurvivalPolicy.UNLESS_FORWARD, None, None
            pair = as_cross_equality(inner)
            if pair is not None:
                # Keep the compiled filter too: with the AI index off, the
                # full scan probes uncorrelated instances, which must then be
                # saved by evaluating θf explicitly.
                compiled = predicate.compile(instance_schema, event_schema)
                return _SurvivalPolicy.UNLESS_PROBED, compiled, pair
        compiled = predicate.compile(instance_schema, event_schema)
        return _SurvivalPolicy.STRICT, compiled, None

    def _common_correlation(self, state: State):
        """Cross equality shared by every forward (and rebind) predicate."""
        pairs = None
        predicates = [edge.predicate for edge in state.forwards]
        if state.rebind_predicate is not None:
            predicates.append(state.rebind_predicate)
        for predicate in predicates:
            found = {
                pair
                for part in conjuncts(predicate)
                if (pair := as_cross_equality(part)) is not None
            }
            pairs = found if pairs is None else pairs & found
            if not pairs:
                return None
        return sorted(pairs)[0] if pairs else None

    def _rebind_preserves(self, state: State, attribute: str) -> bool:
        """True if F_r copies ``attribute`` from the instance unchanged."""
        if state.rebind_map is None:
            return True
        from repro.operators.expressions import AttrRef, LEFT

        for name, expression in state.rebind_map:
            if name == attribute:
                return expression == AttrRef(LEFT, attribute)
        return False

    def _common_event_constant(self, state: State):
        """(attribute, constant) equality shared by all edge predicates."""
        shapes = None
        predicates = [edge.predicate for edge in state.forwards]
        if state.rebind_predicate is not None:
            predicates.append(state.rebind_predicate)
        if not predicates:
            return None
        for predicate in predicates:
            found = {
                (shape[1], shape[2])
                for part in conjuncts(predicate)
                if (shape := as_constant_equality(part)) is not None
                and shape[0] == RIGHT
            }
            shapes = found if shapes is None else shapes & found
            if not shapes:
                return None
        return sorted(shapes, key=repr)[0] if shapes else None

    # -- event processing --------------------------------------------------------

    def matched_forwards(self, event: StreamTuple) -> list[_CompiledForward]:
        """Forward edges whose guards match the event (FR index + scan)."""
        matched: list[_CompiledForward] = []
        values = event.values
        for position, table in self.fr_index.items():
            edges = table.get(values[position])
            if edges:
                matched.extend(edges)
        for edge in self.fr_scan:
            satisfied = True
            for position, constant in edge.guards:
                if values[position] != constant:
                    satisfied = False
                    break
            if satisfied:
                matched.append(edge)
        return matched


class AutomatonEngine:
    """Executes a merged forest of query automata over named streams."""

    def __init__(
        self,
        use_fr_index: bool = True,
        use_an_index: bool = True,
        use_ai_index: bool = True,
        merge_prefixes: bool = True,
    ):
        self.use_fr_index = use_fr_index
        self.use_an_index = use_an_index
        self.use_ai_index = use_ai_index
        self.merge_prefixes = merge_prefixes
        self._forest = Forest(merge=merge_prefixes)
        self._schemas: dict[str, Schema] = {}
        self._runtimes: dict[int, _StateRuntime] = {}
        self._frozen = False
        # Per stream dispatch structures (built by freeze()).
        self._start_runtimes: dict[str, list[_StateRuntime]] = {}
        self._plain_states: dict[str, list[_StateRuntime]] = {}
        self._gated_states: dict[str, dict[int, dict[object, list[_StateRuntime]]]] = {}
        #: captured outputs of the most recent run (query_id -> tuples), only
        #: populated when capture_outputs is passed to run()/process().
        self.captured: dict[object, list[StreamTuple]] = {}

    def declare_stream(self, name: str, schema: Schema) -> None:
        """Register an input stream's schema (before adding automata)."""
        self._schemas[name] = schema

    def add(self, automaton: Automaton) -> None:
        if self._frozen:
            raise AutomatonError("cannot add automata after processing started")
        self._forest.add(automaton)

    def runtime_of(self, state: State) -> _StateRuntime:
        runtime = self._runtimes.get(state.state_id)
        if runtime is None:
            schema = self._schemas.get(state.stream_name)
            if schema is None:
                raise AutomatonError(
                    f"stream {state.stream_name!r} was not declared; call "
                    "declare_stream() first"
                )
            runtime = _StateRuntime(state, schema, self)
            self._runtimes[state.state_id] = runtime
        return runtime

    # -- freezing ---------------------------------------------------------------

    def freeze(self) -> None:
        """Compile all states and build the per-stream dispatch tables."""
        if self._frozen:
            return
        self._frozen = True
        for state in self._forest.states:
            if not state.is_final:
                self.runtime_of(state)
        for runtime in list(self._runtimes.values()):
            state = runtime.state
            stream = state.stream_name
            if state.is_start:
                self._start_runtimes.setdefault(stream, []).append(runtime)
                continue
            if runtime.an_gate is not None:
                position, constant = runtime.an_gate
                self._gated_states.setdefault(stream, {}).setdefault(
                    position, {}
                ).setdefault(constant, []).append(runtime)
            else:
                self._plain_states.setdefault(stream, []).append(runtime)

    def reset(self) -> None:
        """Clear all instance state, keeping the compiled forest.

        Lets benchmarks re-run the same engine on fresh state without paying
        for automaton insertion and compilation again.
        """
        for runtime in self._runtimes.values():
            runtime.store = InstanceStore(
                indexed=runtime.ai_left_position is not None
            )

    # -- execution ----------------------------------------------------------------

    def process(self, stream: str, event: StreamTuple, outputs: Optional[list] = None):
        """Process one event; appends ``(query_id, tuple)`` results to outputs."""
        if not self._frozen:
            self.freeze()
        if outputs is None:
            outputs = []
        pending: list[tuple[_StateRuntime, Instance]] = []

        # Phase 1a: existing instances at non-start states (snapshot).
        gated = self._gated_states.get(stream)
        if gated:
            values = event.values
            for position, table in gated.items():
                runtimes = table.get(values[position])
                if runtimes:
                    for runtime in runtimes:
                        self._advance_state(runtime, event, pending, outputs)
        for runtime in self._plain_states.get(stream, ()):
            self._advance_state(runtime, event, pending, outputs)

        # Phase 1b: start states spawn fresh instances from the event.
        for start in self._start_runtimes.get(stream, ()):
            self._spawn(start, event, pending, outputs)

        # Phase 2: commit — new instances become visible for the next event.
        for runtime, instance in pending:
            runtime.store.insert(instance)
        return outputs

    def _spawn(self, runtime: _StateRuntime, event: StreamTuple, pending, outputs):
        for edge in runtime.matched_forwards(event):
            if edge.predicate is not None and not edge.predicate(None, event, None):
                continue
            values = tuple(fn(None, event, None) for fn in edge.schema_map)
            target_state = edge.target
            if target_state.is_final:
                output = StreamTuple(edge.output_schema, values, event.ts)
                for query_id in target_state.query_ids:
                    outputs.append((query_id, output))
                continue
            target_runtime = self.runtime_of(target_state)
            instance_tuple = StreamTuple(
                target_state.instance_schema, values, event.ts
            )
            key = (
                instance_tuple.values[target_runtime.ai_left_position]
                if target_runtime.ai_left_position is not None
                else None
            )
            pending.append((target_runtime, Instance(instance_tuple, key=key)))

    def _advance_state(self, runtime: _StateRuntime, event: StreamTuple, pending, outputs):
        store = runtime.store
        if len(store) == 0:
            return
        if runtime.ai_right_position is not None:
            candidates = list(store.probe(event.values[runtime.ai_right_position]))
        else:
            candidates = list(store.scan())
        if not candidates:
            return
        matched_edges = runtime.matched_forwards(event)
        rebind_predicate = runtime.rebind_predicate
        has_rebind = runtime.has_rebind
        survival = runtime.survival
        filter_fn = runtime.filter_fn
        for instance in candidates:
            start_tuple = instance.start
            if start_tuple.ts > event.ts:
                continue
            forwarded = False
            for edge in matched_edges:
                if edge.window is not None and event.ts - start_tuple.ts > edge.window:
                    continue
                if edge.predicate is not None and not edge.predicate(
                    start_tuple, event, None
                ):
                    continue
                forwarded = True
                values = tuple(fn(start_tuple, event, None) for fn in edge.schema_map)
                target_state = edge.target
                if target_state.is_final:
                    output = StreamTuple(edge.output_schema, values, event.ts)
                    for query_id in target_state.query_ids:
                        outputs.append((query_id, output))
                else:
                    target_runtime = self.runtime_of(target_state)
                    instance_tuple = StreamTuple(
                        target_state.instance_schema, values, start_tuple.ts
                    )
                    key = (
                        instance_tuple.values[target_runtime.ai_left_position]
                        if target_runtime.ai_left_position is not None
                        else None
                    )
                    pending.append((target_runtime, Instance(instance_tuple, key=key)))
            rebound = False
            if has_rebind and (
                rebind_predicate is None
                or rebind_predicate(start_tuple, event, None)
            ):
                rebound = True
                new_values = tuple(
                    fn(start_tuple, event, None) for fn in runtime.rebind_map
                )
                # Keep the original timestamp: duration predicates measure
                # from the pattern's first event.
                instance.start = StreamTuple(
                    runtime.state.instance_schema, new_values, start_tuple.ts
                )
            if rebound:
                continue  # the rebind edge keeps the instance at the state
            if survival == _SurvivalPolicy.ALWAYS:
                continue
            if survival == _SurvivalPolicy.UNLESS_FORWARD:
                if forwarded:
                    store.kill(instance)
                continue
            if survival == _SurvivalPolicy.UNLESS_PROBED:
                if runtime.ai_right_position is not None:
                    # Probed via the AI index ⇒ correlation matched ⇒ the
                    # ¬θ_corr filter is false: the instance dies.
                    store.kill(instance)
                elif filter_fn is not None and filter_fn(start_tuple, event, None):
                    pass  # uncorrelated event: the filter edge keeps it
                else:
                    store.kill(instance)
                continue
            # STRICT: evaluate the filter edge if present.
            if filter_fn is not None and filter_fn(start_tuple, event, None):
                continue
            store.kill(instance)

    # -- measurement ---------------------------------------------------------------

    def run(
        self,
        events: Iterable[tuple[str, StreamTuple]],
        warmup_events: int = 0,
        capture_outputs: bool = False,
    ) -> RunStats:
        """Drain ``events`` (already timestamp-ordered) through the forest."""
        if not self._frozen:
            self.freeze()
        self.captured = {}
        iterator = iter(events)
        if warmup_events:
            consumed = 0
            sink: list = []
            for stream, event in iterator:
                self.process(stream, event, sink)
                sink.clear()
                consumed += 1
                if consumed >= warmup_events:
                    break
        stats = RunStats()
        outputs: list = []
        started = time.perf_counter()
        for stream, event in iterator:
            stats.input_events += 1
            stats.physical_input_events += 1
            self.process(stream, event, outputs)
            if outputs:
                stats.output_events += len(outputs)
                for query_id, output in outputs:
                    stats.outputs_by_query[query_id] = (
                        stats.outputs_by_query.get(query_id, 0) + 1
                    )
                    if capture_outputs:
                        self.captured.setdefault(query_id, []).append(output)
                outputs.clear()
        stats.elapsed_seconds = time.perf_counter() - started
        return stats

    @property
    def state_count(self) -> int:
        """States in the merged forest (prefix-merging effectiveness)."""
        return len(self._forest.states)

    @property
    def instance_count(self) -> int:
        return sum(len(runtime.store) for runtime in self._runtimes.values())
