"""Translating Cayuga-style automata into RUMOR query plans (paper §4.2).

The mapping follows Fig. 5: a start-state forward edge ``(θ1, F1)`` becomes a
selection (and a projection when ``F1`` is not the identity); a middle state
reading stream ``B`` becomes a binary ``;`` operator — or ``µ`` when the
state has a rebind edge — whose predicate carries the forward-edge condition;
the final forward edge's schema map becomes a trailing projection unless it
is the standard concatenation, which the ``;``/``µ`` operators already
produce.

Supported shape: a linear automaton (one forward edge per non-final state),
which covers every workload in the paper's evaluation.  Instances of a
``µ``-state are expected in the layout built by
:func:`repro.automata.automaton.iterate_automaton` (start attributes under
``s_*``, last-bound event attributes unprefixed); predicates are converted
between that layout and the operator layer's LEFT/RIGHT/LAST convention.
"""

from __future__ import annotations

from typing import Optional

from repro.automata.automaton import Automaton, State
from repro.core.plan import QueryPlan
from repro.errors import AutomatonError
from repro.operators.expressions import AttrRef, LAST, LEFT, RIGHT
from repro.operators.iterate import Iterate
from repro.operators.predicates import (
    FalsePredicate,
    Not,
    Predicate,
    TruePredicate,
    map_attr_refs,
)
from repro.operators.project import Projection
from repro.operators.select import Selection
from repro.operators.sequence import Sequence
from repro.streams.schema import Schema
from repro.streams.stream import StreamDef


def translate_automaton(
    automaton: Automaton,
    plan: QueryPlan,
    stream_map: dict[str, StreamDef],
    query_id=None,
    mark_output: bool = True,
) -> StreamDef:
    """Append ``automaton``'s RUMOR plan to ``plan``; returns the output stream."""
    state = automaton.start
    edge = _single_forward(state)
    try:
        source = stream_map[state.stream_name]
    except KeyError:
        raise AutomatonError(
            f"stream {state.stream_name!r} missing from stream_map"
        ) from None

    # Start edge: σ_θ1 (+ π_F1 when F1 is not the identity).  A µ target's
    # F1 builds the (s_* start, last) instance layout — the plan-side Iterate
    # manages that state itself, so the map is recognized and skipped.
    selection_predicate = map_attr_refs(edge.predicate, _right_to_left)
    stream = plan.add_operator(
        Selection(selection_predicate), [source], query_id=query_id
    )
    is_mu_target = edge.target.rebind_predicate is not None
    if is_mu_target:
        if not _is_mu_init_map(edge.schema_map, source.schema):
            raise AutomatonError(
                "µ-state translation requires the standard F1 "
                "(s_* copies + last copies of the start event)"
            )
    elif not _is_identity_start_map(edge.schema_map, source.schema):
        items = [
            (name, _expression_right_to_left(expression))
            for name, expression in edge.schema_map
        ]
        stream = plan.add_operator(Projection(items), [stream], query_id=query_id)

    state = edge.target
    while not state.is_final:
        edge = _single_forward(state)
        try:
            event_stream = stream_map[state.stream_name]
        except KeyError:
            raise AutomatonError(
                f"stream {state.stream_name!r} missing from stream_map"
            ) from None
        if state.rebind_predicate is None:
            operator = Sequence(
                edge.predicate, consume_on_match=_consumes(state, edge.predicate)
            )
            stream = plan.add_operator(
                operator, [stream, event_stream], query_id=query_id
            )
            if not _is_sequence_concat_map(
                edge.schema_map, stream_schema_left(plan, stream), event_stream.schema
            ):
                items = _sequence_projection_items(edge.schema_map)
                stream = plan.add_operator(
                    Projection(items), [stream], query_id=query_id
                )
        else:
            forward = map_attr_refs(edge.predicate, _instance_to_mu_terms)
            rebind = map_attr_refs(state.rebind_predicate, _instance_to_mu_terms)
            operator = Iterate(forward, rebind)
            if not _is_mu_concat_map(edge.schema_map, state.instance_schema):
                raise AutomatonError(
                    "µ-state translation requires the standard F2 "
                    "(s_* start attributes + current event attributes)"
                )
            stream = plan.add_operator(
                operator, [stream, event_stream], query_id=query_id
            )
        state = edge.target

    if mark_output and query_id is not None:
        plan.mark_output(stream, query_id)
    return stream


def _single_forward(state: State):
    if len(state.forwards) != 1:
        raise AutomatonError(
            "translation supports linear automata (one forward edge per state); "
            f"state {state.name!r} has {len(state.forwards)}"
        )
    return state.forwards[0]


def _consumes(state: State, forward_predicate: Predicate) -> bool:
    """Map the filter edge to the ``;`` retention flag.

    θf = ¬θ_fwd is the consume-on-match sequence; θf = true keeps matched
    instances.  A strictly false filter (delete on every non-forwarding
    event) has no ``;`` equivalent and is rejected.
    """
    filter_predicate = state.filter_predicate
    if isinstance(filter_predicate, TruePredicate):
        return False
    if isinstance(filter_predicate, Not) and filter_predicate.part == forward_predicate:
        return True
    raise AutomatonError(
        "translation supports filter edges of θf ∈ {true, ¬θ_fwd}; "
        f"state {state.name!r} has {filter_predicate!r}"
    )


def _right_to_left(ref: AttrRef) -> AttrRef:
    if ref.side == RIGHT:
        return AttrRef(LEFT, ref.name)
    raise AutomatonError(
        "start-edge predicates may only reference the incoming event"
    )


def _expression_right_to_left(expression):
    from repro.operators.predicates import _map_expression

    return _map_expression(expression, _right_to_left)


def _instance_to_mu_terms(ref: AttrRef) -> AttrRef:
    """µ-state instance layout (s_* start + last) → LEFT/LAST/RIGHT sides."""
    if ref.side == LEFT:
        if ref.name.startswith("s_"):
            return AttrRef(LEFT, ref.name[2:])
        return AttrRef(LAST, ref.name)
    return ref


def _is_identity_start_map(schema_map, event_schema: Schema) -> bool:
    if len(schema_map) != len(event_schema):
        return False
    return all(
        name == attribute.name and expression == AttrRef(RIGHT, attribute.name)
        for (name, expression), attribute in zip(schema_map, event_schema)
    )


def stream_schema_left(plan: QueryPlan, sequence_output: StreamDef) -> Schema:
    """Left (``s_*``) half of a sequence output schema (helper for checks)."""
    names = [a.name for a in sequence_output.schema if a.name.startswith("s_")]
    return sequence_output.schema.project(names)


def _is_sequence_concat_map(schema_map, prefixed_left: Schema, event_schema: Schema) -> bool:
    """True if F2 is the standard ``s_* ++ event`` concatenation the ``;``
    operator already emits (the common case — no trailing π needed)."""
    expected = [
        (attribute.name, AttrRef(LEFT, attribute.name[2:]))
        for attribute in prefixed_left
    ] + [(attribute.name, AttrRef(RIGHT, attribute.name)) for attribute in event_schema]
    return list(schema_map) == expected


def _is_mu_init_map(schema_map, event_schema: Schema) -> bool:
    """True if F1 is the µ initialization map: s_* and last both copy the event."""
    for name, expression in schema_map:
        base = name[2:] if name.startswith("s_") else name
        if expression != AttrRef(RIGHT, base):
            return False
    return True


def _is_mu_concat_map(schema_map, instance_schema: Schema) -> bool:
    """True if F2 keeps the ``s_*`` start half and copies the event half."""
    for name, expression in schema_map:
        if name.startswith("s_"):
            if expression != AttrRef(LEFT, name):
                return False
        else:
            if expression != AttrRef(RIGHT, name):
                return False
    return True


def _sequence_projection_items(schema_map):
    """Convert F2 refs to unary refs over the ``;`` output schema."""

    def convert(ref: AttrRef) -> AttrRef:
        if ref.side == LEFT:
            return AttrRef(LEFT, f"s_{ref.name}")
        if ref.side == RIGHT:
            return AttrRef(LEFT, ref.name)
        raise AutomatonError("F2 may not reference last.* attributes")

    from repro.operators.predicates import _map_expression

    return [
        (name, _map_expression(expression, convert)) for name, expression in schema_map
    ]
