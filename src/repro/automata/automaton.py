"""The Cayuga-style automaton model (paper §4.2, Fig. 4/5).

A query automaton is a DAG of states.  Each state reads one input stream and
holds a set of *instances* — partially processed matches with a fixed schema.
On each event, every instance non-deterministically traverses all satisfied
edges; instances satisfying no edge are deleted:

- the **filter** edge (≤1 per state) keeps the instance unchanged,
- the **rebind** edge (≤1) keeps the instance, transformed by the schema map
  ``F_r`` over the concatenation of instance and event,
- **forward** edges move a transformed copy (``F_fo``) to their target state;
  a copy reaching a *final* state is a query result.

Predicates reference the instance via the ``LEFT`` expression side and the
incoming event via ``RIGHT`` (matching the operator layer's convention).
Schema maps are ``(name, expression)`` item lists, exactly like
:class:`~repro.operators.project.Projection`.

The *start* state is special: it holds no instances; each arriving event is
itself the candidate, so start-edge predicates and schema maps reference the
event via ``RIGHT`` only.
"""

from __future__ import annotations

import itertools
from typing import Optional, Sequence

from repro.errors import AutomatonError
from repro.operators.expressions import Expression, LEFT
from repro.operators.predicates import FalsePredicate, Predicate
from repro.streams.schema import Attribute, Schema

_state_ids = itertools.count(1)

#: Schema map type: ordered (output name, expression) items.
SchemaMap = tuple[tuple[str, Expression], ...]


def identity_schema_map(schema: Schema, side: int) -> SchemaMap:
    """The schema map copying every attribute of ``schema`` from ``side``."""
    from repro.operators.expressions import AttrRef

    return tuple((a.name, AttrRef(side, a.name)) for a in schema)


def schema_map_output(
    items: SchemaMap, left_schema: Optional[Schema], right_schema: Schema
) -> Schema:
    """Output schema of a schema map over (instance, event)."""
    attributes = []
    for name, expression in items:
        type_ = expression.result_type(
            left_schema if left_schema is not None else right_schema, right_schema
        )
        attributes.append(Attribute(name, type_))
    return Schema(attributes)


class ForwardEdge:
    """A forward edge: predicate θ, schema map F_fo, and a target state."""

    __slots__ = ("predicate", "schema_map", "target")

    def __init__(self, predicate: Predicate, schema_map: SchemaMap, target: "State"):
        self.predicate = predicate
        self.schema_map = schema_map
        self.target = target

    def definition(self) -> tuple:
        """Edge definition sans target — what prefix merging compares."""
        return (self.predicate, self.schema_map)

    def __repr__(self):
        return f"ForwardEdge({self.predicate!r} -> {self.target.name})"


class State:
    """One automaton state with its edge set and instance schema."""

    __slots__ = (
        "state_id",
        "name",
        "stream_name",
        "instance_schema",
        "filter_predicate",
        "rebind_predicate",
        "rebind_map",
        "forwards",
        "is_start",
        "is_final",
        "query_ids",
    )

    def __init__(
        self,
        name: str,
        stream_name: Optional[str],
        instance_schema: Optional[Schema],
        is_start: bool = False,
        is_final: bool = False,
    ):
        if is_final and stream_name is not None:
            raise AutomatonError("final states read no stream")
        if not is_final and stream_name is None:
            raise AutomatonError(f"non-final state {name!r} must read a stream")
        self.state_id = next(_state_ids)
        self.name = name
        self.stream_name = stream_name
        self.instance_schema = instance_schema
        self.filter_predicate: Predicate = FalsePredicate()
        self.rebind_predicate: Optional[Predicate] = None
        self.rebind_map: Optional[SchemaMap] = None
        self.forwards: list[ForwardEdge] = []
        self.is_start = is_start
        self.is_final = is_final
        #: Query ids attributed to results arriving at this (final) state.
        self.query_ids: list = []

    # -- construction ------------------------------------------------------------

    def set_filter(self, predicate: Predicate) -> "State":
        """Attach the filter edge (θ_f; FalsePredicate means no filter edge)."""
        if self.is_final:
            raise AutomatonError("final states have no outgoing edges")
        self.filter_predicate = predicate
        return self

    def set_rebind(self, predicate: Predicate, schema_map: SchemaMap) -> "State":
        """Attach the rebind edge (θ_r, F_r)."""
        if self.is_final:
            raise AutomatonError("final states have no outgoing edges")
        if self.is_start:
            raise AutomatonError("the start state cannot have a rebind edge")
        self.rebind_predicate = predicate
        self.rebind_map = schema_map
        return self

    def add_forward(
        self, predicate: Predicate, schema_map: SchemaMap, target: "State"
    ) -> ForwardEdge:
        """Attach a forward edge (θ, F_fo) to ``target``."""
        if self.is_final:
            raise AutomatonError("final states have no outgoing edges")
        edge = ForwardEdge(predicate, schema_map, target)
        self.forwards.append(edge)
        return edge

    def signature(self) -> tuple:
        """State definition used by prefix merging: stream + loop edges."""
        return (
            self.stream_name,
            self.instance_schema,
            self.filter_predicate,
            self.rebind_predicate,
            self.rebind_map,
            self.is_final,
        )

    def __repr__(self):
        kind = "start" if self.is_start else ("final" if self.is_final else "state")
        return f"State({self.name!r}, {kind}, stream={self.stream_name!r})"


class Automaton:
    """A single query automaton: states reachable from ``start``.

    The final state carries the query id(s); construction validates the DAG
    property ("states can only be connected through forward edges, resulting
    in automata that are directed acyclic graphs").
    """

    def __init__(self, start: State, query_id=None):
        if not start.is_start:
            raise AutomatonError("automaton root must be a start state")
        self.start = start
        self.states = self._collect(start)
        finals = [state for state in self.states if state.is_final]
        if not finals:
            raise AutomatonError("automaton has no final state")
        if query_id is not None:
            for state in finals:
                state.query_ids.append(query_id)
        self.query_id = query_id

    def _collect(self, start: State) -> list[State]:
        order: list[State] = []
        seen: set[int] = set()
        on_path: set[int] = set()

        def visit(state: State):
            if state.state_id in on_path:
                raise AutomatonError("automaton contains a cycle of forward edges")
            if state.state_id in seen:
                return
            seen.add(state.state_id)
            on_path.add(state.state_id)
            for edge in state.forwards:
                visit(edge.target)
            on_path.discard(state.state_id)
            order.append(state)

        visit(start)
        order.reverse()
        return order

    def __repr__(self):
        return f"Automaton({len(self.states)} states, query={self.query_id!r})"


def sequence_automaton(
    stream_a: str,
    schema_a: Schema,
    predicate_a: Predicate,
    stream_b: str,
    schema_b: Schema,
    predicate_b: Predicate,
    query_id=None,
    consume_on_match: bool = True,
) -> Automaton:
    """Build the two-step automaton for ``σ_a(A) ; θ_b B`` (Workload 1/2 shape).

    ``predicate_a`` references the event via RIGHT (start-edge convention);
    ``predicate_b`` references the stored instance via LEFT and the new event
    via RIGHT (it typically carries the duration predicate as a conjunct).
    """
    from repro.operators.expressions import AttrRef, RIGHT
    from repro.operators.predicates import Not, TruePredicate

    start = State("q1", stream_a, None, is_start=True)
    middle = State("q2", stream_b, schema_a)
    final = State("q3", None, None, is_final=True)
    # The filter edge decides what happens to instances the event does not
    # move forward: θf = ¬θ_fwd consumes matched instances only (the paper's
    # "special semantics" of the Cayuga sequence operator, §5.2); θf = true
    # keeps instances alive across matches.
    if consume_on_match:
        middle.set_filter(Not(predicate_b))
    else:
        middle.set_filter(TruePredicate())
    start.add_forward(predicate_a, identity_schema_map(schema_a, side=RIGHT), middle)
    # F2 concatenates the stored instance (prefixed) with the current event.
    concat_map = tuple(
        [(f"s_{a.name}", AttrRef(LEFT, a.name)) for a in schema_a]
        + [(a.name, AttrRef(RIGHT, a.name)) for a in schema_b]
    )
    middle.add_forward(predicate_b, concat_map, final)
    return Automaton(start, query_id=query_id)


def iterate_automaton(
    stream_a: str,
    schema_a: Schema,
    predicate_a: Predicate,
    stream_b: str,
    schema_b: Schema,
    forward_predicate: Predicate,
    rebind_predicate: Predicate,
    query_id=None,
) -> Automaton:
    """Build the automaton for ``σ_a(A) µ_{θf, θr} B`` (Workload 2 µ shape).

    ``forward_predicate`` and ``rebind_predicate`` use the *operator layer*
    side convention: LEFT = start event, RIGHT = incoming event, LAST = the
    most recently bound event.  The middle state's instance schema carries
    both views — the start attributes under ``s_*`` and the last-bound event
    attributes unprefixed — so F_r can refresh the latter while preserving
    the former, mirroring exactly the ``last`` semantics of
    :class:`~repro.operators.iterate.Iterate`.  Outputs therefore match the
    operator layer's output content, which keeps the two engines comparable
    tuple-for-tuple in tests.
    """
    from repro.operators.expressions import RIGHT, LAST, AttrRef
    from repro.operators.predicates import (
        Comparison,
        Not,
        as_cross_equality,
        conjuncts,
        map_attr_refs,
    )

    start = State("q1", stream_a, None, is_start=True)
    instance_schema = schema_a.prefixed("s_").concat(schema_b)
    middle = State("q2", stream_b, instance_schema)
    final = State("q3", None, None, is_final=True)

    # When forward and rebind share a correlation equality, the filter edge
    # keeps uncorrelated instances alive (θf = ¬θ_corr) — the Cayuga idiom
    # that makes the Active Instance index sound and matches the operator
    # layer's probe semantics.  Without correlation the state is strict:
    # every event probes every instance.
    forward_pairs = {
        pair
        for part in conjuncts(forward_predicate)
        if (pair := as_cross_equality(part)) is not None
    }
    rebind_pairs = {
        pair
        for part in conjuncts(rebind_predicate)
        if (pair := as_cross_equality(part)) is not None
    }
    common_pairs = sorted(forward_pairs & rebind_pairs)
    if common_pairs:
        start_attr, event_attr = common_pairs[0]
        middle.set_filter(
            Not(
                Comparison(
                    AttrRef(LEFT, f"s_{start_attr}"), "==", AttrRef(RIGHT, event_attr)
                )
            )
        )

    # F1: instance = (s_* := event attrs, last := the same event).
    start_map = tuple(
        [(f"s_{a.name}", AttrRef(RIGHT, a.name)) for a in schema_a]
        + [(a.name, AttrRef(RIGHT, a.name)) for a in schema_b]
    )
    start.add_forward(predicate_a, start_map, middle)

    def to_instance_terms(ref: AttrRef):
        if ref.side == LEFT:
            return AttrRef(LEFT, f"s_{ref.name}")
        if ref.side == LAST:
            return AttrRef(LEFT, ref.name)
        return ref

    # F_r: keep the start attributes, rebind the last-event attributes.
    rebind_map = tuple(
        [(f"s_{a.name}", AttrRef(LEFT, f"s_{a.name}")) for a in schema_a]
        + [(a.name, AttrRef(RIGHT, a.name)) for a in schema_b]
    )
    middle.set_rebind(map_attr_refs(rebind_predicate, to_instance_terms), rebind_map)

    # F2: output = (s_* start attributes, current event attributes).
    concat_map = tuple(
        [(f"s_{a.name}", AttrRef(LEFT, f"s_{a.name}")) for a in schema_a]
        + [(a.name, AttrRef(RIGHT, a.name)) for a in schema_b]
    )
    middle.add_forward(
        map_attr_refs(forward_predicate, to_instance_terms), concat_map, final
    )
    return Automaton(start, query_id=query_id)
