"""Recovery benchmark: restore-from-checkpoint vs replay-from-start.

Measures what the durable checkpoint subsystem buys on a crash: the same
churn schedule is served through a 2-worker :class:`ProcessShardedRuntime`
with a deterministic mid-stream worker crash
(``WorkerFaults(crash_on=("data", k))``) under three recovery policies —

- ``blank`` — non-durable (the PR-4 baseline): respawn + blank
  re-registration, operator state and captured history dropped;
- ``replay-from-start`` — durable with no checkpoints: the write-ahead log
  replays every tuple ever shipped to the dead shard;
- ``checkpoint@N`` — durable with a checkpoint round every ``N`` batches:
  restore the latest cut, replay only the log suffix.

Reported per policy: recovery wall-clock, tuples replayed (the replay
volume the checkpoint interval bounds), lifecycle commands replayed,
operator state restored from blobs, and whether the post-recovery serve is
byte-identical to a fault-free in-process reference.

Exit criteria — the script exits non-zero, printing ``FAIL:`` and the
violated criterion (all are deterministic structural comparisons, no
timing tolerance):

1. every durable policy's captured outputs are byte-identical to the
   fault-free reference (the blank baseline is *expected* to lose output
   and is asserted to — that is the gap the subsystem closes);
2. every checkpointed policy replays **strictly fewer** tuples than
   replay-from-start on the same crash schedule (the ISSUE 5 acceptance
   criterion);
3. a coordinator killed mid-serve cold-starts from its on-disk journal —
   fleet respawned from checkpoints + WAL suffixes — and the resumed
   serve ends byte-identical to the fault-free reference (the ISSUE 7
   acceptance criterion);
4. differential checkpoint rounds ship **strictly fewer** bytes over the
   wire than full rounds on the same schedule, and stay byte-identical.

Wall-clock columns are informational only.  (Replay volume is *bounded*
by roughly twice the checkpoint interval — last cut before the crash to
first detection after it — but is not monotone in the interval for a
single crash point: the crash's phase relative to the cadence decides
where in that window it lands.)

Run standalone (writes ``BENCH_recovery.json``)::

    PYTHONPATH=src python benchmarks/bench_recovery.py
    PYTHONPATH=src python benchmarks/bench_recovery.py --scale smoke
"""

from __future__ import annotations

import json
import tempfile
import time
from dataclasses import dataclass
from typing import Optional

from repro.errors import CoordinatorCrashError
from repro.runtime.config import open_runtime
from repro.shard import (
    CoordinatorFaults,
    ProcessShardedRuntime,
    WorkerFaults,
    fork_available,
)
from repro.workloads.churn import ChurnWorkload, drive_sharded, resume_tail

#: The 4-template pool: sequences, shared aggregates and joins all carry
#: operator state through the crash.
TEMPLATES = ("select", "sequence", "aggregate", "join")

FAST = {"command_timeout": 0.5, "max_retries": 120}


@dataclass
class RecoveryScale:
    name: str
    horizon: int
    arrival_rate: float
    mean_lifetime: float
    initial_queries: int
    crash_at: int  # nth run frame on the doomed shard
    intervals: tuple  # checkpoint_every values to sweep (0 = WAL only)
    coordinator_crash_at: int  # nth journal batch append kills the head
    seed: int = 7

    @classmethod
    def full(cls) -> "RecoveryScale":
        return cls(
            name="full",
            horizon=1500,
            arrival_rate=0.03,
            mean_lifetime=400.0,
            initial_queries=6,
            crash_at=400,
            intervals=(0, 64, 16),
            coordinator_crash_at=30,
        )

    @classmethod
    def smoke(cls) -> "RecoveryScale":
        return cls(
            name="smoke",
            horizon=400,
            arrival_rate=0.04,
            mean_lifetime=150.0,
            initial_queries=4,
            crash_at=80,
            intervals=(0, 32, 8),
            coordinator_crash_at=12,
        )


def _workload(scale: RecoveryScale) -> ChurnWorkload:
    return ChurnWorkload(
        arrival_rate=scale.arrival_rate,
        mean_lifetime=scale.mean_lifetime,
        horizon=scale.horizon,
        initial_queries=scale.initial_queries,
        seed=scale.seed,
        templates=TEMPLATES,
    )


def _reference(scale: RecoveryScale):
    workload = _workload(scale)
    sources = {"S": workload.schema, "T": workload.schema}
    reference = open_runtime(sources=sources, shards=2, capture_outputs=True)
    for __ in drive_sharded(
        reference, workload.stream_events(), workload.schedule()
    ):
        pass
    return reference


def serve_with_crash(
    scale: RecoveryScale, durable: bool, checkpoint_every: int
) -> dict:
    """One crashed serve under one recovery policy; returns its cell."""
    workload = _workload(scale)
    sources = {"S": workload.schema, "T": workload.schema}
    proc = open_runtime(
        sources=sources,
        process=True,
        shards=2,
        capture_outputs=True,
        durable=durable,
        checkpoint_every=checkpoint_every,
        extra={
            "worker_faults": {
                0: WorkerFaults(crash_on=("data", scale.crash_at))
            }
        },
        **FAST,
    )
    try:
        for __ in drive_sharded(
            proc, workload.stream_events(), workload.schedule()
        ):
            pass
        stats = proc.collect_stats()  # forces detection if still pending
        assert proc.crash_recoveries >= 1, (
            f"the seeded crash at data frame {scale.crash_at} never fired; "
            f"lower crash_at for this horizon"
        )
        report = proc.recovery_log[0]
        captured = {
            query_id: list(history)
            for query_id, history in proc.captured.items()
        }
        if durable:
            policy = (
                f"checkpoint@{checkpoint_every}"
                if checkpoint_every
                else "replay-from-start"
            )
        else:
            policy = "blank"
        return {
            "policy": policy,
            "durable": durable,
            "checkpoint_every": checkpoint_every,
            "checkpoint_version": report.checkpoint_version,
            "recovery_seconds": report.elapsed_seconds,
            "tuples_replayed": report.tuples_replayed,
            "lifecycle_replayed": report.lifecycle_replayed,
            "state_restored": report.state_restored,
            "state_lost": report.state_lost,
            "queries_restored": len(report.queries_restored),
            "queries_replayed": len(report.queries_replayed),
            "outputs": {
                query_id: count
                for query_id, count in sorted(stats.outputs_by_query.items())
            },
            "_captured": captured,
        }
    finally:
        proc.close()


def serve_cold_start(scale: RecoveryScale, checkpoint_every: int) -> dict:
    """Kill the coordinator mid-serve, cold-start from the journal, finish.

    Total loss: the fleet is terminated with the coordinator (``abandon``),
    leaving only the on-disk journal + checkpoint store.  The cell reports
    how long :meth:`ProcessShardedRuntime.from_journal` took to respawn the
    fleet (checkpoint restore + WAL suffix replay, measured to the first
    settled RPC) and whether the resumed serve ends byte-identical.
    """
    workload = _workload(scale)
    sources = {"S": workload.schema, "T": workload.schema}
    streams = list(workload.stream_events())
    churn = list(workload.schedule())
    with tempfile.TemporaryDirectory() as journal_dir:
        proc = open_runtime(
            sources=sources,
            process=True,
            shards=2,
            capture_outputs=True,
            checkpoint_every=checkpoint_every,
            journal=journal_dir,
            extra={
                "coordinator_faults": CoordinatorFaults(
                    crash_on=("batch", scale.coordinator_crash_at),
                    when="after",
                )
            },
            **FAST,
        )
        try:
            for __ in drive_sharded(proc, streams, churn):
                pass
        except CoordinatorCrashError:
            pass
        else:
            raise AssertionError(
                f"the seeded coordinator crash at batch append "
                f"{scale.coordinator_crash_at} never fired; lower "
                f"coordinator_crash_at for this horizon"
            )
        proc.abandon()

        started = time.perf_counter()
        successor = ProcessShardedRuntime.from_journal(journal_dir)
        successor.collect_stats()  # forces the respawn + restore to settle
        resume_seconds = time.perf_counter() - started
        try:
            resume_point = successor.input_positions()
            stream_tail, churn_tail = resume_tail(
                streams, churn, resume_point, successor.lifecycle_ops
            )
            for __ in drive_sharded(successor, stream_tail, churn_tail):
                pass
            stats = successor.collect_stats()
            return {
                "policy": f"cold-start@{checkpoint_every}",
                "checkpoint_every": checkpoint_every,
                "resume_seconds": resume_seconds,
                "journal_records": successor._journal.record_count(),
                "events_already_served": sum(resume_point.values()),
                "events_reserved_after_resume": len(stream_tail),
                "outputs": {
                    query_id: count
                    for query_id, count in sorted(
                        stats.outputs_by_query.items()
                    )
                },
                "_captured": {
                    query_id: list(history)
                    for query_id, history in successor.captured.items()
                },
            }
        finally:
            successor.close()


def serve_wire_bytes(scale: RecoveryScale, differential: bool) -> dict:
    """One fault-free durable serve, reporting checkpoint wire volume."""
    workload = _workload(scale)
    sources = {"S": workload.schema, "T": workload.schema}
    interval = min(i for i in scale.intervals if i)
    proc = open_runtime(
        sources=sources,
        process=True,
        shards=2,
        capture_outputs=True,
        durable=True,
        checkpoint_every=interval,
        differential=differential,
        **FAST,
    )
    try:
        for __ in drive_sharded(
            proc, workload.stream_events(), workload.schedule()
        ):
            pass
        proc.collect_stats()
        return {
            "policy": (
                f"differential@{interval}" if differential else f"full@{interval}"
            ),
            "checkpoint_every": interval,
            "differential": differential,
            "checkpoints_stored": proc.checkpoints_stored,
            "wire_bytes": proc.checkpoint_wire_bytes,
            "_captured": {
                query_id: list(history)
                for query_id, history in proc.captured.items()
            },
        }
    finally:
        proc.close()


def run_benchmark(scale: RecoveryScale) -> dict:
    reference = _reference(scale)
    cells = [serve_with_crash(scale, durable=False, checkpoint_every=0)]
    for interval in scale.intervals:
        cells.append(serve_with_crash(scale, durable=True, checkpoint_every=interval))

    for cell in cells:
        identical = cell.pop("_captured") == reference.captured
        cell["byte_identical"] = identical
        if cell["durable"]:
            assert identical, (
                f"{cell['policy']}: post-recovery captured outputs diverged "
                f"from the fault-free reference"
            )
        else:
            assert not identical, (
                "the blank baseline unexpectedly kept every output — the "
                "crash schedule is not exercising state loss"
            )
            assert cell["state_lost"], "blank recovery must report state loss"

    by_policy = {cell["policy"]: cell for cell in cells}
    baseline = by_policy["replay-from-start"]
    checkpointed = [
        cell for cell in cells if cell["durable"] and cell["checkpoint_every"]
    ]
    for cell in checkpointed:
        assert cell["tuples_replayed"] < baseline["tuples_replayed"], (
            f"{cell['policy']} replayed {cell['tuples_replayed']} tuples, "
            f"not strictly fewer than replay-from-start's "
            f"{baseline['tuples_replayed']}"
        )

    best = min(checkpointed, key=lambda cell: cell["tuples_replayed"])

    # ISSUE 7 cells: coordinator cold start + differential wire volume.
    cold = serve_cold_start(scale, checkpoint_every=min(
        interval for interval in scale.intervals if interval
    ))
    cold["byte_identical"] = cold.pop("_captured") == reference.captured
    assert cold["byte_identical"], (
        "cold-start from the coordinator journal diverged from the "
        "fault-free reference"
    )
    full_wire = serve_wire_bytes(scale, differential=False)
    diff_wire = serve_wire_bytes(scale, differential=True)
    for cell in (full_wire, diff_wire):
        cell["byte_identical"] = cell.pop("_captured") == reference.captured
        assert cell["byte_identical"], (
            f"{cell['policy']}: checkpointed serve diverged from the "
            f"fault-free reference"
        )
    assert diff_wire["wire_bytes"] < full_wire["wire_bytes"], (
        f"differential rounds shipped {diff_wire['wire_bytes']} bytes, not "
        f"strictly fewer than full rounds' {full_wire['wire_bytes']}"
    )

    return {
        "benchmark": "recovery",
        "scale": scale.name,
        "crash_at_data_frame": scale.crash_at,
        "coordinator_crash_at_batch": scale.coordinator_crash_at,
        "horizon": scale.horizon,
        "cells": {cell["policy"]: cell for cell in cells},
        "coordinator": {cold["policy"]: cold},
        "checkpoint_wire": {
            cell["policy"]: cell for cell in (full_wire, diff_wire)
        },
        "headline": {
            "replay_from_start_tuples": baseline["tuples_replayed"],
            "best_checkpoint_policy": best["policy"],
            "best_checkpoint_tuples": best["tuples_replayed"],
            "replay_reduction": (
                round(
                    baseline["tuples_replayed"]
                    / max(best["tuples_replayed"], 1),
                    2,
                )
            ),
            "cold_start_resume_ms": round(cold["resume_seconds"] * 1e3, 1),
            "differential_wire_reduction": round(
                full_wire["wire_bytes"] / max(diff_wire["wire_bytes"], 1), 2
            ),
        },
    }


def render(results: dict) -> str:
    lines = [
        f"recovery benchmark ({results['scale']} scale, crash at data frame "
        f"{results['crash_at_data_frame']}, horizon {results['horizon']})",
        f"{'policy':<20} {'replayed':>9} {'lifecycle':>9} {'restored':>9} "
        f"{'recover ms':>11} {'identical':>10}",
    ]
    for policy, cell in results["cells"].items():
        lines.append(
            f"{policy:<20} {cell['tuples_replayed']:>9} "
            f"{cell['lifecycle_replayed']:>9} {cell['state_restored']:>9} "
            f"{cell['recovery_seconds'] * 1e3:>11.1f} "
            f"{str(cell['byte_identical']):>10}"
        )
    for policy, cell in results["coordinator"].items():
        lines.append(
            f"{policy:<20} coordinator killed at batch append "
            f"{results['coordinator_crash_at_batch']}: resumed "
            f"{cell['events_reserved_after_resume']} events after "
            f"{cell['events_already_served']} journaled ones in "
            f"{cell['resume_seconds'] * 1e3:.1f} ms "
            f"(identical={cell['byte_identical']})"
        )
    for policy, cell in results["checkpoint_wire"].items():
        lines.append(
            f"{policy:<20} {cell['checkpoints_stored']} rounds shipped "
            f"{cell['wire_bytes']} bytes "
            f"(identical={cell['byte_identical']})"
        )
    headline = results["headline"]
    lines.append(
        f"headline: {headline['best_checkpoint_policy']} replays "
        f"{headline['best_checkpoint_tuples']} tuples vs "
        f"{headline['replay_from_start_tuples']} from start "
        f"({headline['replay_reduction']}x less replay); cold start resumed "
        f"in {headline['cold_start_resume_ms']} ms; differential rounds "
        f"ship {headline['differential_wire_reduction']}x fewer bytes"
    )
    return "\n".join(lines)


def main(argv: Optional[list[str]] = None) -> int:
    import argparse
    import sys

    parser = argparse.ArgumentParser(
        description="crash-recovery benchmark (checkpoint restore vs replay)"
    )
    parser.add_argument(
        "--scale", choices=["full", "smoke"], default="full",
        help="smoke: reduced event counts for CI",
    )
    parser.add_argument(
        "--output", default="BENCH_recovery.json",
        help="where to write the JSON results",
    )
    args = parser.parse_args(argv)
    if not fork_available():
        print(
            "SKIP: recovery benchmark requires the fork start method",
            file=sys.stderr,
        )
        return 0
    scale = (
        RecoveryScale.smoke() if args.scale == "smoke" else RecoveryScale.full()
    )
    try:
        results = run_benchmark(scale)
    except AssertionError as error:
        print(
            f"FAIL: recovery benchmark exit criterion violated: {error}",
            file=sys.stderr,
        )
        return 1
    with open(args.output, "w") as handle:
        json.dump(results, handle, indent=2)
        handle.write("\n")
    print(render(results))
    print(
        "PASS: durable recoveries byte-identical; every checkpoint interval "
        "replays strictly fewer tuples than replay-from-start; coordinator "
        "cold start byte-identical; differential rounds ship strictly "
        "fewer bytes"
    )
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
