"""Per-figure experiment drivers (§5, Figures 9–11).

Every driver regenerates one figure of the paper's evaluation: it builds the
workload, measures the competitors, and returns the plotted series as table
rows.  Absolute numbers are Python-scale — what must match the paper is the
*shape*: who wins, by what factor, and how the curves move with the swept
parameter (see EXPERIMENTS.md for the paper-vs-measured record).

Usage::

    python -m repro.bench.figures 9a          # one figure, laptop scale
    python -m repro.bench.figures all --full  # everything at paper scale
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Callable

from repro.bench.harness import (
    BenchScale,
    Series,
    measure_cayuga,
    measure_rumor,
    normalize,
    render_table,
)
from repro.workloads.perfmon import PerfmonDataset
from repro.workloads.templates import (
    HybridWorkload,
    Workload1,
    Workload2,
    Workload3,
    WorkloadParameters,
    sources_from_events,
)


@dataclass
class FigureResult:
    """One regenerated figure: identification, table, and raw series."""

    figure: str
    title: str
    columns: list[str]
    rows: list[list]
    series: list[Series] = field(default_factory=list)
    notes: str = ""

    def render(self) -> str:
        table = render_table(
            f"Figure {self.figure} — {self.title}", self.columns, self.rows
        )
        if self.notes:
            table += f"\n  note: {self.notes}"
        return table


def _query_counts(scale: BenchScale, ceiling: int) -> list[int]:
    counts = [1, 10, 100, 1000, 10_000, 100_000]
    limit = ceiling if scale.name == "full" else min(ceiling, 1000)
    return [count for count in counts if count <= limit]


def _measure_workload(workload, scale: BenchScale) -> tuple[float, float]:
    """(RUMOR throughput, Cayuga throughput) for an event workload."""
    events = workload.events(scale.events)
    warmup = int(len(events) * scale.warmup_fraction)
    plan, name_map = workload.rumor_plan()
    rumor = measure_rumor(
        plan,
        lambda: sources_from_events(plan, name_map, events),
        warmup_events=warmup,
        repeats=scale.repeats,
    )
    cayuga = measure_cayuga(
        workload.automaton_engine,
        events,
        warmup_events=warmup,
        repeats=scale.repeats,
    )
    return rumor.throughput, cayuga.throughput


def _two_system_figure(
    figure: str,
    title: str,
    x_name: str,
    points: list,
    workload_factory: Callable,
    scale: BenchScale,
    notes: str = "",
) -> FigureResult:
    rumor_series = Series("RUMOR Query Plan")
    cayuga_series = Series("Cayuga Automata")
    for point in points:
        workload = workload_factory(point)
        rumor_tput, cayuga_tput = _measure_workload(workload, scale)
        rumor_series.add(point, rumor_tput)
        cayuga_series.add(point, cayuga_tput)
    rumor_norm = normalize(rumor_series)
    cayuga_norm = normalize(cayuga_series)
    rows = [
        [x, round(rn, 3), round(cn, 3), round(r), round(c)]
        for x, rn, cn, r, c in zip(
            rumor_series.xs,
            rumor_norm.ys,
            cayuga_norm.ys,
            rumor_series.ys,
            cayuga_series.ys,
        )
    ]
    return FigureResult(
        figure,
        title,
        [x_name, "RUMOR (norm)", "Cayuga (norm)", "RUMOR ev/s", "Cayuga ev/s"],
        rows,
        series=[rumor_norm, cayuga_norm],
        notes=notes,
    )


# -- Figure 9: Workload 1 (FR + AN indexes) ----------------------------------------


def fig9a(scale: BenchScale) -> FigureResult:
    return _two_system_figure(
        "9(a)",
        "Workload 1 — normalized throughput vs number of queries",
        "queries",
        _query_counts(scale, 100_000),
        lambda n: Workload1(WorkloadParameters(num_queries=n)),
        scale,
    )


def fig9b(scale: BenchScale) -> FigureResult:
    domains = [10, 100, 1000, 10_000, 100_000]
    return _two_system_figure(
        "9(b)",
        "Workload 1 — normalized throughput vs constant domain size",
        "constant domain",
        domains,
        lambda d: Workload1(WorkloadParameters(constant_domain=d)),
        scale,
        notes="larger domains make θ1/θ3 more selective ⇒ throughput rises",
    )


def fig9c(scale: BenchScale) -> FigureResult:
    domains = [10, 100, 1000, 10_000, 100_000]
    return _two_system_figure(
        "9(c)",
        "Workload 1 — normalized throughput vs window length domain size",
        "window domain",
        domains,
        lambda d: Workload1(WorkloadParameters(window_domain=d)),
        scale,
        notes="; consumes matched state, so larger windows barely add load",
    )


def fig9d(scale: BenchScale) -> FigureResult:
    zipfs = [1.2, 1.4, 1.6, 1.8, 2.0]
    return _two_system_figure(
        "9(d)",
        "Workload 1 — normalized throughput vs Zipf parameter",
        "zipf",
        zipfs,
        lambda z: Workload1(WorkloadParameters(zipf=z)),
        scale,
        notes="higher commonality ⇒ more CSE; modest gain on top of indexes",
    )


# -- Figure 10(a,b): Workload 2 (AI index) ------------------------------------------


def fig10a(scale: BenchScale) -> FigureResult:
    return _two_system_figure(
        "10(a)",
        "Workload 2 (;) — normalized throughput vs number of queries",
        "queries",
        _query_counts(scale, 10_000),
        lambda n: Workload2(WorkloadParameters(num_queries=n), variant="seq"),
        scale,
    )


def fig10b(scale: BenchScale) -> FigureResult:
    return _two_system_figure(
        "10(b)",
        "Workload 2 (µ) — normalized throughput vs number of queries",
        "queries",
        _query_counts(scale, 10_000),
        lambda n: Workload2(WorkloadParameters(num_queries=n), variant="mu"),
        scale,
        notes="µ is costlier than ; so absolute values sit lower (paper §5.2)",
    )


# -- Figure 10(c,d): Workload 3 (channels) ------------------------------------------


def _measure_workload3(
    workload: Workload3, scale: BenchScale
) -> tuple[float, float]:
    rounds = workload.rounds(scale.rounds)
    warmup = int(len(rounds) * (workload.capacity + 1) * scale.warmup_fraction)
    results = []
    for channels in (True, False):
        plan, name_map = workload.rumor_plan(channels=channels)
        stats = measure_rumor(
            plan,
            lambda: workload.sources(plan, name_map, rounds),
            warmup_events=warmup,
            repeats=scale.repeats,
        )
        results.append(stats.throughput)
    return results[0], results[1]


def fig10c(scale: BenchScale) -> FigureResult:
    with_channel = Series("Seq With Channel")
    without_channel = Series("Seq W/o Channel")
    counts = _query_counts(scale, 10_000)
    for count in counts:
        workload = Workload3(WorkloadParameters(num_queries=count), capacity=10)
        channel_tput, plain_tput = _measure_workload3(workload, scale)
        with_channel.add(count, channel_tput)
        without_channel.add(count, plain_tput)
    rows = [
        [x, round(c), round(p), round(c / p, 2) if p else float("inf")]
        for x, c, p in zip(counts, with_channel.ys, without_channel.ys)
    ]
    return FigureResult(
        "10(c)",
        "Workload 3 — absolute throughput vs number of queries",
        ["queries", "with channel ev/s", "w/o channel ev/s", "speedup"],
        rows,
        series=[with_channel, without_channel],
        notes="paper reports roughly one order of magnitude at capacity 10",
    )


def fig10d(scale: BenchScale) -> FigureResult:
    with_channel = Series("Seq With Channel")
    without_channel = Series("Seq W/o Channel")
    capacities = [5, 10, 15, 20, 25]
    queries = 1000 if scale.name == "full" else 200
    for capacity in capacities:
        workload = Workload3(
            WorkloadParameters(num_queries=queries), capacity=capacity
        )
        channel_tput, plain_tput = _measure_workload3(workload, scale)
        with_channel.add(capacity, channel_tput)
        without_channel.add(capacity, plain_tput)
    rows = [
        [x, round(c), round(p), round(c / p, 2) if p else float("inf")]
        for x, c, p in zip(capacities, with_channel.ys, without_channel.ys)
    ]
    return FigureResult(
        "10(d)",
        "Workload 3 — absolute throughput vs channel capacity",
        ["capacity", "with channel ev/s", "w/o channel ev/s", "speedup"],
        rows,
        series=[with_channel, without_channel],
        notes="the more streams a channel encodes, the higher the gain",
    )


# -- Figure 11: hybrid queries on the perfmon dataset --------------------------------


def _measure_hybrid(
    workload: HybridWorkload, scale: BenchScale
) -> tuple[float, float]:
    results = []
    warmup = workload.dataset.tuples_per_second * 5
    for channels in (True, False):
        plan, name_map = workload.rumor_plan(channels=channels)
        stats = measure_rumor(
            plan,
            lambda: workload.sources(plan, name_map, scale.hybrid_seconds),
            warmup_events=warmup,
            repeats=scale.repeats,
        )
        results.append(stats.throughput)
    return results[0], results[1]


def _d1(scale: BenchScale) -> PerfmonDataset:
    return PerfmonDataset(
        processes=104, duration_seconds=max(scale.hybrid_seconds + 10, 3600), seed=1
    )


def fig11a(scale: BenchScale) -> FigureResult:
    with_channel = Series("Hybrid With Channel")
    without_channel = Series("Hybrid W/o Channel")
    dataset = _d1(scale)
    counts = [5, 10, 15, 20, 25]
    for count in counts:
        workload = HybridWorkload(dataset, num_queries=count, sel=0.5)
        channel_tput, plain_tput = _measure_hybrid(workload, scale)
        with_channel.add(count, channel_tput)
        without_channel.add(count, plain_tput)
    rows = [
        [x, round(c), round(p), round(c / p, 2) if p else float("inf")]
        for x, c, p in zip(counts, with_channel.ys, without_channel.ys)
    ]
    return FigureResult(
        "11(a)",
        "Hybrid workload on D1 — absolute throughput vs number of queries",
        ["queries", "with channel ev/s", "w/o channel ev/s", "speedup"],
        rows,
        series=[with_channel, without_channel],
        notes="each query monitors all 104 processes (§5.3); sel = 0.5",
    )


def fig11b(scale: BenchScale) -> FigureResult:
    with_channel = Series("Hybrid With Channel")
    without_channel = Series("Hybrid W/o Channel")
    dataset = _d1(scale)
    sels = [0.0, 0.2, 0.4, 0.6, 0.8, 1.0]
    for sel in sels:
        workload = HybridWorkload(dataset, num_queries=10, sel=sel)
        channel_tput, plain_tput = _measure_hybrid(workload, scale)
        with_channel.add(sel, channel_tput)
        without_channel.add(sel, plain_tput)
    rows = [
        [x, round(c), round(p), round(c / p, 2) if p else float("inf")]
        for x, c, p in zip(sels, with_channel.ys, without_channel.ys)
    ]
    return FigureResult(
        "11(b)",
        "Hybrid workload on D1 — throughput vs starting-condition selectivity",
        ["sel", "with channel ev/s", "w/o channel ev/s", "speedup"],
        rows,
        series=[with_channel, without_channel],
        notes="channel plan drops once then stays flat; w/o channel degrades",
    )


def fig10c_mu(scale: BenchScale) -> FigureResult:
    """§5.2's closing remark: the µ variant of the channel workload.

    "We also performed experiments on channels with query template
    Si µθ1∧θ2,θ3 T, and obtained similar results."
    """
    with_channel = Series("µ With Channel")
    without_channel = Series("µ W/o Channel")
    counts = _query_counts(scale, 10_000)
    for count in counts:
        workload = Workload3(
            WorkloadParameters(num_queries=count), capacity=10, variant="mu"
        )
        channel_tput, plain_tput = _measure_workload3(workload, scale)
        with_channel.add(count, channel_tput)
        without_channel.add(count, plain_tput)
    rows = [
        [x, round(c), round(p), round(c / p, 2) if p else float("inf")]
        for x, c, p in zip(counts, with_channel.ys, without_channel.ys)
    ]
    return FigureResult(
        "10(c)-µ",
        "Workload 3 (µ variant) — absolute throughput vs number of queries",
        ["queries", "with channel ev/s", "w/o channel ev/s", "speedup"],
        rows,
        series=[with_channel, without_channel],
        notes="§5.2: 'similar results' to the ; template",
    )


def fig11a_d2(scale: BenchScale) -> FigureResult:
    """§5.3's closing remark: the hybrid workload on dataset D2.

    "We obtain similar results in processing D2" (28 processes, home machine).
    """
    with_channel = Series("Hybrid With Channel (D2)")
    without_channel = Series("Hybrid W/o Channel (D2)")
    dataset = PerfmonDataset(
        processes=28, duration_seconds=max(scale.hybrid_seconds + 10, 3600), seed=2
    )
    counts = [5, 10, 15, 20, 25]
    for count in counts:
        workload = HybridWorkload(dataset, num_queries=count, sel=0.5)
        channel_tput, plain_tput = _measure_hybrid(workload, scale)
        with_channel.add(count, channel_tput)
        without_channel.add(count, plain_tput)
    rows = [
        [x, round(c), round(p), round(c / p, 2) if p else float("inf")]
        for x, c, p in zip(counts, with_channel.ys, without_channel.ys)
    ]
    return FigureResult(
        "11(a)-D2",
        "Hybrid workload on D2 — absolute throughput vs number of queries",
        ["queries", "with channel ev/s", "w/o channel ev/s", "speedup"],
        rows,
        series=[with_channel, without_channel],
        notes="§5.3: 'similar results' on the 28-process home-machine dataset",
    )


FIGURES: dict[str, Callable[[BenchScale], FigureResult]] = {
    "9a": fig9a,
    "9b": fig9b,
    "9c": fig9c,
    "9d": fig9d,
    "10a": fig10a,
    "10b": fig10b,
    "10c": fig10c,
    "10c-mu": fig10c_mu,
    "10d": fig10d,
    "11a": fig11a,
    "11a-d2": fig11a_d2,
    "11b": fig11b,
}


def run_figure(figure: str, scale: BenchScale | None = None) -> FigureResult:
    """Run one figure driver by id ('9a' … '11b')."""
    if scale is None:
        scale = BenchScale.small()
    try:
        driver = FIGURES[figure]
    except KeyError:
        raise SystemExit(
            f"unknown figure {figure!r}; choose from {sorted(FIGURES)} or 'all'"
        ) from None
    return driver(scale)


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    scale = BenchScale.full() if "--full" in argv else BenchScale.small()
    argv = [a for a in argv if a != "--full"]
    targets = argv or ["all"]
    figures = sorted(FIGURES) if targets == ["all"] else targets
    for figure in figures:
        result = run_figure(figure, scale)
        print(result.render())
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
