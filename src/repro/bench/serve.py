"""Live serving benchmark: sustained ingest and command overlap.

Two cells price the serving front door:

``live``
    The full stack — asyncio socket server, credit-based flow control,
    session pump, process-sharded fleet — driven by the zipf loadgen
    schedule at high speedup (so the runtime, not the pacing, is the
    limiter).  Measures sustained ingest events/sec and p50/p99 ship
    latency (enqueue → shipped to workers), then replays the recorded
    arrivals through an offline single-engine runtime and requires the
    outputs to be **byte-identical** — the whole serving stack must add
    nothing and lose nothing.

``overlap``
    The coordinator's pipelined command fan against the historical
    serial fan, on the same multi-worker fleet with the same inputs.
    The serial arm makes synchronous register/unregister round trips —
    each one lands right behind a freshly-shipped data run, so the
    coordinator blocks until the target worker has decoded and
    processed that run before the ack can arrive.  The overlapped arm
    submits lifecycle commands through the pipelined path
    (``submit_register``) and collects acks at the end, so the
    coordinator's encode proceeds while workers decode.  The **gated
    quantity is lifecycle blocking time**: seconds the coordinator
    spends stalled inside lifecycle calls plus the final ack
    collection.  Whole-run wall time and the full command path
    (lifecycle + stats barriers) are reported informationally but not
    gated — on a single-core runner the data pipeline serializes
    identically in both arms and the shared drain cost would only
    dilute the comparison with scheduler noise.  Trials are interleaved
    (serial, overlapped, serial, …) and each arm keeps its best
    lifecycle time; both arms must produce identical captured outputs,
    and the overlapped arm must beat serial on ≥2 worker shards.

Results land in ``BENCH_serve.json``.  Regenerate::

    PYTHONPATH=src python -m repro.cli bench-serve
    PYTHONPATH=src python -m repro.cli bench-serve --scale smoke  # CI

or run the standalone script ``benchmarks/bench_serve.py``.
"""

from __future__ import annotations

import json
import pickle
import time
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.runtime.config import RuntimeConfig, open_runtime
from repro.serve.drive import ServeSession
from repro.serve.ingest import IngestServer
from repro.serve.loadgen import run_loadgen, zipf_schedule
from repro.serve.replay import normalize_captured, replay_log, verify_equivalence
from repro.streams import Schema, StreamTuple

#: Pipelined lifecycle must cut coordinator blocking time by this factor.
OVERLAP_FLOOR = 2.0
SMOKE_OVERLAP_FLOOR = 1.5
#: Sustained socket-ingest floor, events/sec through the full stack.
LIVE_EPS_FLOOR = 1_000.0
SMOKE_LIVE_EPS_FLOOR = 300.0


@dataclass
class ServeScale:
    """Knobs controlling benchmark size."""

    name: str = "full"
    shards: int = 2
    # overlap cell
    runs: int = 200
    run_size: int = 512
    lifecycle_every: int = 3
    stats_every: int = 25
    trials: int = 3
    overlap_floor: float = OVERLAP_FLOOR
    # live cell
    epochs: int = 8
    events_per_epoch: int = 4_000
    epoch_seconds: float = 0.5
    speedup: float = 20.0
    live_eps_floor: float = LIVE_EPS_FLOOR
    seed: int = 0

    @classmethod
    def full(cls) -> "ServeScale":
        return cls()

    @classmethod
    def smoke(cls) -> "ServeScale":
        """Reduced scale for the CI smoke job."""
        return cls(
            name="smoke",
            runs=60,
            run_size=128,
            stats_every=15,
            trials=2,
            overlap_floor=SMOKE_OVERLAP_FLOOR,
            epochs=4,
            events_per_epoch=800,
            speedup=40.0,
            live_eps_floor=SMOKE_LIVE_EPS_FLOOR,
        )


# -- overlap cell -------------------------------------------------------------------


def _overlap_inputs(scale: ServeScale) -> list:
    """Precompute the run sequence once; both arms replay it verbatim."""
    schema = Schema.numbered(2)
    rng = np.random.default_rng(scale.seed)
    runs = []
    ts = 0
    for __ in range(scale.runs):
        values = rng.integers(0, 8, size=(scale.run_size, 2))
        run = []
        for row in values:
            ts += 1
            run.append(StreamTuple(schema, (int(row[0]), int(row[1])), ts))
        runs.append(run)
    return runs


def _overlap_arm(scale: ServeScale, runs: list, pipelined: bool) -> dict:
    """One timed pass: ship every run, interleaving lifecycle + stats.

    The operation sequence is identical in both arms — only the fan
    mechanics differ — so captured outputs must match exactly.
    """
    runtime = open_runtime(
        RuntimeConfig(
            sources={"S": Schema.numbered(2)},
            process=True,
            shards=scale.shards,
            capture_outputs=True,
        )
    )
    try:
        next_query = 0
        active: list[str] = []
        command_seconds = 0.0
        lifecycle_seconds = 0.0
        start = time.perf_counter()
        for i, run in enumerate(runs):
            runtime.process_batch("S", run)
            if i % scale.lifecycle_every == 0:
                # Lifecycle lands right behind a shipped run — the serving
                # pattern.  The sync path blocks until the target worker
                # has decoded and processed that run before it can ack;
                # the pipelined path enqueues behind it and moves on,
                # which is exactly the coordinator-encode / worker-decode
                # overlap this cell prices.  Alternate arrivals and
                # departures once a few queries are live (the churn
                # workloads' shape, at serve cadence).
                t0 = time.perf_counter()
                if len(active) >= 4:
                    victim = active.pop(0)
                    if pipelined:
                        runtime.submit_unregister(victim)
                    else:
                        runtime.unregister(victim)
                query_id = f"q{next_query}"
                predicate = next_query % 8
                if pipelined:
                    runtime.submit_register(
                        f"FROM S WHERE a0 == {predicate}", query_id
                    )
                else:
                    runtime.register(
                        f"FROM S WHERE a0 == {predicate}", query_id
                    )
                blocked = time.perf_counter() - t0
                command_seconds += blocked
                lifecycle_seconds += blocked
                active.append(query_id)
                next_query += 1
            if i % scale.stats_every == scale.stats_every - 1:
                t0 = time.perf_counter()
                runtime.shard_stats(pipelined=pipelined)
                command_seconds += time.perf_counter() - t0
        # Final collection: the pipelined arm settles its outstanding
        # acks here, so its deferred lifecycle cost is counted, not
        # hidden.  (Acks that arrived during earlier stats barriers were
        # already paid for inside those barrier waits — which both arms
        # count identically.)
        t0 = time.perf_counter()
        if pipelined:
            runtime.collect_lifecycle()
        blocked = time.perf_counter() - t0
        command_seconds += blocked
        lifecycle_seconds += blocked
        t0 = time.perf_counter()
        runtime.shard_stats(pipelined=pipelined)  # final barrier
        command_seconds += time.perf_counter() - t0
        elapsed = time.perf_counter() - start
        captured = normalize_captured(runtime.captured)
    finally:
        runtime.close()
    events = sum(len(run) for run in runs)
    return {
        "elapsed_seconds": elapsed,
        "command_seconds": command_seconds,
        "lifecycle_seconds": lifecycle_seconds,
        "events_per_sec": events / elapsed,
        "captured": captured,
    }


def run_overlap_cell(scale: ServeScale) -> dict:
    runs = _overlap_inputs(scale)
    best: dict[str, Optional[dict]] = {"serial": None, "overlapped": None}
    for __ in range(scale.trials):
        # Interleaved trials: machine drift hits both arms equally.
        for label, pipelined in (("serial", False), ("overlapped", True)):
            arm = _overlap_arm(scale, runs, pipelined)
            if (
                best[label] is None
                or arm["lifecycle_seconds"] < best[label]["lifecycle_seconds"]
            ):
                best[label] = arm
    serial, overlapped = best["serial"], best["overlapped"]
    if pickle.dumps(serial["captured"]) != pickle.dumps(
        overlapped["captured"]
    ):
        raise AssertionError(
            "pipelined command fan changed query outputs: serial and "
            "overlapped arms diverge on identical inputs"
        )
    speedup = serial["lifecycle_seconds"] / overlapped["lifecycle_seconds"]
    command_speedup = (
        serial["command_seconds"] / overlapped["command_seconds"]
    )
    outputs = sum(len(v) for v in serial["captured"].values())
    return {
        "shards": scale.shards,
        "runs": scale.runs,
        "run_size": scale.run_size,
        "lifecycle_every": scale.lifecycle_every,
        "stats_every": scale.stats_every,
        "trials": scale.trials,
        "serial_lifecycle_seconds": round(serial["lifecycle_seconds"], 4),
        "overlapped_lifecycle_seconds": round(
            overlapped["lifecycle_seconds"], 4
        ),
        "serial_command_seconds": round(serial["command_seconds"], 4),
        "overlapped_command_seconds": round(
            overlapped["command_seconds"], 4
        ),
        "serial_elapsed_seconds": round(serial["elapsed_seconds"], 4),
        "overlapped_elapsed_seconds": round(
            overlapped["elapsed_seconds"], 4
        ),
        "serial_events_per_sec": round(serial["events_per_sec"], 1),
        "overlapped_events_per_sec": round(overlapped["events_per_sec"], 1),
        "speedup": round(speedup, 3),
        "command_speedup": round(command_speedup, 3),
        "floor": scale.overlap_floor,
        "outputs_identical": True,
        "outputs": outputs,
    }


# -- live cell ----------------------------------------------------------------------


def run_live_cell(scale: ServeScale) -> dict:
    sources = {"S": Schema.numbered(2), "T": Schema.numbered(2)}
    runtime = open_runtime(
        RuntimeConfig(
            sources=sources,
            process=True,
            shards=scale.shards,
            capture_outputs=True,
        )
    )
    try:
        session = ServeSession(runtime, record=True, heartbeat_interval=0.25)
        for i in range(4):
            session.submit_register(f"FROM S WHERE a0 == {i}", f"s{i}")
            session.submit_register(f"FROM T WHERE a0 == {i + 4}", f"t{i}")
        schedule = zipf_schedule(
            ["S", "T"],
            epochs=scale.epochs,
            events_per_epoch=scale.events_per_epoch,
            epoch_seconds=scale.epoch_seconds,
            seed=scale.seed,
        )
        with IngestServer(session, port=0) as server:
            host, port = server.address
            client_stats = run_loadgen(
                host,
                port,
                schedule,
                sources,
                seed=scale.seed,
                speedup=scale.speedup,
            )
            ingest_stats = server.stats()
        report = session.finish()
        replayed = replay_log(session.log, sources)
        equivalence = verify_equivalence(
            runtime.captured, session.log, sources, replayed=replayed
        )
    finally:
        runtime.close()
    return {
        "shards": scale.shards,
        "schedule": "zipf",
        "epochs": scale.epochs,
        "events_per_epoch": scale.events_per_epoch,
        "speedup": scale.speedup,
        "sent_events": client_stats["sent_events"],
        "accepted_events": client_stats["accepted_events"],
        "credit_waits": client_stats["credit_waits"],
        "ingest": ingest_stats,
        "events_per_sec": round(report.events_per_second, 1),
        "floor": scale.live_eps_floor,
        "ship_p50_ms": round(report.ship_p50_ms, 3),
        "ship_p99_ms": round(report.ship_p99_ms, 3),
        "runs": report.runs,
        "lifecycle_ops": report.lifecycle_ops,
        "replay_identical": equivalence["identical"],
        "replay_outputs": equivalence["outputs"],
    }


# -- driver -------------------------------------------------------------------------


def run_benchmark(scale: ServeScale) -> dict:
    live = run_live_cell(scale)
    overlap = run_overlap_cell(scale)
    results = {
        "meta": {
            "benchmark": "live serving: sustained ingest + command overlap",
            "scale": scale.name,
            "shards": scale.shards,
            "regenerate": "PYTHONPATH=src python -m repro.cli bench-serve",
        },
        "headline": {
            "live_events_per_sec": live["events_per_sec"],
            "live_eps_floor": scale.live_eps_floor,
            "ship_p99_ms": live["ship_p99_ms"],
            "overlap_speedup": overlap["speedup"],
            "overlap_floor": scale.overlap_floor,
            "replay_identical": live["replay_identical"],
        },
        "cells": {"live": live, "overlap": overlap},
    }
    if not live["replay_identical"]:
        raise AssertionError(
            "serve outputs must be byte-identical to the offline replay"
        )
    if live["events_per_sec"] < scale.live_eps_floor:
        raise AssertionError(
            f"sustained ingest must clear {scale.live_eps_floor:,.0f} "
            f"events/sec, measured {live['events_per_sec']:,.1f}"
        )
    if overlap["speedup"] < scale.overlap_floor:
        raise AssertionError(
            f"pipelined lifecycle must cut coordinator blocking time by ≥"
            f"{scale.overlap_floor:.2f}x on {scale.shards} shards, "
            f"measured {overlap['speedup']:.3f}x"
        )
    return results


def render(results: dict) -> str:
    live = results["cells"]["live"]
    overlap = results["cells"]["overlap"]
    return "\n".join(
        [
            f"serve benchmark ({results['meta']['scale']} scale, "
            f"{results['meta']['shards']} worker shards)",
            f"live: {live['events_per_sec']:>10,.1f} ev/s sustained "
            f"(floor {live['floor']:,.0f}), ship p50 "
            f"{live['ship_p50_ms']:.2f}ms p99 {live['ship_p99_ms']:.2f}ms, "
            f"{live['credit_waits']} flow-control waits, replay "
            f"{'identical' if live['replay_identical'] else 'DIVERGED'}",
            f"overlap: lifecycle blocking serial "
            f"{overlap['serial_lifecycle_seconds']:.3f}s vs overlapped "
            f"{overlap['overlapped_lifecycle_seconds']:.3f}s -> "
            f"{overlap['speedup']:.3f}x (floor {overlap['floor']:.2f}x, "
            f"command path {overlap['command_speedup']:.3f}x), "
            f"outputs identical over {overlap['outputs']} captured tuples",
        ]
    )


def main(argv: Optional[list[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="live serving benchmark (sustained ingest + overlap)"
    )
    parser.add_argument(
        "--scale",
        choices=["full", "smoke"],
        default="full",
        help="smoke: reduced event counts for CI",
    )
    parser.add_argument(
        "--output",
        default="BENCH_serve.json",
        help="where to write the JSON results",
    )
    args = parser.parse_args(argv)
    scale = ServeScale.smoke() if args.scale == "smoke" else ServeScale.full()
    try:
        results = run_benchmark(scale)
    except AssertionError as error:
        print(f"FAIL: serve benchmark exit criterion violated: {error}")
        return 1
    with open(args.output, "w") as handle:
        json.dump(results, handle, indent=2)
        handle.write("\n")
    print(render(results))
    print(f"wrote {args.output}")
    return 0
