"""Engine throughput benchmark: batched vs per-tuple dispatch.

Measures events/sec across three workloads — the zipf selection workload
(single stream, Zipf-drawn predicate constants: the m-op sharing sweet
spot), the perfmon hybrid workload (§5.3: a diamond-shaped plan the batch
safety analysis must refuse to batch, so batched and per-tuple throughput
coincide there by design), and the churn workload (an online serve where
every migration lands on a batch boundary) — for naive vs optimized plans
and per-tuple vs batched dispatch.

Every cell re-checks output equivalence: per-query output counts must be
identical across dispatch modes, otherwise the run aborts.  Results land in
``BENCH_throughput.json`` — the repo's performance trajectory baseline.

Regenerate::

    PYTHONPATH=src python -m repro.cli bench-throughput
    PYTHONPATH=src python -m repro.cli bench-throughput --scale smoke  # CI

or run the standalone script ``benchmarks/bench_throughput.py``.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.optimizer import Optimizer
from repro.core.plan import QueryPlan
from repro.engine.executor import StreamEngine
from repro.engine.metrics import RunStats
from repro.operators.expressions import attr, lit
from repro.operators.predicates import Comparison
from repro.operators.select import Selection
from repro.runtime.config import open_runtime
from repro.streams.sources import StreamSource
from repro.streams.tuples import StreamTuple
from repro.workloads.churn import ChurnWorkload, drive, drive_batched
from repro.workloads.perfmon import PerfmonDataset
from repro.workloads.synthetic import synthetic_schema
from repro.workloads.templates import HybridWorkload
from repro.workloads.zipf import ZipfSampler

#: Acceptance floor: batched dispatch on the optimized zipf workload must
#: clear this multiple of per-tuple throughput at full scale.
TARGET_SPEEDUP = 3.0
#: Relaxed floor for the CI smoke run (small event counts are noisy).
SMOKE_SPEEDUP = 1.5


@dataclass
class ThroughputScale:
    """Knobs controlling benchmark size."""

    name: str = "full"
    zipf_events: int = 30_000
    zipf_queries: int = 300
    hybrid_processes: int = 24
    hybrid_seconds: int = 240
    hybrid_queries: int = 6
    churn_events: int = 3_000
    churn_initial: int = 6
    repeats: int = 3
    max_batch: int = 4096
    min_speedup: float = TARGET_SPEEDUP

    @classmethod
    def full(cls) -> "ThroughputScale":
        return cls()

    @classmethod
    def smoke(cls) -> "ThroughputScale":
        """Reduced scale for the CI smoke job."""
        return cls(
            name="smoke",
            zipf_events=6_000,
            zipf_queries=120,
            hybrid_processes=12,
            hybrid_seconds=90,
            hybrid_queries=4,
            churn_events=800,
            churn_initial=4,
            repeats=2,
            min_speedup=SMOKE_SPEEDUP,
        )


def _cell(stats: RunStats) -> dict:
    return {
        "events_per_sec": round(stats.throughput, 1),
        "elapsed_seconds": round(stats.elapsed_seconds, 6),
        "input_events": stats.input_events,
        "output_events": stats.output_events,
        "physical_events": stats.physical_events,
    }


def _require_equivalent(name: str, per_tuple: RunStats, batched: RunStats) -> None:
    if per_tuple.outputs_by_query != batched.outputs_by_query:
        raise AssertionError(
            f"{name}: batched dispatch diverged from per-tuple outputs "
            f"({per_tuple.outputs_by_query} != {batched.outputs_by_query})"
        )


# -- zipf selection workload ---------------------------------------------------------


def zipf_selection_plan(
    num_queries: int, optimize: bool, seed: int = 7
) -> tuple[QueryPlan, object]:
    """``num_queries`` selections with Zipf-drawn equality constants over one
    stream — the single-stream m-op sharing workload (paper §5.1 parameters:
    constants Zipf(1.5) over a domain of 1000)."""
    schema = synthetic_schema()
    rng = np.random.default_rng(seed)
    constants = ZipfSampler(0, 999, 1.5, rng).sample(num_queries)
    plan = QueryPlan()
    source = plan.add_source("S", schema)
    for index, constant in enumerate(constants):
        query_id = f"q{index}"
        out = plan.add_operator(
            Selection(Comparison(attr("a0"), "==", lit(int(constant)))),
            [source],
            query_id=query_id,
        )
        plan.mark_output(out, query_id)
    if optimize:
        Optimizer().optimize(plan)
    return plan, source


def zipf_event_tuples(count: int, seed: int = 8) -> list[StreamTuple]:
    schema = synthetic_schema()
    rng = np.random.default_rng(seed)
    values = rng.integers(0, 1000, size=(count, len(schema)))
    return [
        StreamTuple(schema, tuple(int(v) for v in values[i]), i)
        for i in range(count)
    ]


def _measure_engine(
    plan_factory, sources_factory, batching: bool, scale: ThroughputScale
) -> RunStats:
    """Best-of-``repeats`` run on fresh executors (fresh operator state)."""
    best: Optional[RunStats] = None
    for __ in range(scale.repeats):
        plan, name_map = plan_factory()
        engine = StreamEngine(
            plan, batching=batching, max_batch=scale.max_batch
        )
        stats = engine.run(sources_factory(plan, name_map))
        if best is None or stats.throughput > best.throughput:
            best = stats
    return best


def _bench_plan_cells(
    name: str, plan_factory, sources_factory, scale: ThroughputScale
) -> dict:
    """One per-tuple-vs-batched comparison cell pair + equivalence check."""
    cells: dict = {}
    stats_by_mode = {}
    for mode, batching in (("per_tuple", False), ("batched", True)):
        stats = _measure_engine(plan_factory, sources_factory, batching, scale)
        cells[mode] = _cell(stats)
        stats_by_mode[mode] = stats
    _require_equivalent(
        name, stats_by_mode["per_tuple"], stats_by_mode["batched"]
    )
    cells["batched_speedup"] = round(
        stats_by_mode["batched"].throughput
        / max(stats_by_mode["per_tuple"].throughput, 1e-9),
        2,
    )
    return cells


def bench_zipf(scale: ThroughputScale) -> dict:
    tuples = zipf_event_tuples(scale.zipf_events)
    result: dict = {
        "events": scale.zipf_events,
        "queries": scale.zipf_queries,
        "plans": {},
    }
    for plan_name, optimize in (("naive", False), ("optimized", True)):
        result["plans"][plan_name] = _bench_plan_cells(
            f"zipf/{plan_name}",
            lambda: zipf_selection_plan(scale.zipf_queries, optimize),
            lambda plan, source: [StreamSource(plan.channel_of(source), tuples)],
            scale,
        )
    return result


# -- perfmon hybrid workload ---------------------------------------------------------


def bench_hybrid(scale: ThroughputScale) -> dict:
    dataset = PerfmonDataset(
        processes=scale.hybrid_processes,
        duration_seconds=scale.hybrid_seconds,
        seed=3,
    )
    workload = HybridWorkload(dataset, num_queries=scale.hybrid_queries)
    result: dict = {
        "events": scale.hybrid_processes * scale.hybrid_seconds,
        "queries": scale.hybrid_queries,
        "plans": {},
    }
    for plan_name, optimize in (("naive", False), ("optimized", True)):
        result["plans"][plan_name] = _bench_plan_cells(
            f"hybrid/{plan_name}",
            lambda: workload.rumor_plan(channels=True, optimize=optimize),
            lambda plan, name_map: workload.sources(
                plan, name_map, scale.hybrid_seconds
            ),
            scale,
        )
    return result


# -- churn workload ------------------------------------------------------------------


def _serve_churn(scale: ThroughputScale, batched: bool) -> tuple[RunStats, float]:
    workload = ChurnWorkload(
        arrival_rate=0.02,
        mean_lifetime=600.0,
        horizon=scale.churn_events,
        initial_queries=scale.churn_initial,
        seed=7,
    )
    runtime = open_runtime(sources={"S": workload.schema, "T": workload.schema})
    driver = drive_batched if batched else drive
    started = time.perf_counter()
    for __ in driver(runtime, workload.stream_events(), workload.schedule()):
        pass
    elapsed = time.perf_counter() - started
    return runtime.stats, elapsed


def bench_churn(scale: ThroughputScale) -> dict:
    result: dict = {"events": scale.churn_events, "modes": {}}
    stats_by_mode = {}
    for mode, batched in (("per_tuple", False), ("batched", True)):
        best_stats, best_elapsed = None, float("inf")
        for __ in range(scale.repeats):
            stats, elapsed = _serve_churn(scale, batched)
            if elapsed < best_elapsed:
                best_stats, best_elapsed = stats, elapsed
        cell = _cell(best_stats)
        cell["events_per_sec"] = round(
            best_stats.input_events / max(best_elapsed, 1e-9), 1
        )
        cell["elapsed_seconds"] = round(best_elapsed, 6)
        cell["migrations"] = best_stats.migrations
        result["modes"][mode] = cell
        stats_by_mode[mode] = best_stats
    _require_equivalent(
        "churn", stats_by_mode["per_tuple"], stats_by_mode["batched"]
    )
    result["modes"]["batched_speedup"] = round(
        result["modes"]["batched"]["events_per_sec"]
        / max(result["modes"]["per_tuple"]["events_per_sec"], 1e-9),
        2,
    )
    return result


# -- entry points --------------------------------------------------------------------


def run_benchmark(scale: ThroughputScale) -> dict:
    zipf = bench_zipf(scale)
    hybrid = bench_hybrid(scale)
    churn = bench_churn(scale)
    headline = zipf["plans"]["optimized"]["batched_speedup"]
    results = {
        "meta": {
            "benchmark": "engine throughput: batched vs per-tuple dispatch",
            "scale": scale.name,
            "max_batch": scale.max_batch,
            "repeats": scale.repeats,
            "regenerate": "PYTHONPATH=src python -m repro.cli bench-throughput",
        },
        "headline": {
            "optimized_zipf_batched_speedup": headline,
            "target": scale.min_speedup,
        },
        "workloads": {
            "zipf": zipf,
            "perfmon_hybrid": hybrid,
            "churn": churn,
        },
    }
    if headline < scale.min_speedup:
        raise AssertionError(
            f"batched dispatch must be ≥{scale.min_speedup}x per-tuple on the "
            f"optimized zipf workload, measured {headline}x"
        )
    return results


def render(results: dict) -> str:
    lines = [
        f"throughput benchmark ({results['meta']['scale']} scale, "
        f"max_batch={results['meta']['max_batch']})",
        f"{'workload':<16} {'plan':<10} {'per-tuple ev/s':>15} "
        f"{'batched ev/s':>14} {'speedup':>8}",
    ]
    for workload, data in results["workloads"].items():
        if "plans" in data:
            for plan_name, cells in data["plans"].items():
                lines.append(
                    f"{workload:<16} {plan_name:<10} "
                    f"{cells['per_tuple']['events_per_sec']:>15,.0f} "
                    f"{cells['batched']['events_per_sec']:>14,.0f} "
                    f"{cells['batched_speedup']:>7.2f}x"
                )
        else:
            modes = data["modes"]
            lines.append(
                f"{workload:<16} {'live':<10} "
                f"{modes['per_tuple']['events_per_sec']:>15,.0f} "
                f"{modes['batched']['events_per_sec']:>14,.0f} "
                f"{modes['batched_speedup']:>7.2f}x"
            )
    lines.append(
        f"headline: optimized zipf batched speedup "
        f"{results['headline']['optimized_zipf_batched_speedup']}x "
        f"(target ≥{results['headline']['target']}x)"
    )
    return "\n".join(lines)


def main(argv: Optional[list[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="engine throughput benchmark (batched vs per-tuple)"
    )
    parser.add_argument(
        "--scale", choices=["full", "smoke"], default="full",
        help="smoke: reduced event counts for CI",
    )
    parser.add_argument(
        "--output", default="BENCH_throughput.json",
        help="where to write the JSON results",
    )
    args = parser.parse_args(argv)
    scale = (
        ThroughputScale.smoke() if args.scale == "smoke"
        else ThroughputScale.full()
    )
    results = run_benchmark(scale)
    with open(args.output, "w") as handle:
        json.dump(results, handle, indent=2)
        handle.write("\n")
    print(render(results))
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
