"""Telemetry overhead benchmark: observed vs unobserved dispatch.

The telemetry subsystem promises to be cheap enough to leave on: per-m-op
counters on the batched hot path, busy-time sampling every Kth call, and
periodic state-size probes.  This benchmark prices that promise on the
workload where overhead is hardest to hide — the optimized zipf selection
plan under batched dispatch, where each batch fans out across many shared
m-ops and the per-record bookkeeping runs once per (m-op, batch).

Trials are **interleaved** (off, on, off, on, …) so machine drift during
the run — CI neighbours, thermal throttling — hits both modes equally, and
each mode keeps its best trial.  Overhead is the relative throughput loss
of the observed best against the unobserved best; the run fails if it
exceeds the scale's ceiling (5%).  Each comparison also re-checks that the
observed engine produced identical per-query outputs (observation must
never change results) and that the per-m-op tuple accounting reconciles
with the engine's physical counters.

Results land in ``BENCH_obs.json``.  Regenerate::

    PYTHONPATH=src python -m repro.cli bench-obs
    PYTHONPATH=src python -m repro.cli bench-obs --scale smoke  # CI

or run the standalone script ``benchmarks/bench_obs_overhead.py``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Optional

from repro.bench.throughput import zipf_event_tuples, zipf_selection_plan
from repro.engine.executor import StreamEngine
from repro.engine.metrics import RunStats
from repro.streams.sources import StreamSource

#: Acceptance ceiling: observed dispatch may cost at most this fraction of
#: unobserved throughput on the batched zipf workload.
MAX_OVERHEAD = 0.05
#: Relaxed ceiling for the CI smoke run (small event counts are noisy).
SMOKE_MAX_OVERHEAD = 0.08


@dataclass
class ObsScale:
    """Knobs controlling benchmark size."""

    name: str = "full"
    events: int = 30_000
    queries: int = 300
    trials: int = 5
    max_batch: int = 4096
    max_overhead: float = MAX_OVERHEAD

    @classmethod
    def full(cls) -> "ObsScale":
        return cls()

    @classmethod
    def smoke(cls) -> "ObsScale":
        """Reduced scale for the CI smoke job."""
        return cls(
            name="smoke",
            events=8_000,
            queries=120,
            trials=3,
            max_overhead=SMOKE_MAX_OVERHEAD,
        )


def _run_once(
    scale: ObsScale, tuples, batching: bool, observe: bool
) -> tuple[RunStats, dict]:
    """One fresh-engine run; returns (stats, mop_stats)."""
    plan, source = zipf_selection_plan(scale.queries, optimize=True)
    engine = StreamEngine(
        plan, batching=batching, max_batch=scale.max_batch, observe=observe
    )
    stats = engine.run([StreamSource(plan.channel_of(source), tuples)])
    return stats, engine.mop_stats()


def _check_consistency(stats: RunStats, mop_stats: dict) -> None:
    tuples_out = sum(record["tuples_out"] for record in mop_stats.values())
    if stats.physical_events != stats.physical_input_events + tuples_out:
        raise AssertionError(
            f"m-op accounting does not reconcile: physical={stats.physical_events}, "
            f"inputs={stats.physical_input_events}, mop outputs={tuples_out}"
        )


def _measure_mode(scale: ObsScale, tuples, batching: bool) -> dict:
    """Interleaved observed/unobserved trials; best throughput per side."""
    best = {False: None, True: None}
    reference_outputs = None
    for __ in range(scale.trials):
        for observe in (False, True):
            stats, mop_stats = _run_once(scale, tuples, batching, observe)
            if observe:
                _check_consistency(stats, mop_stats)
            if reference_outputs is None:
                reference_outputs = stats.outputs_by_query
            elif stats.outputs_by_query != reference_outputs:
                raise AssertionError(
                    "observation changed per-query outputs — telemetry must "
                    "be read-only"
                )
            current = best[observe]
            if current is None or stats.throughput > current.throughput:
                best[observe] = stats
    overhead = (
        best[False].throughput / max(best[True].throughput, 1e-9) - 1.0
    )
    return {
        "unobserved_events_per_sec": round(best[False].throughput, 1),
        "observed_events_per_sec": round(best[True].throughput, 1),
        "overhead": round(overhead, 4),
    }


def run_benchmark(scale: ObsScale) -> dict:
    tuples = zipf_event_tuples(scale.events)
    batched = _measure_mode(scale, tuples, batching=True)
    per_tuple = _measure_mode(scale, tuples, batching=False)
    results = {
        "meta": {
            "benchmark": "telemetry overhead: observed vs unobserved dispatch",
            "scale": scale.name,
            "events": scale.events,
            "queries": scale.queries,
            "trials": scale.trials,
            "max_batch": scale.max_batch,
            "regenerate": "PYTHONPATH=src python -m repro.cli bench-obs",
        },
        "headline": {
            "batched_overhead": batched["overhead"],
            "ceiling": scale.max_overhead,
        },
        "modes": {
            "batched": batched,
            # Informational: the per-tuple reference path pays per-tuple
            # bookkeeping and is not the production dispatch mode.
            "per_tuple": per_tuple,
        },
    }
    if batched["overhead"] > scale.max_overhead:
        raise AssertionError(
            f"telemetry overhead on batched dispatch must stay ≤"
            f"{scale.max_overhead:.0%}, measured {batched['overhead']:.2%}"
        )
    return results


def render(results: dict) -> str:
    lines = [
        f"telemetry overhead benchmark ({results['meta']['scale']} scale, "
        f"{results['meta']['events']} events, "
        f"{results['meta']['queries']} queries)",
        f"{'dispatch':<12} {'unobserved ev/s':>16} {'observed ev/s':>14} "
        f"{'overhead':>9}",
    ]
    for mode, cells in results["modes"].items():
        lines.append(
            f"{mode:<12} {cells['unobserved_events_per_sec']:>16,.0f} "
            f"{cells['observed_events_per_sec']:>14,.0f} "
            f"{cells['overhead']:>8.2%}"
        )
    lines.append(
        f"headline: batched overhead "
        f"{results['headline']['batched_overhead']:.2%} "
        f"(ceiling {results['headline']['ceiling']:.0%})"
    )
    return "\n".join(lines)


def main(argv: Optional[list[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="telemetry overhead benchmark (observed vs unobserved)"
    )
    parser.add_argument(
        "--scale", choices=["full", "smoke"], default="full",
        help="smoke: reduced event counts for CI",
    )
    parser.add_argument(
        "--output", default="BENCH_obs.json",
        help="where to write the JSON results",
    )
    args = parser.parse_args(argv)
    scale = ObsScale.smoke() if args.scale == "smoke" else ObsScale.full()
    results = run_benchmark(scale)
    with open(args.output, "w") as handle:
        json.dump(results, handle, indent=2)
        handle.write("\n")
    print(render(results))
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
