"""Benchmark harness regenerating every figure of the evaluation (§5).

- :mod:`~repro.bench.harness` — measurement helpers, series containers,
  SASE-style normalization and table rendering,
- :mod:`~repro.bench.figures` — one driver per paper figure
  (9a–9d, 10a–10d, 11a–11b), runnable as
  ``python -m repro.bench.figures <figure> [--full]``.

``figures`` is intentionally not imported here so that
``python -m repro.bench.figures`` does not trigger a double import.
"""

from repro.bench.harness import (
    BenchScale,
    Series,
    measure_cayuga,
    measure_rumor,
    normalize,
    render_table,
)

__all__ = [
    "BenchScale",
    "Series",
    "measure_rumor",
    "measure_cayuga",
    "normalize",
    "render_table",
]
