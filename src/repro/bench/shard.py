"""Sharded execution benchmark: the horizontal multiplier over batching.

Measures the :class:`~repro.shard.ShardedEngine` against the single-engine
batched baseline on the **partitionable zipf workload**: ``k`` independent
source streams, each with its own set of Zipf-constant selection queries.
After optimization the plan decomposes into ``k`` entry-channel connected
components, the unit the shard planner places.

Two effects stack:

- **merge restructuring** — the single engine must drain one global
  timestamp-ordered merge; with ``k`` interleaved sources every same-channel
  run has length 1, so batched dispatch degenerates to the per-tuple
  interpreter.  Each shard drains its own source through the single-source
  bulk path with full-length runs.  This effect is real on a single core —
  it is why the inline (same-process, sequential) sharded mode already beats
  the single engine.
- **parallel placement** — on multi-core hosts with the ``fork`` start
  method, shards run as worker processes concurrently.

Every cell re-checks that the sharded run's per-query outputs are identical
to the single-engine baseline.  Results land in ``BENCH_shard.json``; the
run fails if 4-shard aggregate throughput drops below the scale's floor
(2x at full scale) over the single-engine batched baseline.

Regenerate::

    PYTHONPATH=src python -m repro.cli bench-shard
    PYTHONPATH=src python -m repro.cli bench-shard --scale smoke   # CI

or run the standalone script ``benchmarks/bench_shard.py``.
"""

from __future__ import annotations

import json
import multiprocessing
import time
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.optimizer import Optimizer
from repro.core.plan import QueryPlan
from repro.engine.executor import StreamEngine
from repro.engine.metrics import RunStats
from repro.operators.expressions import attr, lit, right
from repro.operators.predicates import Comparison, DurationWithin, conjunction
from repro.operators.select import Selection
from repro.operators.sequence import Sequence
from repro.runtime.config import open_runtime
from repro.shard import ShardedEngine, fork_available
from repro.streams.columns import ColumnBatch
from repro.streams.sources import ColumnRunSource, StreamSource
from repro.streams.tuples import StreamTuple
from repro.workloads.churn import ChurnWorkload, drive_batched, drive_sharded
from repro.workloads.synthetic import synthetic_schema
from repro.workloads.zipf import ZipfSampler

#: Acceptance floor: 4-shard aggregate throughput over the single-engine
#: batched baseline on the partitionable zipf workload, full scale.
TARGET_SPEEDUP = 2.0
#: Relaxed floor for the CI smoke run (small event counts are noisy).
SMOKE_SPEEDUP = 1.3
#: Data-plane acceptance floor: process-mode serving over the columnar
#: transport must at least match the 4-shard *inline* drain (full scale).
#: Startup (fork + ready handshake) is excluded — ``spawn_seconds`` is
#: reported separately — so this compares steady-state drains.
TARGET_PROCESS_RATIO = 1.0
#: Relaxed ratio for the CI smoke run: at smoke event counts a single
#: queue/ring hop is a visible fraction of the whole drain.
SMOKE_PROCESS_RATIO = 0.5
#: Bridge-cut acceptance floor: the 4-shard serve of the bridge workload
#: with splitting enabled must beat the forced whole-component placement
#: by this multiple (ISSUE 10 acceptance: ≥ 1.5x at full scale).
TARGET_BRIDGE_RATIO = 1.5
#: Relaxed bridge floor for the CI smoke run — split may never fall below
#: the unsplit placement, but the 1.5x margin is reserved for full scale.
SMOKE_BRIDGE_RATIO = 1.0


@dataclass
class ShardScale:
    """Knobs controlling benchmark size."""

    name: str = "full"
    zipf_sources: int = 4
    zipf_queries_per_source: int = 75
    zipf_events: int = 40_000
    churn_events: int = 2_000
    churn_initial: int = 6
    churn_shards: int = 2
    bridge_queries_per_source: int = 150
    bridge_post_queries: int = 10
    bridge_events: int = 40_000
    repeats: int = 3
    max_batch: int = 4096
    min_speedup: float = TARGET_SPEEDUP
    min_process_ratio: float = TARGET_PROCESS_RATIO
    min_bridge_ratio: float = TARGET_BRIDGE_RATIO

    @classmethod
    def full(cls) -> "ShardScale":
        return cls()

    @classmethod
    def smoke(cls) -> "ShardScale":
        """Reduced scale for the CI smoke job."""
        return cls(
            name="smoke",
            zipf_sources=4,
            zipf_queries_per_source=40,
            zipf_events=8_000,
            churn_events=600,
            churn_initial=4,
            bridge_events=8_000,
            repeats=2,
            min_speedup=SMOKE_SPEEDUP,
            min_process_ratio=SMOKE_PROCESS_RATIO,
            min_bridge_ratio=SMOKE_BRIDGE_RATIO,
        )


# -- partitionable zipf workload -----------------------------------------------------


def partitionable_zipf_plan(
    num_sources: int, queries_per_source: int, seed: int = 7
) -> tuple[QueryPlan, list]:
    """``num_sources`` independent streams, each with its own Zipf-constant
    selection set — optimizes to one predicate-index m-op per source, i.e.
    ``num_sources`` connected components."""
    schema = synthetic_schema()
    rng = np.random.default_rng(seed)
    plan = QueryPlan()
    sources = [plan.add_source(f"S{i}", schema) for i in range(num_sources)]
    for index, source in enumerate(sources):
        constants = ZipfSampler(0, 999, 1.5, rng).sample(queries_per_source)
        for position, constant in enumerate(constants):
            query_id = f"q{index}_{position}"
            out = plan.add_operator(
                Selection(Comparison(attr("a0"), "==", lit(int(constant)))),
                [source],
                query_id=query_id,
            )
            plan.mark_output(out, query_id)
    Optimizer().optimize(plan)
    return plan, sources


def interleaved_zipf_tuples(
    num_sources: int, count: int, seed: int = 8
) -> list[list[StreamTuple]]:
    """Per-source tuple lists with globally interleaved timestamps
    (tuple ``ts`` goes to source ``ts % k`` — the adversarial case for the
    single engine's run coalescing, the natural case for sharding)."""
    schema = synthetic_schema()
    rng = np.random.default_rng(seed)
    values = rng.integers(0, 1000, size=(count, len(schema)))
    per_source: list[list[StreamTuple]] = [[] for __ in range(num_sources)]
    for ts in range(count):
        per_source[ts % num_sources].append(
            StreamTuple(schema, tuple(int(v) for v in values[ts]), ts)
        )
    return per_source


def _make_sources(plan, sources, per_source):
    return [
        StreamSource(plan.channel_of(source), tuples)
        for source, tuples in zip(sources, per_source)
    ]


def _require_equivalent(name: str, baseline: RunStats, candidate: RunStats) -> None:
    if baseline.outputs_by_query != candidate.outputs_by_query:
        raise AssertionError(
            f"{name}: sharded outputs diverged from the single-engine "
            f"baseline"
        )
    if baseline.input_events != candidate.input_events:
        raise AssertionError(
            f"{name}: sharded input accounting diverged "
            f"({baseline.input_events} != {candidate.input_events})"
        )


def bench_partitionable_zipf(scale: ShardScale) -> dict:
    per_source = interleaved_zipf_tuples(scale.zipf_sources, scale.zipf_events)
    result: dict = {
        "sources": scale.zipf_sources,
        "queries": scale.zipf_sources * scale.zipf_queries_per_source,
        "events": scale.zipf_events,
        "cells": {},
    }

    def build():
        return partitionable_zipf_plan(
            scale.zipf_sources, scale.zipf_queries_per_source
        )

    # Single-engine batched baseline.
    best_baseline: Optional[RunStats] = None
    for __ in range(scale.repeats):
        plan, sources = build()
        engine = StreamEngine(plan, max_batch=scale.max_batch)
        stats = engine.run(_make_sources(plan, sources, per_source))
        if best_baseline is None or stats.throughput > best_baseline.throughput:
            best_baseline = stats
    result["cells"]["single_batched"] = {
        "events_per_sec": round(best_baseline.throughput, 1),
        "elapsed_seconds": round(best_baseline.elapsed_seconds, 6),
        "input_events": best_baseline.input_events,
        "output_events": best_baseline.output_events,
    }

    shard_counts = sorted({1, 2, 4, scale.zipf_sources})
    for n_shards in shard_counts:
        best = None
        mode = None
        for __ in range(scale.repeats):
            plan, sources = build()
            sharded = ShardedEngine(
                plan, n_shards, max_batch=scale.max_batch
            )
            run = sharded.run(_make_sources(plan, sources, per_source))
            if best is None or run.throughput > best.throughput:
                best, mode = run, run.mode
        aggregate = best.aggregate
        _require_equivalent(
            f"zipf/shards={n_shards}", best_baseline, aggregate
        )
        result["cells"][f"sharded_{n_shards}"] = {
            "events_per_sec": round(best.throughput, 1),
            "wall_seconds": round(best.wall_seconds, 6),
            "busy_seconds": round(best.busy_seconds, 6),
            "mode": mode,
            "output_events": aggregate.output_events,
            "speedup_vs_single_batched": round(
                best.throughput / max(best_baseline.throughput, 1e-9), 2
            ),
        }

    # Process-mode data-plane cells: 4 forked workers behind the wire
    # router, once over the legacy pickle wire and once over the columnar
    # plane (packed columns + shared-memory rings), fed by columnar-native
    # sources so nothing materializes rows on the way in.  wall_seconds is
    # the drain only; startup is reported as spawn_seconds.
    def _columnar_sources(plan, sources):
        built = []
        for source, tuples in zip(sources, per_source):
            channel = plan.channel_of(source)
            batch = ColumnBatch.from_rows(
                tuples[0].schema, tuples, channel.full_mask
            )
            built.append(ColumnRunSource(channel, batch))
        return built

    if fork_available():
        for plane in ("pickle", "columnar"):
            best = None
            for __ in range(scale.repeats):
                plan, sources = build()
                sharded = ShardedEngine(
                    plan, 4, parallel=True, feed="router",
                    max_batch=scale.max_batch, data_plane=plane,
                )
                feed_sources = (
                    _columnar_sources(plan, sources)
                    if plane == "columnar"
                    else _make_sources(plan, sources, per_source)
                )
                run = sharded.run(feed_sources)
                if best is None or run.throughput > best.throughput:
                    best = run
            aggregate = best.aggregate
            _require_equivalent(
                f"zipf/process_{plane}", best_baseline, aggregate
            )
            result["cells"][f"sharded_4_process_{plane}"] = {
                "events_per_sec": round(best.throughput, 1),
                "wall_seconds": round(best.wall_seconds, 6),
                "spawn_seconds": round(best.spawn_seconds, 6),
                "busy_seconds": round(best.busy_seconds, 6),
                "mode": best.mode,
                "data_plane": plane,
                "output_events": aggregate.output_events,
                "speedup_vs_single_batched": round(
                    best.throughput / max(best_baseline.throughput, 1e-9), 2
                ),
            }
    return result


# -- bridge workload: split vs forced whole-component placement ----------------------


def bridge_plan(scale: ShardScale, seed: int = 11) -> tuple[QueryPlan, list]:
    """Two bridge-shaped components over four sources.

    Per component: a heavy Zipf-constant selection cluster over the *up*
    source, a selective bridge selection whose derived channel feeds a
    two-input sequence with the *down* source, and a set of post-selections
    on the sequence's (low-volume) output.  Without bridge cuts each
    component is an unsplittable atom: one engine must drain both of its
    sources through the global timestamp merge, so every same-channel run
    degenerates to length 1 and the heavy cluster falls off the batched
    fast path.  The cut re-homes the cluster onto its own single-source
    shard — full-length runs — and relays the bridge channel.

    The plan is deliberately left unoptimized: sharable-selection merging
    would fold the bridge producer onto the cluster's shared masked
    channel, which the planner correctly refuses to cut.
    """
    schema = synthetic_schema()
    rng = np.random.default_rng(seed)
    plan = QueryPlan()
    handles = [plan.add_source(f"S{i}", schema) for i in range(4)]
    for component in range(2):
        up, down = handles[2 * component], handles[2 * component + 1]
        constants = ZipfSampler(0, 999, 1.5, rng).sample(
            scale.bridge_queries_per_source
        )
        for position, constant in enumerate(constants):
            query_id = f"q{component}_{position}"
            out = plan.add_operator(
                Selection(Comparison(attr("a0"), "==", lit(int(constant)))),
                [up],
                query_id=query_id,
            )
            plan.mark_output(out, query_id)
        bridge = plan.add_operator(
            Selection(Comparison(attr("a1"), "<", lit(60))),
            [up],
            query_id=f"qb{component}",
        )
        plan.mark_output(bridge, f"qb{component}")
        seq = plan.add_operator(
            Sequence(
                conjunction(
                    [DurationWithin(5), Comparison(right("a0"), "<", lit(500))]
                )
            ),
            [bridge, down],
            query_id=f"qs{component}",
        )
        plan.mark_output(seq, f"qs{component}")
        for position in range(scale.bridge_post_queries):
            query_id = f"qp{component}_{position}"
            out = plan.add_operator(
                Selection(Comparison(attr("a2"), "==", lit(position))),
                [seq],
                query_id=query_id,
            )
            plan.mark_output(out, query_id)
    return plan, handles


def bench_bridge(scale: ShardScale) -> dict:
    """Time the 4-shard bridge serve split vs unsplit; verify identity.

    ``sharded_4_bridge_unsplit`` forces whole-component placement
    (``split=False``, the pre-relay behaviour); ``sharded_4_bridge_split``
    lets the planner cut each oversized component at its bridge channel.
    Both data planes are additionally checked byte-identical against the
    single batched engine over forked workers (identity only, not timed).
    """
    per_source = interleaved_zipf_tuples(4, scale.bridge_events, seed=13)
    result: dict = {
        "sources": 4,
        "components": 2,
        "queries": 2
        * (scale.bridge_queries_per_source + scale.bridge_post_queries + 2),
        "events": scale.bridge_events,
        "cells": {},
    }

    plan, handles = bridge_plan(scale)
    baseline_engine = StreamEngine(
        plan, capture_outputs=True, max_batch=scale.max_batch
    )
    baseline = baseline_engine.run(_make_sources(plan, handles, per_source))
    baseline_captured = baseline_engine.captured
    result["cells"]["single_batched"] = {
        "events_per_sec": round(baseline.throughput, 1),
        "elapsed_seconds": round(baseline.elapsed_seconds, 6),
        "input_events": baseline.input_events,
        "output_events": baseline.output_events,
    }

    def check_identity(name: str, run, engine) -> None:
        _require_equivalent(name, baseline, run.aggregate)
        if engine.captured != baseline_captured:
            raise AssertionError(
                f"{name}: captured outputs diverged from the single-engine "
                f"baseline"
            )

    for split in (False, True):
        cell = "sharded_4_bridge_split" if split else "sharded_4_bridge_unsplit"
        best = None
        best_engine = None
        for __ in range(scale.repeats):
            plan, handles = bridge_plan(scale)
            sharded = ShardedEngine(
                plan, 4, capture_outputs=True,
                max_batch=scale.max_batch, split=split,
            )
            run = sharded.run(_make_sources(plan, handles, per_source))
            check_identity(f"bridge/{cell}", run, sharded)
            if best is None or run.throughput > best.throughput:
                best, best_engine = run, sharded
        relays = best_engine.shard_plan.relays
        if split and not relays:
            raise AssertionError(
                "bridge workload produced no relay edges: the split cell "
                "measured whole-component placement, not bridge cuts"
            )
        if not split and relays:
            raise AssertionError(
                "split=False placement must not produce relay edges"
            )
        result["cells"][cell] = {
            "events_per_sec": round(best.throughput, 1),
            "wall_seconds": round(best.wall_seconds, 6),
            "busy_seconds": round(best.busy_seconds, 6),
            "mode": best.mode,
            "relays": len(relays),
            "effective_shards": best_engine.shard_plan.effective_shards,
            "output_events": best.aggregate.output_events,
            "speedup_vs_single_batched": round(
                best.throughput / max(baseline.throughput, 1e-9), 2
            ),
        }

    # Byte-identity over forked workers on both data planes.  worker_cap=4
    # keeps one fragment per worker even on small hosts, so relay frames
    # genuinely cross worker boundaries.
    verified = []
    if fork_available():
        for plane in ("pickle", "columnar"):
            plan, handles = bridge_plan(scale)
            sharded = ShardedEngine(
                plan, 4, parallel=True, feed="router", capture_outputs=True,
                max_batch=scale.max_batch, data_plane=plane, worker_cap=4,
            )
            run = sharded.run(_make_sources(plan, handles, per_source))
            check_identity(f"bridge/process_{plane}", run, sharded)
            verified.append(plane)
    result["verified_planes"] = verified
    return result


# -- sharded churn serve -------------------------------------------------------------


def bench_sharded_churn(scale: ShardScale) -> dict:
    """Live serve: single runtime vs sharded runtime with load-levelling
    rebalances; reports wall-clock and verifies output equality."""

    def workload() -> ChurnWorkload:
        return ChurnWorkload(
            arrival_rate=0.02,
            mean_lifetime=600.0,
            horizon=scale.churn_events,
            initial_queries=scale.churn_initial,
            seed=7,
        )

    def serve_single():
        wl = workload()
        runtime = open_runtime(sources={"S": wl.schema, "T": wl.schema})
        started = time.perf_counter()
        for __ in drive_batched(runtime, wl.stream_events(), wl.schedule()):
            pass
        return runtime.stats, time.perf_counter() - started, runtime.stats.migrations

    def serve_sharded():
        wl = workload()
        runtime = open_runtime(
            sources={"S": wl.schema, "T": wl.schema},
            shards=scale.churn_shards,
        )
        started = time.perf_counter()
        for __ in drive_sharded(
            runtime, wl.stream_events(), wl.schedule(), rebalance_every=5
        ):
            pass
        return runtime.stats, time.perf_counter() - started, runtime.migrations

    cells: dict = {"shards": scale.churn_shards, "modes": {}}
    stats_by_mode = {}
    for mode, serve in (("single", serve_single), ("sharded", serve_sharded)):
        best_stats, best_elapsed, best_extra = None, float("inf"), 0
        for __ in range(scale.repeats):
            stats, elapsed, extra = serve()
            if elapsed < best_elapsed:
                best_stats, best_elapsed, best_extra = stats, elapsed, extra
        cells["modes"][mode] = {
            "events_per_sec": round(
                best_stats.input_events / max(best_elapsed, 1e-9), 1
            ),
            "elapsed_seconds": round(best_elapsed, 6),
            "input_events": best_stats.input_events,
            "output_events": best_stats.output_events,
            "migrations": best_extra,
        }
        stats_by_mode[mode] = best_stats
    if (
        stats_by_mode["single"].outputs_by_query
        != stats_by_mode["sharded"].outputs_by_query
    ):
        raise AssertionError(
            "sharded churn serve diverged from the single-runtime outputs"
        )
    return cells


# -- entry points --------------------------------------------------------------------


def run_benchmark(scale: ShardScale) -> dict:
    zipf = bench_partitionable_zipf(scale)
    bridge = bench_bridge(scale)
    churn = bench_sharded_churn(scale)
    headline_cell = zipf["cells"]["sharded_4"]
    headline = headline_cell["speedup_vs_single_batched"]
    results = {
        "meta": {
            "benchmark": "sharded engine vs single-engine batched dispatch",
            "scale": scale.name,
            "max_batch": scale.max_batch,
            "repeats": scale.repeats,
            "cpu_count": multiprocessing.cpu_count(),
            "regenerate": "PYTHONPATH=src python -m repro.cli bench-shard",
        },
        "headline": {
            "sharded_4x_speedup": headline,
            "mode": headline_cell["mode"],
            "target": scale.min_speedup,
        },
        "workloads": {
            "partitionable_zipf": zipf,
            "bridge": bridge,
            "sharded_churn": churn,
        },
    }
    if headline < scale.min_speedup:
        raise AssertionError(
            f"4-shard aggregate throughput must be ≥{scale.min_speedup}x the "
            f"single-engine batched baseline on the partitionable zipf "
            f"workload, measured {headline}x"
        )
    # Data-plane gate: the columnar process-mode cell must exist (a silent
    # fallback to inline would make the gate vacuous) and its steady-state
    # drain must keep up with the 4-shard inline drain.
    if not fork_available():
        raise AssertionError(
            "process-mode data-plane cells missing: the shard benchmark "
            "gate requires the fork start method"
        )
    process_cell = zipf["cells"]["sharded_4_process_columnar"]
    if process_cell["mode"] != "process":
        raise AssertionError(
            f"columnar data-plane cell ran in {process_cell['mode']!r} "
            f"mode, not process mode"
        )
    inline_cell = zipf["cells"]["sharded_4"]
    ratio = round(
        process_cell["events_per_sec"]
        / max(inline_cell["events_per_sec"], 1e-9),
        2,
    )
    results["headline"]["process_columnar_vs_inline_4"] = ratio
    results["headline"]["process_ratio_target"] = scale.min_process_ratio
    if ratio < scale.min_process_ratio:
        raise AssertionError(
            f"process-mode columnar throughput must be ≥"
            f"{scale.min_process_ratio}x the 4-shard inline drain, "
            f"measured {ratio}x "
            f"({process_cell['events_per_sec']:,.0f} vs "
            f"{inline_cell['events_per_sec']:,.0f} ev/s)"
        )
    # Bridge-cut gate: both cells must exist (a missing cell would make the
    # floor vacuous) and splitting must never lose to the forced
    # whole-component placement it replaces.
    try:
        split_cell = bridge["cells"]["sharded_4_bridge_split"]
        unsplit_cell = bridge["cells"]["sharded_4_bridge_unsplit"]
    except KeyError as missing:
        raise AssertionError(
            f"bridge workload cell {missing} missing from the results"
        ) from None
    bridge_ratio = round(
        split_cell["events_per_sec"]
        / max(unsplit_cell["events_per_sec"], 1e-9),
        2,
    )
    results["headline"]["bridge_split_vs_unsplit"] = bridge_ratio
    results["headline"]["bridge_ratio_target"] = scale.min_bridge_ratio
    if bridge_ratio < scale.min_bridge_ratio:
        raise AssertionError(
            f"bridge-split serve must be ≥{scale.min_bridge_ratio}x the "
            f"forced single-shard placement, measured {bridge_ratio}x "
            f"({split_cell['events_per_sec']:,.0f} vs "
            f"{unsplit_cell['events_per_sec']:,.0f} ev/s)"
        )
    if set(bridge["verified_planes"]) != {"pickle", "columnar"}:
        raise AssertionError(
            f"bridge byte-identity must be verified on both data planes, "
            f"got {bridge['verified_planes']}"
        )
    return results


def render(results: dict) -> str:
    zipf = results["workloads"]["partitionable_zipf"]
    lines = [
        f"shard benchmark ({results['meta']['scale']} scale, "
        f"{zipf['sources']} sources x "
        f"{zipf['queries'] // zipf['sources']} queries, "
        f"cpu_count={results['meta']['cpu_count']})",
        f"{'cell':<28} {'ev/s':>14} {'speedup':>8} {'mode':>8}",
    ]
    baseline = zipf["cells"]["single_batched"]
    lines.append(
        f"{'single_batched':<28} {baseline['events_per_sec']:>14,.0f} "
        f"{'1.00x':>8} {'-':>8}"
    )
    for name, cell in zipf["cells"].items():
        if name == "single_batched":
            continue
        lines.append(
            f"{name:<28} {cell['events_per_sec']:>14,.0f} "
            f"{cell['speedup_vs_single_batched']:>7.2f}x "
            f"{cell['mode']:>8}"
        )
    bridge = results["workloads"]["bridge"]["cells"]
    for name in ("sharded_4_bridge_unsplit", "sharded_4_bridge_split"):
        cell = bridge[name]
        lines.append(
            f"{name:<28} {cell['events_per_sec']:>14,.0f} "
            f"{cell['speedup_vs_single_batched']:>7.2f}x "
            f"{cell['mode']:>8}"
        )
    churn = results["workloads"]["sharded_churn"]["modes"]
    lines.append(
        f"{'churn single':<28} {churn['single']['events_per_sec']:>14,.0f}"
    )
    lines.append(
        f"{'churn sharded':<28} {churn['sharded']['events_per_sec']:>14,.0f}"
    )
    lines.append(
        f"headline: 4-shard speedup "
        f"{results['headline']['sharded_4x_speedup']}x "
        f"(target ≥{results['headline']['target']}x, "
        f"mode={results['headline']['mode']})"
    )
    ratio = results["headline"].get("process_columnar_vs_inline_4")
    if ratio is not None:
        lines.append(
            f"data plane: process columnar vs inline 4-shard {ratio}x "
            f"(target ≥{results['headline']['process_ratio_target']}x)"
        )
    bridge_ratio = results["headline"].get("bridge_split_vs_unsplit")
    if bridge_ratio is not None:
        lines.append(
            f"bridge cuts: split vs unsplit {bridge_ratio}x "
            f"(target ≥{results['headline']['bridge_ratio_target']}x, "
            f"planes={results['workloads']['bridge']['verified_planes']})"
        )
    return "\n".join(lines)


def main(argv: Optional[list[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="sharded engine benchmark (vs single-engine batched)"
    )
    parser.add_argument(
        "--scale", choices=["full", "smoke"], default="full",
        help="smoke: reduced event counts for CI",
    )
    parser.add_argument(
        "--output", default="BENCH_shard.json",
        help="where to write the JSON results",
    )
    args = parser.parse_args(argv)
    scale = ShardScale.smoke() if args.scale == "smoke" else ShardScale.full()
    results = run_benchmark(scale)
    with open(args.output, "w") as handle:
        json.dump(results, handle, indent=2)
        handle.write("\n")
    print(render(results))
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
