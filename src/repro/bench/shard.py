"""Sharded execution benchmark: the horizontal multiplier over batching.

Measures the :class:`~repro.shard.ShardedEngine` against the single-engine
batched baseline on the **partitionable zipf workload**: ``k`` independent
source streams, each with its own set of Zipf-constant selection queries.
After optimization the plan decomposes into ``k`` entry-channel connected
components, the unit the shard planner places.

Two effects stack:

- **merge restructuring** — the single engine must drain one global
  timestamp-ordered merge; with ``k`` interleaved sources every same-channel
  run has length 1, so batched dispatch degenerates to the per-tuple
  interpreter.  Each shard drains its own source through the single-source
  bulk path with full-length runs.  This effect is real on a single core —
  it is why the inline (same-process, sequential) sharded mode already beats
  the single engine.
- **parallel placement** — on multi-core hosts with the ``fork`` start
  method, shards run as worker processes concurrently.

Every cell re-checks that the sharded run's per-query outputs are identical
to the single-engine baseline.  Results land in ``BENCH_shard.json``; the
run fails if 4-shard aggregate throughput drops below the scale's floor
(2x at full scale) over the single-engine batched baseline.

Regenerate::

    PYTHONPATH=src python -m repro.cli bench-shard
    PYTHONPATH=src python -m repro.cli bench-shard --scale smoke   # CI

or run the standalone script ``benchmarks/bench_shard.py``.
"""

from __future__ import annotations

import json
import multiprocessing
import time
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.optimizer import Optimizer
from repro.core.plan import QueryPlan
from repro.engine.executor import StreamEngine
from repro.engine.metrics import RunStats
from repro.operators.expressions import attr, lit
from repro.operators.predicates import Comparison
from repro.operators.select import Selection
from repro.runtime.config import open_runtime
from repro.shard import ShardedEngine, fork_available
from repro.streams.columns import ColumnBatch
from repro.streams.sources import ColumnRunSource, StreamSource
from repro.streams.tuples import StreamTuple
from repro.workloads.churn import ChurnWorkload, drive_batched, drive_sharded
from repro.workloads.synthetic import synthetic_schema
from repro.workloads.zipf import ZipfSampler

#: Acceptance floor: 4-shard aggregate throughput over the single-engine
#: batched baseline on the partitionable zipf workload, full scale.
TARGET_SPEEDUP = 2.0
#: Relaxed floor for the CI smoke run (small event counts are noisy).
SMOKE_SPEEDUP = 1.3
#: Data-plane acceptance floor: process-mode serving over the columnar
#: transport must at least match the 4-shard *inline* drain (full scale).
#: Startup (fork + ready handshake) is excluded — ``spawn_seconds`` is
#: reported separately — so this compares steady-state drains.
TARGET_PROCESS_RATIO = 1.0
#: Relaxed ratio for the CI smoke run: at smoke event counts a single
#: queue/ring hop is a visible fraction of the whole drain.
SMOKE_PROCESS_RATIO = 0.5


@dataclass
class ShardScale:
    """Knobs controlling benchmark size."""

    name: str = "full"
    zipf_sources: int = 4
    zipf_queries_per_source: int = 75
    zipf_events: int = 40_000
    churn_events: int = 2_000
    churn_initial: int = 6
    churn_shards: int = 2
    repeats: int = 3
    max_batch: int = 4096
    min_speedup: float = TARGET_SPEEDUP
    min_process_ratio: float = TARGET_PROCESS_RATIO

    @classmethod
    def full(cls) -> "ShardScale":
        return cls()

    @classmethod
    def smoke(cls) -> "ShardScale":
        """Reduced scale for the CI smoke job."""
        return cls(
            name="smoke",
            zipf_sources=4,
            zipf_queries_per_source=40,
            zipf_events=8_000,
            churn_events=600,
            churn_initial=4,
            repeats=2,
            min_speedup=SMOKE_SPEEDUP,
            min_process_ratio=SMOKE_PROCESS_RATIO,
        )


# -- partitionable zipf workload -----------------------------------------------------


def partitionable_zipf_plan(
    num_sources: int, queries_per_source: int, seed: int = 7
) -> tuple[QueryPlan, list]:
    """``num_sources`` independent streams, each with its own Zipf-constant
    selection set — optimizes to one predicate-index m-op per source, i.e.
    ``num_sources`` connected components."""
    schema = synthetic_schema()
    rng = np.random.default_rng(seed)
    plan = QueryPlan()
    sources = [plan.add_source(f"S{i}", schema) for i in range(num_sources)]
    for index, source in enumerate(sources):
        constants = ZipfSampler(0, 999, 1.5, rng).sample(queries_per_source)
        for position, constant in enumerate(constants):
            query_id = f"q{index}_{position}"
            out = plan.add_operator(
                Selection(Comparison(attr("a0"), "==", lit(int(constant)))),
                [source],
                query_id=query_id,
            )
            plan.mark_output(out, query_id)
    Optimizer().optimize(plan)
    return plan, sources


def interleaved_zipf_tuples(
    num_sources: int, count: int, seed: int = 8
) -> list[list[StreamTuple]]:
    """Per-source tuple lists with globally interleaved timestamps
    (tuple ``ts`` goes to source ``ts % k`` — the adversarial case for the
    single engine's run coalescing, the natural case for sharding)."""
    schema = synthetic_schema()
    rng = np.random.default_rng(seed)
    values = rng.integers(0, 1000, size=(count, len(schema)))
    per_source: list[list[StreamTuple]] = [[] for __ in range(num_sources)]
    for ts in range(count):
        per_source[ts % num_sources].append(
            StreamTuple(schema, tuple(int(v) for v in values[ts]), ts)
        )
    return per_source


def _make_sources(plan, sources, per_source):
    return [
        StreamSource(plan.channel_of(source), tuples)
        for source, tuples in zip(sources, per_source)
    ]


def _require_equivalent(name: str, baseline: RunStats, candidate: RunStats) -> None:
    if baseline.outputs_by_query != candidate.outputs_by_query:
        raise AssertionError(
            f"{name}: sharded outputs diverged from the single-engine "
            f"baseline"
        )
    if baseline.input_events != candidate.input_events:
        raise AssertionError(
            f"{name}: sharded input accounting diverged "
            f"({baseline.input_events} != {candidate.input_events})"
        )


def bench_partitionable_zipf(scale: ShardScale) -> dict:
    per_source = interleaved_zipf_tuples(scale.zipf_sources, scale.zipf_events)
    result: dict = {
        "sources": scale.zipf_sources,
        "queries": scale.zipf_sources * scale.zipf_queries_per_source,
        "events": scale.zipf_events,
        "cells": {},
    }

    def build():
        return partitionable_zipf_plan(
            scale.zipf_sources, scale.zipf_queries_per_source
        )

    # Single-engine batched baseline.
    best_baseline: Optional[RunStats] = None
    for __ in range(scale.repeats):
        plan, sources = build()
        engine = StreamEngine(plan, max_batch=scale.max_batch)
        stats = engine.run(_make_sources(plan, sources, per_source))
        if best_baseline is None or stats.throughput > best_baseline.throughput:
            best_baseline = stats
    result["cells"]["single_batched"] = {
        "events_per_sec": round(best_baseline.throughput, 1),
        "elapsed_seconds": round(best_baseline.elapsed_seconds, 6),
        "input_events": best_baseline.input_events,
        "output_events": best_baseline.output_events,
    }

    shard_counts = sorted({1, 2, 4, scale.zipf_sources})
    for n_shards in shard_counts:
        best = None
        mode = None
        for __ in range(scale.repeats):
            plan, sources = build()
            sharded = ShardedEngine(
                plan, n_shards, max_batch=scale.max_batch
            )
            run = sharded.run(_make_sources(plan, sources, per_source))
            if best is None or run.throughput > best.throughput:
                best, mode = run, run.mode
        aggregate = best.aggregate
        _require_equivalent(
            f"zipf/shards={n_shards}", best_baseline, aggregate
        )
        result["cells"][f"sharded_{n_shards}"] = {
            "events_per_sec": round(best.throughput, 1),
            "wall_seconds": round(best.wall_seconds, 6),
            "busy_seconds": round(best.busy_seconds, 6),
            "mode": mode,
            "output_events": aggregate.output_events,
            "speedup_vs_single_batched": round(
                best.throughput / max(best_baseline.throughput, 1e-9), 2
            ),
        }

    # Process-mode data-plane cells: 4 forked workers behind the wire
    # router, once over the legacy pickle wire and once over the columnar
    # plane (packed columns + shared-memory rings), fed by columnar-native
    # sources so nothing materializes rows on the way in.  wall_seconds is
    # the drain only; startup is reported as spawn_seconds.
    def _columnar_sources(plan, sources):
        built = []
        for source, tuples in zip(sources, per_source):
            channel = plan.channel_of(source)
            batch = ColumnBatch.from_rows(
                tuples[0].schema, tuples, channel.full_mask
            )
            built.append(ColumnRunSource(channel, batch))
        return built

    if fork_available():
        for plane in ("pickle", "columnar"):
            best = None
            for __ in range(scale.repeats):
                plan, sources = build()
                sharded = ShardedEngine(
                    plan, 4, parallel=True, feed="router",
                    max_batch=scale.max_batch, data_plane=plane,
                )
                feed_sources = (
                    _columnar_sources(plan, sources)
                    if plane == "columnar"
                    else _make_sources(plan, sources, per_source)
                )
                run = sharded.run(feed_sources)
                if best is None or run.throughput > best.throughput:
                    best = run
            aggregate = best.aggregate
            _require_equivalent(
                f"zipf/process_{plane}", best_baseline, aggregate
            )
            result["cells"][f"sharded_4_process_{plane}"] = {
                "events_per_sec": round(best.throughput, 1),
                "wall_seconds": round(best.wall_seconds, 6),
                "spawn_seconds": round(best.spawn_seconds, 6),
                "busy_seconds": round(best.busy_seconds, 6),
                "mode": best.mode,
                "data_plane": plane,
                "output_events": aggregate.output_events,
                "speedup_vs_single_batched": round(
                    best.throughput / max(best_baseline.throughput, 1e-9), 2
                ),
            }
    return result


# -- sharded churn serve -------------------------------------------------------------


def bench_sharded_churn(scale: ShardScale) -> dict:
    """Live serve: single runtime vs sharded runtime with load-levelling
    rebalances; reports wall-clock and verifies output equality."""

    def workload() -> ChurnWorkload:
        return ChurnWorkload(
            arrival_rate=0.02,
            mean_lifetime=600.0,
            horizon=scale.churn_events,
            initial_queries=scale.churn_initial,
            seed=7,
        )

    def serve_single():
        wl = workload()
        runtime = open_runtime(sources={"S": wl.schema, "T": wl.schema})
        started = time.perf_counter()
        for __ in drive_batched(runtime, wl.stream_events(), wl.schedule()):
            pass
        return runtime.stats, time.perf_counter() - started, runtime.stats.migrations

    def serve_sharded():
        wl = workload()
        runtime = open_runtime(
            sources={"S": wl.schema, "T": wl.schema},
            shards=scale.churn_shards,
        )
        started = time.perf_counter()
        for __ in drive_sharded(
            runtime, wl.stream_events(), wl.schedule(), rebalance_every=5
        ):
            pass
        return runtime.stats, time.perf_counter() - started, runtime.migrations

    cells: dict = {"shards": scale.churn_shards, "modes": {}}
    stats_by_mode = {}
    for mode, serve in (("single", serve_single), ("sharded", serve_sharded)):
        best_stats, best_elapsed, best_extra = None, float("inf"), 0
        for __ in range(scale.repeats):
            stats, elapsed, extra = serve()
            if elapsed < best_elapsed:
                best_stats, best_elapsed, best_extra = stats, elapsed, extra
        cells["modes"][mode] = {
            "events_per_sec": round(
                best_stats.input_events / max(best_elapsed, 1e-9), 1
            ),
            "elapsed_seconds": round(best_elapsed, 6),
            "input_events": best_stats.input_events,
            "output_events": best_stats.output_events,
            "migrations": best_extra,
        }
        stats_by_mode[mode] = best_stats
    if (
        stats_by_mode["single"].outputs_by_query
        != stats_by_mode["sharded"].outputs_by_query
    ):
        raise AssertionError(
            "sharded churn serve diverged from the single-runtime outputs"
        )
    return cells


# -- entry points --------------------------------------------------------------------


def run_benchmark(scale: ShardScale) -> dict:
    zipf = bench_partitionable_zipf(scale)
    churn = bench_sharded_churn(scale)
    headline_cell = zipf["cells"]["sharded_4"]
    headline = headline_cell["speedup_vs_single_batched"]
    results = {
        "meta": {
            "benchmark": "sharded engine vs single-engine batched dispatch",
            "scale": scale.name,
            "max_batch": scale.max_batch,
            "repeats": scale.repeats,
            "cpu_count": multiprocessing.cpu_count(),
            "regenerate": "PYTHONPATH=src python -m repro.cli bench-shard",
        },
        "headline": {
            "sharded_4x_speedup": headline,
            "mode": headline_cell["mode"],
            "target": scale.min_speedup,
        },
        "workloads": {
            "partitionable_zipf": zipf,
            "sharded_churn": churn,
        },
    }
    if headline < scale.min_speedup:
        raise AssertionError(
            f"4-shard aggregate throughput must be ≥{scale.min_speedup}x the "
            f"single-engine batched baseline on the partitionable zipf "
            f"workload, measured {headline}x"
        )
    # Data-plane gate: the columnar process-mode cell must exist (a silent
    # fallback to inline would make the gate vacuous) and its steady-state
    # drain must keep up with the 4-shard inline drain.
    if not fork_available():
        raise AssertionError(
            "process-mode data-plane cells missing: the shard benchmark "
            "gate requires the fork start method"
        )
    process_cell = zipf["cells"]["sharded_4_process_columnar"]
    if process_cell["mode"] != "process":
        raise AssertionError(
            f"columnar data-plane cell ran in {process_cell['mode']!r} "
            f"mode, not process mode"
        )
    inline_cell = zipf["cells"]["sharded_4"]
    ratio = round(
        process_cell["events_per_sec"]
        / max(inline_cell["events_per_sec"], 1e-9),
        2,
    )
    results["headline"]["process_columnar_vs_inline_4"] = ratio
    results["headline"]["process_ratio_target"] = scale.min_process_ratio
    if ratio < scale.min_process_ratio:
        raise AssertionError(
            f"process-mode columnar throughput must be ≥"
            f"{scale.min_process_ratio}x the 4-shard inline drain, "
            f"measured {ratio}x "
            f"({process_cell['events_per_sec']:,.0f} vs "
            f"{inline_cell['events_per_sec']:,.0f} ev/s)"
        )
    return results


def render(results: dict) -> str:
    zipf = results["workloads"]["partitionable_zipf"]
    lines = [
        f"shard benchmark ({results['meta']['scale']} scale, "
        f"{zipf['sources']} sources x "
        f"{zipf['queries'] // zipf['sources']} queries, "
        f"cpu_count={results['meta']['cpu_count']})",
        f"{'cell':<28} {'ev/s':>14} {'speedup':>8} {'mode':>8}",
    ]
    baseline = zipf["cells"]["single_batched"]
    lines.append(
        f"{'single_batched':<28} {baseline['events_per_sec']:>14,.0f} "
        f"{'1.00x':>8} {'-':>8}"
    )
    for name, cell in zipf["cells"].items():
        if name == "single_batched":
            continue
        lines.append(
            f"{name:<28} {cell['events_per_sec']:>14,.0f} "
            f"{cell['speedup_vs_single_batched']:>7.2f}x "
            f"{cell['mode']:>8}"
        )
    churn = results["workloads"]["sharded_churn"]["modes"]
    lines.append(
        f"{'churn single':<28} {churn['single']['events_per_sec']:>14,.0f}"
    )
    lines.append(
        f"{'churn sharded':<28} {churn['sharded']['events_per_sec']:>14,.0f}"
    )
    lines.append(
        f"headline: 4-shard speedup "
        f"{results['headline']['sharded_4x_speedup']}x "
        f"(target ≥{results['headline']['target']}x, "
        f"mode={results['headline']['mode']})"
    )
    ratio = results["headline"].get("process_columnar_vs_inline_4")
    if ratio is not None:
        lines.append(
            f"data plane: process columnar vs inline 4-shard {ratio}x "
            f"(target ≥{results['headline']['process_ratio_target']}x)"
        )
    return "\n".join(lines)


def main(argv: Optional[list[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="sharded engine benchmark (vs single-engine batched)"
    )
    parser.add_argument(
        "--scale", choices=["full", "smoke"], default="full",
        help="smoke: reduced event counts for CI",
    )
    parser.add_argument(
        "--output", default="BENCH_shard.json",
        help="where to write the JSON results",
    )
    args = parser.parse_args(argv)
    scale = ShardScale.smoke() if args.scale == "smoke" else ShardScale.full()
    results = run_benchmark(scale)
    with open(args.output, "w") as handle:
        json.dump(results, handle, indent=2)
        handle.write("\n")
    print(render(results))
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
