"""Measurement helpers shared by all figure drivers.

Methodology follows §5: each measurement warms the engine on a prefix of the
input before the clock starts, repeats the run ``repeats`` times on fresh
executors (fresh operator state), and reports the mean throughput.  Figures
9(a–d) and 10(a–b) report *normalized* throughput — every series is divided
by its maximum, the throughput of the lightest workload, exactly the
SASE-style normalization the paper adopts because cross-system absolute
numbers are not meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.core.plan import QueryPlan
from repro.engine.executor import StreamEngine
from repro.engine.metrics import RunStats


@dataclass
class BenchScale:
    """Knobs controlling experiment size.

    ``small`` (default) keeps every figure driver comfortably runnable on a
    laptop; ``full`` restores the paper's event volumes and sweep endpoints
    (§5.1: at least 100 000 tuples, up to 100 000 queries).
    """

    name: str = "small"
    events: int = 4000
    rounds: int = 400
    hybrid_seconds: int = 300
    repeats: int = 1
    warmup_fraction: float = 0.1

    @classmethod
    def small(cls) -> "BenchScale":
        return cls()

    @classmethod
    def full(cls) -> "BenchScale":
        return cls(
            name="full",
            events=100_000,
            rounds=5_000,
            hybrid_seconds=3_600,
            repeats=3,
        )


@dataclass
class Series:
    """One plotted line: a name plus (x, y) pairs."""

    name: str
    xs: list = field(default_factory=list)
    ys: list = field(default_factory=list)

    def add(self, x, y) -> None:
        self.xs.append(x)
        self.ys.append(y)


def normalize(series: Series) -> Series:
    """Normalized throughput: divide by the series' maximum (lightest load)."""
    peak = max(series.ys) if series.ys else 1.0
    if peak <= 0:
        peak = 1.0
    return Series(series.name, list(series.xs), [y / peak for y in series.ys])


def measure_rumor(
    plan: QueryPlan,
    sources_factory: Callable[[], list],
    warmup_events: int = 0,
    repeats: int = 1,
    batching: bool = False,
) -> RunStats:
    """Mean-of-``repeats`` measurement of a plan on fresh executors.

    ``batching`` defaults to off: the paper figures compare RUMOR against a
    per-event automaton baseline, so the reproduction keeps the per-tuple
    interpreter unless a driver opts into the batched hot path explicitly
    (``benchmarks/bench_throughput.py`` is the batched-vs-per-tuple study).
    """
    merged: RunStats | None = None
    for __ in range(repeats):
        engine = StreamEngine(plan, batching=batching)
        stats = engine.run(sources_factory(), warmup_events=warmup_events)
        merged = stats if merged is None else merged.merge(stats)
    return merged


def measure_cayuga(
    engine_factory: Callable[[], object],
    events: Sequence,
    warmup_events: int = 0,
    repeats: int = 1,
) -> RunStats:
    """Mean-of-``repeats`` measurement of an automaton engine."""
    merged: RunStats | None = None
    for __ in range(repeats):
        engine = engine_factory()
        stats = engine.run(iter(events), warmup_events=warmup_events)
        merged = stats if merged is None else merged.merge(stats)
    return merged


def render_table(
    title: str, columns: Sequence[str], rows: Sequence[Sequence]
) -> str:
    """Fixed-width table rendering used by the figure drivers."""
    formatted_rows = [
        [
            f"{value:,.3f}" if isinstance(value, float) else f"{value}"
            for value in row
        ]
        for row in rows
    ]
    widths = [
        max(len(column), *(len(row[i]) for row in formatted_rows), 1)
        if formatted_rows
        else len(column)
        for i, column in enumerate(columns)
    ]
    lines = [title]
    header = " | ".join(column.rjust(width) for column, width in zip(columns, widths))
    lines.append(header)
    lines.append("-+-".join("-" * width for width in widths))
    for row in formatted_rows:
        lines.append(
            " | ".join(value.rjust(width) for value, width in zip(row, widths))
        )
    return "\n".join(lines)
