"""CSV import/export for stream tuples.

The paper's hybrid experiments replay real performance-counter traces; the
proprietary files are unavailable (DESIGN.md §1), so this repository ships a
simulator — but the loader here accepts *actual* traces too: any CSV whose
header names the schema attributes plus a ``ts`` column can be replayed
through the engine, making the D1/D2 substitution swappable for real data.

Format: a header row of attribute names with ``ts`` in any position; values
typed by the target schema (``int`` / ``float`` / ``str``).  Example::

    pid,load,ts
    0,17,0
    1,3,0
    0,21,1
"""

from __future__ import annotations

import csv
from typing import Iterable, Iterator, Optional, TextIO

from repro.errors import SchemaError
from repro.streams.schema import Attribute, Schema, TIMESTAMP_ATTRIBUTE
from repro.streams.tuples import StreamTuple

_PARSERS = {"int": int, "float": float, "str": str}


def write_trace(tuples: Iterable[StreamTuple], handle: TextIO) -> int:
    """Write tuples as CSV (header from the first tuple's schema).

    Returns the number of rows written.  All tuples must share one schema.
    """
    writer = csv.writer(handle)
    count = 0
    schema: Optional[Schema] = None
    for tuple_ in tuples:
        if schema is None:
            schema = tuple_.schema
            writer.writerow(list(schema.names) + [TIMESTAMP_ATTRIBUTE])
        elif tuple_.schema != schema:
            raise SchemaError(
                "all tuples in a trace must share one schema; got "
                f"{tuple_.schema!r} after {schema!r}"
            )
        writer.writerow(list(tuple_.values) + [tuple_.ts])
        count += 1
    return count


def write_trace_file(tuples: Iterable[StreamTuple], path: str) -> int:
    with open(path, "w", newline="") as handle:
        return write_trace(tuples, handle)


def read_trace(
    handle: TextIO, schema: Optional[Schema] = None
) -> Iterator[StreamTuple]:
    """Yield tuples from a CSV trace.

    Without an explicit ``schema`` every non-``ts`` column is inferred by
    probing the first data row (int, then float, else str).  With a schema,
    the header must contain every schema attribute (extra columns are
    ignored) plus ``ts``.
    """
    reader = csv.reader(handle)
    try:
        header = next(reader)
    except StopIteration:
        return
    header = [name.strip() for name in header]
    if TIMESTAMP_ATTRIBUTE not in header:
        raise SchemaError(f"trace header must contain a {TIMESTAMP_ATTRIBUTE!r} column")
    ts_index = header.index(TIMESTAMP_ATTRIBUTE)

    rows = iter(reader)
    first_row: Optional[list[str]] = next(rows, None)

    if schema is None:
        if first_row is None:
            return
        attributes = []
        for position, name in enumerate(header):
            if position == ts_index:
                continue
            attributes.append(Attribute(name, _infer_type(first_row[position])))
        schema = Schema(attributes)

    positions = []
    parsers = []
    for name in schema.names:
        if name not in header:
            raise SchemaError(f"trace is missing column {name!r}")
        positions.append(header.index(name))
        parsers.append(_PARSERS[schema.type_of(name)])

    def build(row: list[str]) -> StreamTuple:
        values = tuple(
            parser(row[position]) for parser, position in zip(parsers, positions)
        )
        return StreamTuple(schema, values, int(row[ts_index]))

    if first_row is not None:
        yield build(first_row)
    for row in rows:
        if row:
            yield build(row)


def read_trace_file(path: str, schema: Optional[Schema] = None) -> list[StreamTuple]:
    with open(path, newline="") as handle:
        return list(read_trace(handle, schema))


def _infer_type(value: str) -> str:
    try:
        int(value)
        return "int"
    except ValueError:
        pass
    try:
        float(value)
        return "float"
    except ValueError:
        return "str"
