"""Stream tuples.

A :class:`StreamTuple` is an immutable record: a value vector laid out by a
:class:`~repro.streams.schema.Schema`, plus the integer timestamp the paper
requires on every stream tuple.  Equality and hashing are content-based so
channels can detect "identical tuples from different streams" (§3.1) and
tests can compare output multisets.
"""

from __future__ import annotations

from typing import Any, Iterator, Mapping, Sequence

from repro.errors import SchemaError
from repro.streams.schema import Schema


class StreamTuple:
    """An immutable, timestamped tuple conforming to a schema.

    Attribute access goes through the schema's name→position index, so
    compiled predicates that capture positions directly can read
    ``tuple.values[pos]`` without the dictionary hop.
    """

    __slots__ = ("schema", "values", "ts")

    def __init__(self, schema: Schema, values: Sequence[Any], ts: int):
        if len(values) != len(schema):
            raise SchemaError(
                f"value count {len(values)} does not match schema width "
                f"{len(schema)} ({list(schema.names)})"
            )
        self.schema = schema
        self.values: tuple[Any, ...] = tuple(values)
        self.ts = ts

    @classmethod
    def _make(cls, schema: Schema, values: tuple, ts: int) -> "StreamTuple":
        """Trusted constructor for decode hot paths: skips width validation.

        ``values`` must already be a tuple of exactly ``len(schema)``
        entries — the wire/columnar decoders validate the batch shape once
        instead of once per row.
        """
        self = cls.__new__(cls)
        self.schema = schema
        self.values = values
        self.ts = ts
        return self

    @classmethod
    def from_dict(cls, schema: Schema, mapping: Mapping[str, Any], ts: int) -> "StreamTuple":
        """Build a tuple from an attribute-name mapping.

        Every schema attribute must be present in ``mapping``; extras raise,
        catching typos early.
        """
        extra = set(mapping) - set(schema.names)
        if extra:
            raise SchemaError(f"unknown attributes in tuple: {sorted(extra)}")
        try:
            values = [mapping[name] for name in schema.names]
        except KeyError as missing:
            raise SchemaError(f"missing attribute {missing.args[0]!r}") from None
        return cls(schema, values, ts)

    # -- access -----------------------------------------------------------------

    def __getitem__(self, name: str) -> Any:
        return self.values[self.schema.index_of(name)]

    def get(self, name: str, default: Any = None) -> Any:
        if name in self.schema:
            return self.values[self.schema.index_of(name)]
        return default

    def as_dict(self) -> dict[str, Any]:
        return dict(zip(self.schema.names, self.values))

    def __iter__(self) -> Iterator[Any]:
        return iter(self.values)

    # -- identity ---------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StreamTuple):
            return NotImplemented
        return (
            self.ts == other.ts
            and self.values == other.values
            and self.schema == other.schema
        )

    def __hash__(self) -> int:
        return hash((self.values, self.ts))

    def __repr__(self) -> str:
        fields = ", ".join(
            f"{name}={value!r}" for name, value in zip(self.schema.names, self.values)
        )
        return f"StreamTuple({fields}, ts={self.ts})"

    # -- derivation ---------------------------------------------------------------

    def with_ts(self, ts: int) -> "StreamTuple":
        """Copy of this tuple at a different timestamp."""
        return StreamTuple(self.schema, self.values, ts)

    def project(self, names: Sequence[str]) -> "StreamTuple":
        """Tuple restricted (and reordered) to ``names``."""
        schema = self.schema.project(names)
        values = [self[n] for n in names]
        return StreamTuple(schema, values, self.ts)

    def prefixed(self, prefix: str) -> "StreamTuple":
        """Tuple under a prefixed schema (see :meth:`Schema.prefixed`)."""
        return StreamTuple(self.schema.prefixed(prefix), self.values, self.ts)

    def concat(self, other: "StreamTuple", ts: int | None = None) -> "StreamTuple":
        """Concatenate two tuples (the ``;`` operator's output construction).

        The result's timestamp defaults to the *later* of the two inputs,
        which is when the composite event becomes known.
        """
        schema = self.schema.concat(other.schema)
        if ts is None:
            ts = max(self.ts, other.ts)
        return StreamTuple(schema, self.values + other.values, ts)

    def padded_to(self, schema: Schema) -> "StreamTuple":
        """Widen this tuple to ``schema``, filling absent attributes with None.

        This is the padding step the paper uses to make streams
        union-compatible before encoding them into one channel (§3.1).
        """
        values = [self.get(name) for name in schema.names]
        return StreamTuple(schema, values, self.ts)
