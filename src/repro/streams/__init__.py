"""Stream substrate: schemas, tuples, streams, channels, and sources.

This subpackage provides the data layer everything else is built on:

- :class:`~repro.streams.schema.Schema` — ordered, typed attribute lists with
  the timestamp attribute the paper requires on every stream.
- :class:`~repro.streams.tuples.StreamTuple` — immutable timestamped tuples.
- :class:`~repro.streams.stream.StreamDef` — logical stream descriptors
  carrying the sharability label used by the ``∼`` relation (paper §3.2).
- :class:`~repro.streams.channel.Channel` — the paper's channel abstraction
  (§3.1): the union of a set of streams where each tuple carries a bit-vector
  *membership component* recording which streams it belongs to.
- :mod:`~repro.streams.sources` — timestamp-ordered source iterators and the
  merge used by the execution engine.
"""

from repro.streams.schema import Attribute, Schema
from repro.streams.tuples import StreamTuple
from repro.streams.stream import StreamDef
from repro.streams.channel import Channel, ChannelTuple
from repro.streams.sources import StreamSource, merge_source_runs, merge_sources
from repro.streams.io import (
    read_trace,
    read_trace_file,
    write_trace,
    write_trace_file,
)

__all__ = [
    "Attribute",
    "Schema",
    "StreamTuple",
    "StreamDef",
    "Channel",
    "ChannelTuple",
    "StreamSource",
    "merge_source_runs",
    "merge_sources",
    "read_trace",
    "read_trace_file",
    "write_trace",
    "write_trace_file",
]
