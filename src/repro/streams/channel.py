"""Channels: streams with tuple-level membership tracking (paper §3).

A channel encodes a set of union-compatible streams.  Logically it is their
union, but each tuple carries a *membership component* — implemented, as in
the paper, by a bit vector (here a Python int used as a bitmask) — recording
the subset of encoded streams the tuple belongs to.

Channels generalize streams: a stream is simply a channel of capacity 1
("singleton channel"), whose membership component is always the single set
bit.  In this reproduction **all** m-op inputs and outputs are channels, so
the encode/decode steps degenerate to no-ops on singletons and the engine has
one uniform edge type.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Iterator, Sequence

from repro.errors import ChannelError, SchemaError
from repro.streams.schema import Schema
from repro.streams.stream import StreamDef
from repro.streams.tuples import StreamTuple

_channel_ids = itertools.count(1)


class ChannelTuple:
    """A stream tuple annotated with its channel membership bitmask.

    ``membership`` has bit *i* set iff the tuple belongs to the *i*-th stream
    encoded by the carrying channel (bit positions are channel-relative).
    """

    __slots__ = ("tuple", "membership")

    def __init__(self, tuple_: StreamTuple, membership: int):
        if membership <= 0:
            raise ChannelError(
                f"membership mask must have at least one bit set, got {membership}"
            )
        self.tuple = tuple_
        self.membership = membership

    @property
    def ts(self) -> int:
        return self.tuple.ts

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ChannelTuple):
            return NotImplemented
        return self.membership == other.membership and self.tuple == other.tuple

    def __hash__(self) -> int:
        return hash((self.tuple, self.membership))

    def __repr__(self) -> str:
        return f"ChannelTuple({self.tuple!r}, membership={bin(self.membership)})"


class Channel:
    """An ordered set of union-compatible streams sharing one edge.

    The order of ``streams`` fixes bit positions in membership masks: stream
    ``streams[i]`` owns bit ``1 << i``.
    """

    __slots__ = ("channel_id", "streams", "_positions", "schema", "name")

    def __init__(self, streams: Sequence[StreamDef], name: str | None = None):
        if not streams:
            raise ChannelError("a channel must encode at least one stream")
        ids = [s.stream_id for s in streams]
        if len(set(ids)) != len(ids):
            raise ChannelError("a channel cannot encode the same stream twice")
        schema = streams[0].schema
        for stream in streams[1:]:
            if not schema.union_compatible(stream.schema):
                raise SchemaError(
                    f"streams {streams[0].name!r} and {stream.name!r} have "
                    "union-incompatible schemas; pad/rename them first "
                    "(Schema.padded_union)"
                )
        self.channel_id: int = next(_channel_ids)
        self.streams: tuple[StreamDef, ...] = tuple(streams)
        self._positions: dict[int, int] = {s.stream_id: i for i, s in enumerate(streams)}
        self.schema = schema
        self.name = name or "+".join(s.name for s in streams)

    # -- construction helpers ------------------------------------------------------

    @classmethod
    def singleton(cls, stream: StreamDef) -> "Channel":
        """The degenerate channel encoding exactly one stream."""
        return cls([stream], name=stream.name)

    # -- capacity / membership ------------------------------------------------------

    @property
    def capacity(self) -> int:
        """Number of encoded streams (the paper's *channel capacity*, §5.2)."""
        return len(self.streams)

    @property
    def is_singleton(self) -> bool:
        return len(self.streams) == 1

    @property
    def full_mask(self) -> int:
        """Mask with every encoded stream's bit set."""
        return (1 << len(self.streams)) - 1

    def position_of(self, stream: StreamDef) -> int:
        """Bit position of ``stream`` within this channel."""
        try:
            return self._positions[stream.stream_id]
        except KeyError:
            raise ChannelError(
                f"{stream!r} is not encoded by channel {self.name!r}"
            ) from None

    def contains(self, stream: StreamDef) -> bool:
        return stream.stream_id in self._positions

    # -- encoding / decoding (paper §3.1) -------------------------------------------

    def mask_of(self, streams: Iterable[StreamDef]) -> int:
        """Encode a set of member streams into a membership bitmask."""
        mask = 0
        for stream in streams:
            mask |= 1 << self.position_of(stream)
        if mask == 0:
            raise ChannelError("cannot encode an empty stream set")
        return mask

    def streams_of(self, mask: int) -> list[StreamDef]:
        """Decode a membership bitmask back to the member streams."""
        if mask <= 0 or mask > self.full_mask:
            raise ChannelError(
                f"mask {bin(mask)} out of range for capacity {self.capacity}"
            )
        return [s for i, s in enumerate(self.streams) if mask & (1 << i)]

    def encode(
        self, tuple_: StreamTuple, streams: Iterable[StreamDef]
    ) -> ChannelTuple:
        """Encoding step: wrap ``tuple_`` with the membership of ``streams``."""
        return ChannelTuple(tuple_, self.mask_of(streams))

    def encode_all(self, tuple_: StreamTuple) -> ChannelTuple:
        """Encode a tuple that belongs to every stream of the channel."""
        return ChannelTuple(tuple_, self.full_mask)

    def decode(self, channel_tuple: ChannelTuple) -> list[StreamDef]:
        """Decoding step: the member streams a channel tuple belongs to."""
        return self.streams_of(channel_tuple.membership)

    def iter_members(self, channel_tuple: ChannelTuple) -> Iterator[StreamDef]:
        """Iterate member streams of a channel tuple without building a list."""
        mask = channel_tuple.membership
        if mask <= 0 or mask > self.full_mask:
            raise ChannelError(
                f"mask {bin(mask)} out of range for capacity {self.capacity}"
            )
        for i, stream in enumerate(self.streams):
            if mask & (1 << i):
                yield stream

    # -- identity ----------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Channel):
            return NotImplemented
        return self.channel_id == other.channel_id

    def __hash__(self) -> int:
        return self.channel_id

    def __repr__(self) -> str:
        return f"Channel(#{self.channel_id} {self.name!r}, capacity={self.capacity})"
