"""Packed column batches — the zero-copy data-plane representation.

A :class:`ColumnBatch` is a run of same-schema channel tuples stored
column-wise: one packed array per schema attribute plus a timestamp array
and a membership mask (uniform int for the common source-run case, or a
per-row array).  Columns are tagged by storage class::

    'q'  int64 numpy array    (Python ints within int64 range)
    'd'  float64 numpy array  (Python floats)
    'o'  plain object list    (everything else: str, None, bool, bignum, ...)

The tags double as the wire layout: ``'q'``/``'d'`` columns cross the
shared-memory ring as raw array bytes (no pickle), ``'o'`` columns fall
back to a pickle blob.  ``bool`` deliberately lands in ``'o'``: packing
``True`` as int64 would materialize back as ``1``, which compares equal
but is not the same value — and the data plane's contract is byte-identical
round trips, not merely ``==``-identical ones.

Materialization (:meth:`tuples` / :meth:`channel_tuples`) goes through
``ndarray.tolist()``, which yields native Python ints/floats, so a value
that survived packing round-trips exactly.  Row objects are built with the
trusted :meth:`~repro.streams.tuples.StreamTuple._make` constructor — the
batch's shape was validated once at pack time, not once per row.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.errors import ChannelError
from repro.streams.channel import ChannelTuple
from repro.streams.schema import Schema
from repro.streams.tuples import StreamTuple

INT64_MIN = -(1 << 63)
INT64_MAX = (1 << 63) - 1

#: Column storage tags.
TAG_INT = "q"
TAG_FLOAT = "d"
TAG_OBJECT = "o"


def _pack_values(values: list) -> tuple[str, object]:
    """Classify one column's values and pack them if numerically uniform."""
    kind = None
    for value in values:
        cls = type(value)
        if cls is int:
            if not (INT64_MIN <= value <= INT64_MAX):
                return TAG_OBJECT, values
            if kind is None:
                kind = TAG_INT
            elif kind is not TAG_INT:
                return TAG_OBJECT, values
        elif cls is float:
            if kind is None:
                kind = TAG_FLOAT
            elif kind is not TAG_FLOAT:
                return TAG_OBJECT, values
        else:
            return TAG_OBJECT, values
    if kind is TAG_INT:
        return TAG_INT, np.array(values, dtype=np.int64)
    if kind is TAG_FLOAT:
        return TAG_FLOAT, np.array(values, dtype=np.float64)
    return TAG_OBJECT, values


class ColumnBatch:
    """A same-schema run stored as packed columns.

    ``membership`` is either a plain int (every row carries the same mask —
    the source-run case) or an int64 array of per-row masks.  ``columns``
    is one ``(tag, data)`` pair per schema attribute, in schema order.
    """

    __slots__ = ("schema", "count", "ts", "membership", "columns")

    def __init__(self, schema: Schema, count: int, ts, membership, columns):
        self.schema = schema
        self.count = count
        self.ts = ts
        self.membership = membership
        self.columns = columns

    # -- construction ---------------------------------------------------------------

    @classmethod
    def from_rows(
        cls, schema: Schema, rows: Sequence[StreamTuple], membership: int
    ) -> Optional["ColumnBatch"]:
        """Pack a run of stream tuples sharing ``schema`` under one mask.

        Returns ``None`` when the run is not packable — a tuple carries a
        different schema object (mixed-schema runs stay on the pickle
        wire), or the mask exceeds int64.  Unpackable *values* do not
        disqualify a run; they land in ``'o'`` columns.
        """
        if not rows or not (0 < membership <= INT64_MAX):
            return None
        width = len(schema)
        value_lists: list[list] = [[] for __ in range(width)]
        ts_list = []
        ts_append = ts_list.append
        for tuple_ in rows:
            if tuple_.schema is not schema:
                return None
            ts_append(tuple_.ts)
            values = tuple_.values
            for position in range(width):
                value_lists[position].append(values[position])
        ts = np.array(ts_list, dtype=np.int64)
        columns = tuple(_pack_values(values) for values in value_lists)
        return cls(schema, len(rows), ts, membership, columns)

    @classmethod
    def from_channel_tuples(
        cls, batch: Sequence[ChannelTuple]
    ) -> Optional["ColumnBatch"]:
        """Pack a channel-tuple run (per-row membership preserved).

        Same fallback rules as :meth:`from_rows`; the membership column
        collapses to a plain int when every row carries the same mask.
        """
        if not batch:
            return None
        schema = batch[0].tuple.schema
        masks = []
        first_mask = batch[0].membership
        uniform = True
        for channel_tuple in batch:
            mask = channel_tuple.membership
            if not (0 < mask <= INT64_MAX):
                return None
            masks.append(mask)
            if mask != first_mask:
                uniform = False
        packed = cls.from_rows(
            schema, [ct.tuple for ct in batch], first_mask if uniform else 1
        )
        if packed is None:
            return None
        if not uniform:
            packed.membership = np.array(masks, dtype=np.int64)
        return packed

    @classmethod
    def from_arrays(
        cls, schema: Schema, ts, membership, columns
    ) -> "ColumnBatch":
        """Adopt prebuilt arrays (the columnar-native source path).

        ``ts`` must be an int64 array; each column either a ``(tag, data)``
        pair or a bare ndarray (tagged by dtype).  No per-value validation:
        the caller owns the data layout.
        """
        ts = np.ascontiguousarray(ts, dtype=np.int64)
        normalized = []
        for column in columns:
            if isinstance(column, tuple):
                normalized.append(column)
            elif column.dtype == np.int64:
                normalized.append((TAG_INT, np.ascontiguousarray(column)))
            elif column.dtype == np.float64:
                normalized.append((TAG_FLOAT, np.ascontiguousarray(column)))
            else:
                raise ChannelError(
                    f"unsupported column dtype {column.dtype} (expected "
                    f"int64/float64, or pass an explicit (tag, data) pair)"
                )
        if len(normalized) != len(schema):
            raise ChannelError(
                f"column count {len(normalized)} does not match schema "
                f"width {len(schema)}"
            )
        return cls(schema, len(ts), ts, membership, tuple(normalized))

    # -- shape ----------------------------------------------------------------------

    def logical_events(self) -> int:
        """Total membership bits across the batch (the logical event count)."""
        membership = self.membership
        if isinstance(membership, int):
            return self.count * membership.bit_count()
        return sum(mask.bit_count() for mask in membership.tolist())

    def slice(self, start: int, stop: int) -> "ColumnBatch":
        """Row range as a new batch; numeric columns are zero-copy views."""
        membership = self.membership
        if not isinstance(membership, int):
            membership = membership[start:stop]
        columns = tuple(
            (tag, data[start:stop]) for tag, data in self.columns
        )
        return ColumnBatch(
            self.schema,
            min(stop, self.count) - start,
            self.ts[start:stop],
            membership,
            columns,
        )

    def take_rows(self, indexes) -> "ColumnBatch":
        """Row subset by index array (the predicate-index hit set)."""
        membership = self.membership
        if not isinstance(membership, int):
            membership = membership[indexes]
        columns = []
        for tag, data in self.columns:
            if tag == TAG_OBJECT:
                columns.append((tag, [data[i] for i in indexes]))
            else:
                columns.append((tag, data[indexes]))
        return ColumnBatch(
            self.schema,
            len(indexes),
            self.ts[indexes],
            membership,
            tuple(columns),
        )

    # -- materialization ------------------------------------------------------------

    def tuples(self) -> list[StreamTuple]:
        """Materialize the rows (fallback and sink boundaries only)."""
        schema = self.schema
        make = StreamTuple._make
        ts_list = self.ts.tolist()
        if not self.columns:
            return [make(schema, (), ts) for ts in ts_list]
        value_lists = [
            data if tag == TAG_OBJECT else data.tolist()
            for tag, data in self.columns
        ]
        return [
            make(schema, values, ts)
            for values, ts in zip(zip(*value_lists), ts_list)
        ]

    def channel_tuples(self) -> list[ChannelTuple]:
        """Materialize as channel tuples carrying their membership masks."""
        rows = self.tuples()
        membership = self.membership
        if isinstance(membership, int):
            return [ChannelTuple(tuple_, membership) for tuple_ in rows]
        return [
            ChannelTuple(tuple_, mask)
            for tuple_, mask in zip(rows, membership.tolist())
        ]

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:
        tags = "".join(tag for tag, __ in self.columns)
        return (
            f"ColumnBatch({self.schema.names}, count={self.count}, "
            f"layout={tags!r})"
        )
