"""Logical stream descriptors.

A :class:`StreamDef` names a stream, fixes its schema, and carries the
metadata the sharable-stream relation ``∼`` needs (paper §3.2):

- *source streams* may carry a ``sharable_label``; two sources with the same
  label are sharable by the relation's base case 2 ("produced by two stream
  sources that are labeled to be sharable"),
- *derived streams* record which operator produced them; the structural
  signature machinery in :mod:`repro.core.sharable` walks these producers.

StreamDefs are identity objects: two distinct instances are two distinct
streams even if their names collide (names are for humans; ids are for the
engine).
"""

from __future__ import annotations

import itertools
from typing import Optional

from repro.streams.schema import Schema

_stream_ids = itertools.count(1)


class StreamDef:
    """A logical stream: identity, name, schema, and provenance."""

    __slots__ = ("stream_id", "name", "schema", "sharable_label", "producer")

    def __init__(
        self,
        name: str,
        schema: Schema,
        sharable_label: Optional[str] = None,
    ):
        #: Unique identity of this stream within the process.
        self.stream_id: int = next(_stream_ids)
        self.name = name
        self.schema = schema
        #: Sources with equal non-None labels are sharable (∼ base case 2).
        self.sharable_label = sharable_label
        #: The m-op producing this stream; None for source streams.  Set by
        #: the plan when the stream is wired as an m-op output.
        self.producer = None

    @property
    def is_source(self) -> bool:
        return self.producer is None

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StreamDef):
            return NotImplemented
        return self.stream_id == other.stream_id

    def __hash__(self) -> int:
        return self.stream_id

    def __repr__(self) -> str:
        origin = "source" if self.is_source else "derived"
        return f"StreamDef(#{self.stream_id} {self.name!r}, {origin})"
