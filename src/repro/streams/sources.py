"""Stream sources and the timestamp-ordered merge feeding the engine.

A :class:`StreamSource` binds an iterable of :class:`StreamTuple` to the
channel it arrives on and the member streams its tuples belong to.  The
executor consumes one globally timestamp-ordered sequence of
``(channel, channel_tuple)`` events, produced by :func:`merge_sources`.

The paper's experiments interleave tuple generation across streams and feed
them "in their timestamp ordering" (§5.1); the heap merge here implements
exactly that, with a stable tie-break on source arrival order so runs are
deterministic.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Iterable, Iterator, Sequence

from repro.errors import ChannelError
from repro.streams.channel import Channel, ChannelTuple
from repro.streams.stream import StreamDef
from repro.streams.tuples import StreamTuple


class StreamSource:
    """Binds a tuple iterable to the channel (and member streams) it feeds.

    ``member_streams`` defaults to *all* streams of the channel — the
    configuration used by the paper's channel workloads, where each generated
    channel tuple belongs to every encoded stream (§5.2, Workload 3).
    """

    def __init__(
        self,
        channel: Channel,
        tuples: Iterable[StreamTuple],
        member_streams: Sequence[StreamDef] | None = None,
    ):
        if member_streams is not None:
            for stream in member_streams:
                if not channel.contains(stream):
                    raise ChannelError(
                        f"{stream!r} is not encoded by channel {channel.name!r}"
                    )
            self._mask = channel.mask_of(member_streams)
        else:
            self._mask = channel.full_mask
        self.channel = channel
        self._tuples = tuples

    def __iter__(self) -> Iterator[tuple[Channel, ChannelTuple]]:
        channel = self.channel
        mask = self._mask
        for tuple_ in self._tuples:
            yield channel, ChannelTuple(tuple_, mask)


def merge_sources(
    sources: Sequence[StreamSource],
) -> Iterator[tuple[Channel, ChannelTuple]]:
    """K-way merge of sources by timestamp (stable on source order).

    Sources must each be internally timestamp-ordered; the merge then yields a
    globally ordered event sequence.  Ties are broken by source position then
    arrival order, so repeated runs see identical event orderings.
    """
    counter = itertools.count()
    heap: list[tuple[int, int, int, Channel, ChannelTuple]] = []
    iterators = [iter(source) for source in sources]
    for position, iterator in enumerate(iterators):
        first = next(iterator, None)
        if first is not None:
            channel, ct = first
            heapq.heappush(heap, (ct.ts, position, next(counter), channel, ct))
    while heap:
        ts, position, __, channel, ct = heapq.heappop(heap)
        yield channel, ct
        following = next(iterators[position], None)
        if following is not None:
            next_channel, next_ct = following
            heapq.heappush(
                heap, (next_ct.ts, position, next(counter), next_channel, next_ct)
            )
