"""Stream sources and the timestamp-ordered merge feeding the engine.

A :class:`StreamSource` binds an iterable of :class:`StreamTuple` to the
channel it arrives on and the member streams its tuples belong to.  The
executor consumes one globally timestamp-ordered sequence of
``(channel, channel_tuple)`` events, produced by :func:`merge_sources`.

The paper's experiments interleave tuple generation across streams and feed
them "in their timestamp ordering" (§5.1); the heap merge here implements
exactly that, with a stable tie-break on source arrival order so runs are
deterministic.

For the batched engine hot path, :func:`merge_source_runs` yields the same
globally ordered event sequence coalesced into *runs*: maximal (capped)
stretches of consecutive events arriving on the same channel.  Flattening the
runs reproduces :func:`merge_sources` exactly; the engine dispatches each run
as one batch, amortizing per-event interpreter overhead.  When a single
source remains live, the merge bypasses the heap entirely and drains the
iterator in a tight loop — the dominant case for single-stream workloads.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Iterable, Iterator, Sequence

from repro.errors import ChannelError
from repro.streams.channel import Channel, ChannelTuple
from repro.streams.columns import ColumnBatch
from repro.streams.stream import StreamDef
from repro.streams.tuples import StreamTuple


class StreamSource:
    """Binds a tuple iterable to the channel (and member streams) it feeds.

    ``member_streams`` defaults to *all* streams of the channel — the
    configuration used by the paper's channel workloads, where each generated
    channel tuple belongs to every encoded stream (§5.2, Workload 3).
    """

    def __init__(
        self,
        channel: Channel,
        tuples: Iterable[StreamTuple],
        member_streams: Sequence[StreamDef] | None = None,
    ):
        if member_streams is not None:
            for stream in member_streams:
                if not channel.contains(stream):
                    raise ChannelError(
                        f"{stream!r} is not encoded by channel {channel.name!r}"
                    )
            self._mask = channel.mask_of(member_streams)
        else:
            self._mask = channel.full_mask
        self.channel = channel
        self._tuples = tuples

    def __iter__(self) -> Iterator[tuple[Channel, ChannelTuple]]:
        channel = self.channel
        mask = self._mask
        for tuple_ in self._tuples:
            yield channel, ChannelTuple(tuple_, mask)

    def iter_runs(
        self, max_run: int
    ) -> Iterator[tuple[Channel, list[ChannelTuple]]]:
        """The source's events pre-chunked into runs of ``max_run``.

        Bulk equivalent of ``__iter__`` for the single-source merge: slicing
        the underlying iterable in C skips one generator frame per event,
        which is most of the merge cost on single-stream workloads.
        """
        channel = self.channel
        mask = self._mask
        iterator = iter(self._tuples)
        while True:
            chunk = list(itertools.islice(iterator, max_run))
            if not chunk:
                return
            yield channel, [ChannelTuple(tuple_, mask) for tuple_ in chunk]


class ColumnRunSource(StreamSource):
    """A source whose events are born columnar: one pre-packed
    :class:`~repro.streams.columns.ColumnBatch` per channel.

    ``iter_runs`` yields zero-copy column *slices* instead of channel-tuple
    lists, so a columnar-aware feed (the sharded router, the batched
    engine's run loop) never materializes rows on the way in — the
    workload the zero-copy data plane is benchmarked on.  ``__iter__``
    materializes ordinary channel tuples, keeping the source valid for the
    per-tuple heap merge and every row-path consumer.
    """

    def __init__(
        self,
        channel: Channel,
        batch: ColumnBatch,
        member_streams: Sequence[StreamDef] | None = None,
    ):
        if member_streams is not None:
            mask = channel.mask_of(member_streams)
        else:
            mask = channel.full_mask
        if not isinstance(batch.membership, int) or batch.membership != mask:
            raise ChannelError(
                f"columnar source batch membership {batch.membership!r} "
                f"does not match the source's stream mask {mask}"
            )
        self.channel = channel
        self.batch = batch
        self._mask = mask
        self._tuples = None  # rows materialize lazily in __iter__

    def __iter__(self) -> Iterator[tuple[Channel, ChannelTuple]]:
        channel = self.channel
        for channel_tuple in self.batch.channel_tuples():
            yield channel, channel_tuple

    def iter_runs(
        self, max_run: int
    ) -> Iterator[tuple[Channel, ColumnBatch]]:
        channel = self.channel
        batch = self.batch
        for start in range(0, batch.count, max_run):
            yield channel, batch.slice(start, min(start + max_run, batch.count))


def merge_sources(
    sources: Sequence[StreamSource],
) -> Iterator[tuple[Channel, ChannelTuple]]:
    """K-way merge of sources by timestamp (stable on source order).

    Sources must each be internally timestamp-ordered; the merge then yields a
    globally ordered event sequence.  Ties are broken by source position then
    arrival order, so repeated runs see identical event orderings.
    """
    counter = itertools.count()
    heap: list[tuple[int, int, int, Channel, ChannelTuple]] = []
    iterators = [iter(source) for source in sources]
    for position, iterator in enumerate(iterators):
        first = next(iterator, None)
        if first is not None:
            channel, ct = first
            heapq.heappush(heap, (ct.ts, position, next(counter), channel, ct))
    while heap:
        ts, position, __, channel, ct = heapq.heappop(heap)
        yield channel, ct
        following = next(iterators[position], None)
        if following is not None:
            next_channel, next_ct = following
            heapq.heappush(
                heap, (next_ct.ts, position, next(counter), next_channel, next_ct)
            )


def merge_source_runs(
    sources: Sequence[StreamSource], max_run: int = 1024
) -> Iterator[tuple[Channel, list[ChannelTuple]]]:
    """K-way merge coalesced into same-channel runs of at most ``max_run``.

    Event-for-event equivalent to :func:`merge_sources` (same order, same
    tie-breaks); consecutive events on the same channel are grouped into one
    ``(channel, [tuples])`` run so the engine can dispatch them as a batch.
    """
    if max_run < 1:
        raise ChannelError(f"max_run must be at least 1, got {max_run}")
    if len(sources) == 1 and hasattr(sources[0], "iter_runs"):
        yield from sources[0].iter_runs(max_run)
        return
    counter = itertools.count()
    heap: list[tuple[int, int, int, Channel, ChannelTuple]] = []
    iterators = [iter(source) for source in sources]
    for position, iterator in enumerate(iterators):
        first = next(iterator, None)
        if first is not None:
            channel, ct = first
            heapq.heappush(heap, (ct.ts, position, next(counter), channel, ct))
    while heap:
        __, position, __seq, channel, ct = heapq.heappop(heap)
        channel_id = channel.channel_id
        run = [ct]
        if heap:
            # Advance the popped source, then keep absorbing the global
            # minimum while it stays on the same channel.
            following = next(iterators[position], None)
            if following is not None:
                next_channel, next_ct = following
                heapq.heappush(
                    heap,
                    (next_ct.ts, position, next(counter), next_channel, next_ct),
                )
            while heap and len(run) < max_run:
                top = heap[0]
                if top[3].channel_id != channel_id:
                    break
                __, top_position, __seq, __ch, top_ct = heapq.heappop(heap)
                run.append(top_ct)
                following = next(iterators[top_position], None)
                if following is not None:
                    next_channel, next_ct = following
                    heapq.heappush(
                        heap,
                        (
                            next_ct.ts,
                            top_position,
                            next(counter),
                            next_channel,
                            next_ct,
                        ),
                    )
        else:
            # Single live source: drain straight off the iterator, skipping
            # the heap until the channel changes or the run fills up.
            iterator = iterators[position]
            while True:
                following = next(iterator, None)
                if following is None:
                    break
                next_channel, next_ct = following
                if len(run) >= max_run or next_channel.channel_id != channel_id:
                    heapq.heappush(
                        heap,
                        (next_ct.ts, position, next(counter), next_channel, next_ct),
                    )
                    break
                run.append(next_ct)
        yield channel, run
