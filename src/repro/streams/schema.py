"""Schemas for stream tuples.

The paper's experimental streams have ten integer attributes ``a0 .. a9``
plus one integer timestamp attribute ``ts`` (§5.1).  This module keeps the
general shape — an ordered list of named, typed attributes with a mandatory
timestamp — while supporting the renaming / padding operations channels need
(§3.1: streams encoded into a channel must have union-compatible schemas,
"which can always be achieved by padding ... after appropriate attribute
renaming").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.errors import SchemaError

#: Name of the timestamp attribute required on every stream (paper §4.1).
TIMESTAMP_ATTRIBUTE = "ts"

#: Supported attribute types.  The paper only uses ``int``; ``float`` and
#: ``str`` are supported so the performance-monitoring scenario can carry
#: fractional CPU loads and process names.
ATTRIBUTE_TYPES = ("int", "float", "str")


@dataclass(frozen=True)
class Attribute:
    """A single named, typed attribute of a schema."""

    name: str
    type: str = "int"

    def __post_init__(self):
        if not self.name or not self.name.isidentifier():
            raise SchemaError(f"invalid attribute name: {self.name!r}")
        if self.type not in ATTRIBUTE_TYPES:
            raise SchemaError(
                f"unsupported attribute type {self.type!r}; "
                f"expected one of {ATTRIBUTE_TYPES}"
            )

    def renamed(self, new_name: str) -> "Attribute":
        """Return a copy of this attribute under a new name."""
        return Attribute(new_name, self.type)


class Schema:
    """An ordered collection of attributes with positional lookup.

    Schemas are immutable and hashable; operators compare schemas when
    deciding whether definitions match (e.g. the channel-based MQO sharing
    criteria require consumers with *the same definition*, §3.2).

    The timestamp attribute is not part of the attribute list: every
    :class:`~repro.streams.tuples.StreamTuple` carries its timestamp
    separately, mirroring the paper's "required timestamp attribute for each
    stream".
    """

    __slots__ = ("_attributes", "_index", "_hash")

    def __init__(self, attributes: Iterable[Attribute | tuple[str, str] | str]):
        normalized: list[Attribute] = []
        for attr in attributes:
            if isinstance(attr, Attribute):
                normalized.append(attr)
            elif isinstance(attr, tuple):
                normalized.append(Attribute(*attr))
            else:
                normalized.append(Attribute(attr))
        names = [a.name for a in normalized]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise SchemaError(f"duplicate attribute names: {dupes}")
        if TIMESTAMP_ATTRIBUTE in names:
            raise SchemaError(
                f"{TIMESTAMP_ATTRIBUTE!r} is implicit on every tuple and must "
                "not be declared as a schema attribute"
            )
        self._attributes: tuple[Attribute, ...] = tuple(normalized)
        self._index: dict[str, int] = {a.name: i for i, a in enumerate(normalized)}
        self._hash = hash(self._attributes)

    # -- construction helpers -------------------------------------------------

    @classmethod
    def of_ints(cls, *names: str) -> "Schema":
        """Build a schema of integer attributes, e.g. ``Schema.of_ints("a0", "a1")``."""
        return cls(Attribute(n, "int") for n in names)

    @classmethod
    def numbered(cls, count: int, prefix: str = "a") -> "Schema":
        """Build the paper's synthetic schema: ``count`` int attributes ``a0..``."""
        if count < 0:
            raise SchemaError("attribute count must be non-negative")
        return cls.of_ints(*(f"{prefix}{i}" for i in range(count)))

    # -- basic protocol --------------------------------------------------------

    @property
    def attributes(self) -> tuple[Attribute, ...]:
        return self._attributes

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(a.name for a in self._attributes)

    def __len__(self) -> int:
        return len(self._attributes)

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self._attributes)

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._attributes == other._attributes

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        inner = ", ".join(f"{a.name}:{a.type}" for a in self._attributes)
        return f"Schema({inner})"

    # -- lookup ----------------------------------------------------------------

    def index_of(self, name: str) -> int:
        """Return the position of attribute ``name``.

        Raises :class:`SchemaError` for unknown attributes so mistakes in
        predicates surface at construction time rather than mid-stream.
        """
        try:
            return self._index[name]
        except KeyError:
            raise SchemaError(
                f"unknown attribute {name!r}; schema has {list(self.names)}"
            ) from None

    def attribute(self, name: str) -> Attribute:
        return self._attributes[self.index_of(name)]

    def type_of(self, name: str) -> str:
        return self.attribute(name).type

    # -- derivation ------------------------------------------------------------

    def project(self, names: Sequence[str]) -> "Schema":
        """Schema of a projection onto ``names`` (order taken from ``names``)."""
        return Schema(self.attribute(n) for n in names)

    def rename(self, mapping: dict[str, str]) -> "Schema":
        """Schema with attributes renamed per ``mapping`` (missing keys kept)."""
        return Schema(
            a.renamed(mapping.get(a.name, a.name)) for a in self._attributes
        )

    def prefixed(self, prefix: str) -> "Schema":
        """Schema with every attribute name prefixed, e.g. ``S_a0``.

        Used when concatenating tuples in the sequence / iterate operators so
        that the left and right halves remain addressable.
        """
        return Schema(a.renamed(f"{prefix}{a.name}") for a in self._attributes)

    def concat(self, other: "Schema") -> "Schema":
        """Concatenation of two schemas (the ``;`` operator's output schema).

        Attribute names must be disjoint; use :meth:`prefixed` first if they
        clash.
        """
        clash = set(self.names) & set(other.names)
        if clash:
            raise SchemaError(
                f"cannot concatenate schemas with shared attributes: {sorted(clash)}"
            )
        return Schema(self._attributes + other._attributes)

    def union_compatible(self, other: "Schema") -> bool:
        """True if tuples of both schemas can be encoded in one channel.

        We use the strict definition — identical attribute lists.  The paper
        notes any streams can be *made* union-compatible by renaming and
        padding; :meth:`padded_union` implements that construction.
        """
        return self == other

    def padded_union(self, other: "Schema") -> "Schema":
        """Smallest schema both inputs can be padded to (paper §3.1).

        Attributes present in both schemas must agree on type; attributes
        present in only one schema are appended.  Tuples of either input
        schema can then be widened with ``None`` padding.
        """
        merged: list[Attribute] = list(self._attributes)
        seen = dict(self._index)
        for attr in other._attributes:
            if attr.name in seen:
                existing = self._attributes[seen[attr.name]]
                if existing.type != attr.type:
                    raise SchemaError(
                        f"attribute {attr.name!r} has conflicting types "
                        f"{existing.type!r} vs {attr.type!r}"
                    )
            else:
                seen[attr.name] = len(merged)
                merged.append(attr)
        return Schema(merged)
