"""The unified runtime entry point: one config, one factory.

The three runtimes accreted divergent constructor surfaces as the stack
grew — :class:`~repro.runtime.QueryRuntime` (PR 1),
:class:`~repro.shard.runtime.ShardedRuntime` (PR 3) and
:class:`~repro.shard.proc.ProcessShardedRuntime` (PR 4+) each take a
different kwarg set (``durable=``, ``checkpoint_every=``, ``store=``,
``journal=``, ``observe=`` …), and every caller — CLI, benchmarks, tests —
re-implemented the "which runtime do I build" decision tree.

:class:`RuntimeConfig` is the single declarative surface and
:func:`open_runtime` the single factory:

- ``shards=1`` (no ``process``) → a plain :class:`QueryRuntime`;
- ``shards>1`` → an in-process :class:`ShardedRuntime`;
- ``process=True`` → a :class:`ProcessShardedRuntime` with worker
  processes (default 2 shards), optionally durable / checkpointed /
  journaled;
- ``resume=True`` → cold-start from ``journal`` via
  :meth:`ProcessShardedRuntime.from_journal`.

Invalid combinations fail in :meth:`RuntimeConfig.validate` with
actionable one-line errors naming both the library field and the CLI flag
that fixes them.

The old constructors keep working but emit a :class:`DeprecationWarning`
when called directly from application code; internal construction (a
sharded runtime building its per-shard engines, a worker process building
its runtime, the factory itself) is exempt via
:func:`internal_construction`.
"""

from __future__ import annotations

import threading
import warnings
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from typing import Optional

from repro.errors import LifecycleError

_construction = threading.local()


@contextmanager
def internal_construction():
    """Suppress the direct-construction deprecation warning.

    Used by the factory and by runtimes that build other runtimes as
    implementation detail (per-shard engines, worker processes) — those
    constructions are not application entry points.
    """
    depth = getattr(_construction, "depth", 0)
    _construction.depth = depth + 1
    try:
        yield
    finally:
        _construction.depth = depth


def warn_direct_construction(name: str) -> None:
    """Emit the legacy-constructor deprecation warning (once per site)."""
    if getattr(_construction, "depth", 0):
        return
    warnings.warn(
        f"direct construction of {name} is deprecated; build it through "
        f"repro.open_runtime(RuntimeConfig(...)) so runtime selection and "
        f"option validation live in one place",
        DeprecationWarning,
        stacklevel=3,
    )


@dataclass
class RuntimeConfig:
    """Declarative description of a runtime to open.

    Field names line up with the CLI's shared runtime option group
    (``--shards`` / ``--process`` / ``--durable`` / ``--checkpoint-every``
    / ``--checkpoint-dir`` / ``--coordinator-journal`` / ``--resume`` /
    ``--observe``), so a parsed argument namespace maps onto a config
    1:1.
    """

    #: Source stream name → schema, declared before the first event.
    sources: Optional[dict] = None
    #: Shard count; ``None`` means 1 in-process, 2 with ``process=True``.
    shards: Optional[int] = None
    #: Serve each shard on a forked worker process (command protocol).
    process: bool = False
    capture_outputs: bool = False
    track_latency: bool = False
    incremental: bool = True
    observe: bool = False
    max_batch: int = 1024
    #: Process mode: source-run transport — ``"columnar"`` ships packed
    #: columns over per-worker shared-memory rings (pickle fallback per
    #: run), ``"pickle"`` forces the legacy tuple wire everywhere.
    data_plane: str = "columnar"
    #: Process mode: keep per-shard write-ahead logs for crash recovery.
    durable: bool = False
    #: Process mode: checkpoint every N batches (implies ``durable``).
    checkpoint_every: int = 0
    #: Process mode: persist checkpoints under this directory.
    checkpoint_dir: Optional[str] = None
    #: Process mode: coordinator journal directory (implies ``durable``).
    journal: Optional[str] = None
    #: Cold-start from ``journal`` instead of building a fresh fleet.
    resume: bool = False
    differential: bool = True
    full_checkpoint_every: int = 8
    command_timeout: float = 2.0
    max_retries: int = 30
    retry_budget: float = 0.0
    #: Extra keyword arguments forwarded verbatim to the selected
    #: constructor (fault harnesses, custom stores — test-only surface).
    extra: dict = field(default_factory=dict)

    @property
    def resolved_shards(self) -> int:
        """Effective shard count (the CLI's historical defaulting rule)."""
        if self.shards is not None:
            return self.shards
        return 2 if self.process else 1

    def validate(self) -> "RuntimeConfig":
        """Check cross-field consistency; raises actionable one-liners."""
        if self.shards is not None and self.shards < 1:
            raise LifecycleError(
                f"shards must be at least 1, got {self.shards} — pass "
                f"shards=1 (--shards 1) for a single-engine runtime"
            )
        if self.checkpoint_every < 0:
            raise LifecycleError(
                f"checkpoint_every must be non-negative, got "
                f"{self.checkpoint_every}"
            )
        if (
            self.durable or self.checkpoint_every or self.checkpoint_dir
        ) and not self.process:
            raise LifecycleError(
                "durable/checkpoint_every/checkpoint_dir require process "
                "mode — add process=True (--process): the in-process "
                "runtimes have no workers to lose"
            )
        if (self.journal or self.resume) and not self.process:
            raise LifecycleError(
                "journal/resume require process mode — add process=True "
                "(--process): only the process-mode coordinator journals "
                "its state"
            )
        if self.resume and not self.journal:
            raise LifecycleError(
                "resume needs a coordinator journal directory to resume "
                "from — set journal=DIR (--coordinator-journal DIR)"
            )
        if self.max_batch < 1:
            raise LifecycleError(
                f"max_batch must be at least 1, got {self.max_batch}"
            )
        if self.data_plane not in ("columnar", "pickle"):
            raise LifecycleError(
                f"data_plane must be 'columnar' or 'pickle', got "
                f"{self.data_plane!r} (--data-plane columnar|pickle)"
            )
        return self


def open_runtime(config: Optional[RuntimeConfig] = None, **overrides):
    """Open the runtime a :class:`RuntimeConfig` describes.

    ``overrides`` are applied on top of ``config`` (or a default config),
    so quick call sites can write ``open_runtime(sources=..., shards=4)``
    without building the dataclass first.  Returns one of
    :class:`~repro.runtime.QueryRuntime`,
    :class:`~repro.shard.runtime.ShardedRuntime` or
    :class:`~repro.shard.proc.ProcessShardedRuntime`.
    """
    if config is None:
        config = RuntimeConfig()
    if overrides:
        config = replace(config, **overrides)
    config.validate()
    with internal_construction():
        if config.process:
            return _open_process(config)
        if config.resolved_shards > 1:
            from repro.shard.runtime import ShardedRuntime

            return ShardedRuntime(
                config.sources,
                n_shards=config.resolved_shards,
                capture_outputs=config.capture_outputs,
                track_latency=config.track_latency,
                incremental=config.incremental,
                observe=config.observe,
                **config.extra,
            )
        from repro.runtime.runtime import QueryRuntime

        return QueryRuntime(
            config.sources,
            capture_outputs=config.capture_outputs,
            track_latency=config.track_latency,
            incremental=config.incremental,
            observe=config.observe,
            **config.extra,
        )


def _open_process(config: RuntimeConfig):
    from repro.shard.proc import ProcessShardedRuntime

    if config.resume:
        return ProcessShardedRuntime.from_journal(
            config.journal,
            capture_outputs=config.capture_outputs,
            track_latency=config.track_latency,
            observe=config.observe,
            **config.extra,
        )
    store = None
    if config.checkpoint_dir:
        from repro.shard.checkpoint import CheckpointStore

        store = CheckpointStore(path=config.checkpoint_dir)
    return ProcessShardedRuntime(
        config.sources,
        n_shards=config.resolved_shards,
        capture_outputs=config.capture_outputs,
        track_latency=config.track_latency,
        incremental=config.incremental,
        observe=config.observe,
        max_batch=config.max_batch,
        data_plane=config.data_plane,
        durable=config.durable,
        checkpoint_every=config.checkpoint_every,
        store=store,
        journal=config.journal,
        differential=config.differential,
        full_checkpoint_every=config.full_checkpoint_every,
        command_timeout=config.command_timeout,
        max_retries=config.max_retries,
        retry_budget=config.retry_budget,
        **config.extra,
    )
