"""Online query lifecycle runtime.

The paper's optimizer — like the seed engine — assumes the whole query batch
is known up front.  This package drops that assumption: a
:class:`QueryRuntime` owns a live plan + engine pair and serves
``register`` / ``unregister`` / ``process`` without a stop-the-world
rebuild, using incremental re-optimization
(:meth:`repro.core.Optimizer.optimize_incremental`) and state-preserving
engine migration (:mod:`repro.engine.migration`).
"""

from repro.runtime.config import RuntimeConfig, open_runtime
from repro.runtime.runtime import QueryRuntime

__all__ = ["QueryRuntime", "RuntimeConfig", "open_runtime"]
