"""The online query lifecycle runtime: dynamic register / unregister.

``QueryRuntime`` keeps one *live* :class:`~repro.core.plan.QueryPlan` and one
:class:`~repro.engine.executor.StreamEngine` serving it, and treats query
arrival and departure as the common case rather than a rebuild:

``register(query)``
    compiles the query (text or :class:`~repro.lang.ast.LogicalQuery`) onto
    the live plan, runs a *scoped* rule fixpoint over just the new m-ops and
    their merge frontier (``Optimizer.optimize_incremental``), and migrates
    the engine — reusing every executor whose wiring is untouched, so
    surviving queries keep their window and partial-match state.

``unregister(query_id)``
    drops the query's sink registrations, garbage-collects m-ops no longer
    reachable from any sink (``QueryPlan.prune_unreachable``), and migrates,
    freeing the dead executors' state.

``process(stream_name, tuple)``
    pushes one source event through the engine, accumulating cumulative
    :class:`~repro.engine.metrics.RunStats` (including a ``migrations``
    counter and, optionally, per-query output latency).

The runtime also supports ``incremental=False``, the stop-the-world
baseline: every lifecycle change re-runs the full rule fixpoint and rebuilds
every executor from scratch (losing operator state) — this is what
``benchmarks/bench_churn.py`` compares against.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Union

from repro.core.mop import MOp
from repro.core.optimizer import OptimizationReport, Optimizer
from repro.core.plan import QueryPlan
from repro.engine.executor import StreamEngine
from repro.engine.metrics import RunStats
from repro.engine.migration import MigrationStats, migrate_engine
from repro.errors import LifecycleError, QueryLanguageError
from repro.lang.ast import LogicalQuery
from repro.lang.compiler import compile_into
from repro.streams.channel import ChannelTuple
from repro.streams.schema import Schema
from repro.streams.stream import StreamDef
from repro.streams.tuples import StreamTuple


class QueryRuntime:
    """A live multi-query plan + engine serving a changing query population."""

    def __init__(
        self,
        sources: Optional[dict[str, Schema]] = None,
        optimizer: Optional[Optimizer] = None,
        capture_outputs: bool = False,
        track_latency: bool = False,
        incremental: bool = True,
    ):
        self.plan = QueryPlan()
        self.optimizer = optimizer or Optimizer()
        self.incremental = incremental
        self.streams: dict[str, StreamDef] = {}
        if sources:
            for name, schema in sources.items():
                self.add_source(name, schema)
        self.engine = StreamEngine(
            self.plan,
            capture_outputs=capture_outputs,
            track_latency=track_latency,
        )
        #: Cumulative statistics across every processed event and migration.
        self.stats = RunStats()
        #: Per-lifecycle-change optimizer reports, in order.
        self.reports: list[OptimizationReport] = []
        #: Per-lifecycle-change migration statistics, in order.
        self.migration_log: list[MigrationStats] = []
        self._active: dict[str, LogicalQuery] = {}

    # -- sources -------------------------------------------------------------------

    def add_source(
        self,
        name: str,
        schema: Schema,
        sharable_label: Optional[str] = None,
    ) -> StreamDef:
        """Declare a source stream the runtime will accept events on."""
        if name in self.streams:
            raise LifecycleError(f"source {name!r} is already declared")
        stream = self.plan.add_source(name, schema, sharable_label=sharable_label)
        self.streams[name] = stream
        return stream

    # -- lifecycle -----------------------------------------------------------------

    @property
    def active_queries(self) -> list[str]:
        return list(self._active)

    def register(
        self,
        query: Union[str, LogicalQuery],
        query_id: Optional[str] = None,
    ) -> OptimizationReport:
        """Add a query to the live plan without stopping the stream.

        ``query`` is pipeline-language text (then ``query_id`` is required)
        or a :class:`LogicalQuery`.  Compilation, scoped re-optimization and
        engine migration happen between two events; state held by untouched
        executors survives.  Returns the optimizer report.
        """
        from repro.lang.compiler import as_logical

        try:
            logical = as_logical(query, query_id)
        except QueryLanguageError as error:
            raise LifecycleError(str(error)) from error
        if logical.query_id in self._active:
            raise LifecycleError(
                f"query {logical.query_id!r} is already registered"
            )
        for name in logical.sources():
            if name not in self.streams:
                raise LifecycleError(
                    f"query {logical.query_id!r} reads unknown source {name!r}"
                )
        try:
            __, dirty = compile_into(logical, self.plan, self.streams)
            if self.incremental:
                report = self.optimizer.optimize_incremental(
                    self.plan, dirty, frozen=self.engine.stateful_mop_ids()
                )
            else:
                report = self.optimizer.optimize(self.plan)
            self._migrate()
        except Exception:
            # Roll the half-registered query back out: drop any sink it
            # already claimed, prune its orphan m-ops, and re-sync the
            # engine, so the live plan keeps serving the other queries and a
            # retry of the same query_id starts clean.  Cleanup is best
            # effort — the original failure must surface, not be masked.
            try:
                self.plan.unmark_output(logical.query_id)
                self.plan.prune_unreachable()
                migrate_engine(self.engine)
            except Exception:
                pass
            raise
        self._active[logical.query_id] = logical
        self.reports.append(report)
        return report

    def unregister(self, query_id: str) -> list[MOp]:
        """Retire a query: drop its sinks, GC unreachable m-ops, migrate.

        Returns the garbage-collected m-ops (empty when everything the query
        used is shared with still-active queries).
        """
        if query_id not in self._active:
            raise LifecycleError(f"query {query_id!r} is not registered")
        self.plan.unmark_output(query_id)
        removed = self.plan.prune_unreachable()
        del self._active[query_id]
        self._migrate()
        return removed

    def reoptimize(self) -> OptimizationReport:
        """Maintenance sweep: re-run the rules over the *whole* live plan.

        Incremental registration skips merges that would disturb executors
        holding state, and never revisits them — under sustained churn,
        duplicate m-ops whose state has since drained can accumulate.  This
        runs a fixpoint scoped to every current m-op (still honouring the
        frozen set, so live state is still never dropped) and migrates;
        call it periodically, or when ``len(plan.mops)`` creeps up.
        """
        report = self.optimizer.optimize_incremental(
            self.plan, list(self.plan.mops),
            frozen=self.engine.stateful_mop_ids(),
        )
        self._migrate()
        self.reports.append(report)
        return report

    def _migrate(self) -> MigrationStats:
        if self.incremental:
            migration = migrate_engine(self.engine)
        else:
            import time

            started = time.perf_counter()
            previous = len(self.engine.executor_entries())
            __, built = self.engine.rebuild_tables(reuse=None)
            migration = MigrationStats(
                reused_executors=0,
                built_executors=built,
                dropped_executors=previous,
                state_carried=0,
                elapsed_seconds=time.perf_counter() - started,
            )
        self.migration_log.append(migration)
        self.stats.migrations += 1
        return migration

    # -- event processing ----------------------------------------------------------

    def process(self, stream_name: str, tuple_: StreamTuple) -> RunStats:
        """Push one source event through the live engine."""
        stream = self.streams.get(stream_name)
        if stream is None:
            raise LifecycleError(f"unknown source stream {stream_name!r}")
        channel = self.plan.channel_of(stream)
        channel_tuple = ChannelTuple(tuple_, 1 << channel.position_of(stream))
        event_stats = self.engine.process(channel, channel_tuple)
        self.stats.absorb(event_stats)
        return event_stats

    def process_batch(
        self, stream_name: str, tuples: Sequence[StreamTuple]
    ) -> RunStats:
        """Push a run of source events (one stream, timestamp order) through
        the live engine's batched dispatch path.

        Lifecycle changes (register / unregister and their engine
        migrations) happen between calls — a batch boundary is the
        migration-safe point, so batching composes with the online
        lifecycle exactly like per-event processing does.
        """
        stream = self.streams.get(stream_name)
        if stream is None:
            raise LifecycleError(f"unknown source stream {stream_name!r}")
        if not tuples:
            return RunStats()
        channel = self.plan.channel_of(stream)
        bit = 1 << channel.position_of(stream)
        batch = [ChannelTuple(tuple_, bit) for tuple_ in tuples]
        event_stats = self.engine.process_batch(channel, batch)
        self.stats.absorb(event_stats)
        return event_stats

    def run(self, events: Iterable[tuple[str, StreamTuple]]) -> RunStats:
        """Process a batch of ``(stream name, tuple)`` events; returns the
        batch's statistics (also folded into :attr:`stats`)."""
        batch = RunStats()
        for stream_name, tuple_ in events:
            batch.absorb(self.process(stream_name, tuple_))
        return batch

    # -- introspection -------------------------------------------------------------

    @property
    def state_size(self) -> int:
        return self.engine.state_size

    @property
    def captured(self) -> dict:
        return self.engine.captured

    def describe(self) -> str:
        """Plan rendering plus live-runtime counters."""
        return (
            f"QueryRuntime: {len(self._active)} active queries, "
            f"state={self.state_size}, migrations={self.stats.migrations}\n"
            f"{self.plan.describe()}"
        )
