"""The online query lifecycle runtime: dynamic register / unregister.

``QueryRuntime`` keeps one *live* :class:`~repro.core.plan.QueryPlan` and one
:class:`~repro.engine.executor.StreamEngine` serving it, and treats query
arrival and departure as the common case rather than a rebuild:

``register(query)``
    compiles the query (text or :class:`~repro.lang.ast.LogicalQuery`) onto
    the live plan, runs a *scoped* rule fixpoint over just the new m-ops and
    their merge frontier (``Optimizer.optimize_incremental``), and migrates
    the engine — reusing every executor whose wiring is untouched, so
    surviving queries keep their window and partial-match state.

``unregister(query_id)``
    drops the query's sink registrations, garbage-collects m-ops no longer
    reachable from any sink (``QueryPlan.prune_unreachable``), and migrates,
    freeing the dead executors' state.

``process(stream_name, tuple)``
    pushes one source event through the engine, accumulating cumulative
    :class:`~repro.engine.metrics.RunStats` (including a ``migrations``
    counter and, optionally, per-query output latency).

The runtime also supports ``incremental=False``, the stop-the-world
baseline: every lifecycle change re-runs the full rule fixpoint and rebuilds
every executor from scratch (losing operator state) — this is what
``benchmarks/bench_churn.py`` compares against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence, Union

from repro.core.mop import MOp
from repro.core.optimizer import OptimizationReport, Optimizer
from repro.core.plan import QueryPlan
from repro.engine.executor import StreamEngine
from repro.engine.metrics import RunStats
from repro.engine.migration import MigrationStats, migrate_engine
from repro.errors import LifecycleError, QueryLanguageError
from repro.lang.ast import LogicalQuery
from repro.lang.compiler import compile_into
from repro.runtime.config import warn_direct_construction
from repro.streams.channel import Channel, ChannelTuple
from repro.streams.schema import Schema
from repro.streams.stream import StreamDef
from repro.streams.tuples import StreamTuple


@dataclass
class ComponentTransfer:
    """A connected component in transit between two runtimes (shards).

    Produced by :meth:`QueryRuntime.export_component`, consumed by
    :meth:`QueryRuntime.import_component`.  Carries the plan subgraph
    (m-ops, derived streams, channels, sink registrations), the logical
    queries it serves, and the *live executors* with their operator state —
    the re-seeding payload that makes a rebalance state-preserving.
    """

    plan_transfer: dict
    queries: dict[str, LogicalQuery]
    #: mop_id -> (wiring signature, executor) snapshot from the donor engine.
    #: Same-process transfers reuse these live executors directly; a transfer
    #: that crossed a process boundary carries :attr:`state` instead.
    entries: dict[int, tuple] = field(default_factory=dict)
    #: query_id -> output tuples captured so far on the donor engine (only
    #: when the donor captures outputs); re-homed so per-query capture
    #: histories stay contiguous across a move.
    captured: dict = field(default_factory=dict)
    #: total operator state captured at export time (accounting only).
    state_carried: int = 0
    #: mop_id -> executor state snapshot (plain picklable containers, see
    #: ``MOpExecutor.snapshot_state``).  Set by the wire codec when a
    #: transfer is serialized: the receiving runtime builds fresh executors
    #: and re-seeds them from these snapshots instead of reusing
    #: :attr:`entries` (live executors hold compiled closures and cannot
    #: cross a process boundary).
    state: Optional[dict] = None

    @property
    def query_ids(self) -> list[str]:
        return list(self.queries)


class QueryRuntime:
    """A live multi-query plan + engine serving a changing query population."""

    def __init__(
        self,
        sources: Optional[dict[str, Schema]] = None,
        optimizer: Optional[Optimizer] = None,
        capture_outputs: bool = False,
        track_latency: bool = False,
        incremental: bool = True,
        observe=False,
    ):
        warn_direct_construction("QueryRuntime")
        self.plan = QueryPlan()
        self.optimizer = optimizer or Optimizer()
        self.incremental = incremental
        self.streams: dict[str, StreamDef] = {}
        if sources:
            for name, schema in sources.items():
                self.add_source(name, schema)
        self.engine = StreamEngine(
            self.plan,
            capture_outputs=capture_outputs,
            track_latency=track_latency,
            observe=observe,
        )
        #: Cumulative statistics across every processed event and migration.
        self.stats = RunStats()
        #: Per-lifecycle-change optimizer reports, in order.
        self.reports: list[OptimizationReport] = []
        #: Per-lifecycle-change migration statistics, in order.
        self.migration_log: list[MigrationStats] = []
        #: Per-source-stream processed-event counts (the runtime's **stream
        #: cursor**).  A checkpoint taken between two events records this
        #: cursor as its consistency cut: replaying the source suffix from
        #: the cursor onward reproduces the runtime's state exactly.
        self.cursor: dict[str, int] = {}
        self._active: dict[str, LogicalQuery] = {}
        #: alias → relay-export entry (see :meth:`export_stream`): the
        #: queries whose sink channels this runtime re-emits as derived
        #: source streams for consumers on other shards.
        self.relay_exports: dict[str, dict] = {}

    # -- sources -------------------------------------------------------------------

    def add_source(
        self,
        name: str,
        schema: Schema,
        sharable_label: Optional[str] = None,
    ) -> StreamDef:
        """Declare a source stream the runtime will accept events on."""
        if name in self.streams:
            raise LifecycleError(f"source {name!r} is already declared")
        stream = self.plan.add_source(name, schema, sharable_label=sharable_label)
        self.streams[name] = stream
        return stream

    def adopt_source(
        self, stream: StreamDef, channel: Optional[Channel] = None
    ) -> StreamDef:
        """Adopt an *existing* source stream (shared-object sharding contract).

        Shard runtimes created by :class:`~repro.shard.runtime.ShardedRuntime`
        all adopt the same source ``StreamDef``/``Channel`` objects, so a
        component's wiring signatures survive a move between shard plans and
        its executors can be reused, state intact.
        """
        if stream.name in self.streams:
            raise LifecycleError(f"source {stream.name!r} is already declared")
        self.plan.adopt_source(stream, channel)
        self.streams[stream.name] = stream
        return stream

    # -- lifecycle -----------------------------------------------------------------

    @property
    def active_queries(self) -> list[str]:
        return list(self._active)

    def register(
        self,
        query: Union[str, LogicalQuery],
        query_id: Optional[str] = None,
    ) -> OptimizationReport:
        """Add a query to the live plan without stopping the stream.

        ``query`` is pipeline-language text (then ``query_id`` is required)
        or a :class:`LogicalQuery`.  Compilation, scoped re-optimization and
        engine migration happen between two events; state held by untouched
        executors survives.  Returns the optimizer report.
        """
        from repro.lang.compiler import as_logical

        try:
            logical = as_logical(query, query_id)
        except QueryLanguageError as error:
            raise LifecycleError(str(error)) from error
        if logical.query_id in self._active:
            raise LifecycleError(
                f"query {logical.query_id!r} is already registered"
            )
        for name in logical.sources():
            if name not in self.streams:
                raise LifecycleError(
                    f"query {logical.query_id!r} reads unknown source {name!r}"
                )
        try:
            __, dirty = compile_into(logical, self.plan, self.streams)
            if self.incremental:
                report = self.optimizer.optimize_incremental(
                    self.plan, dirty, frozen=self.engine.stateful_mop_ids()
                )
            else:
                report = self.optimizer.optimize(self.plan)
            self._migrate()
        except Exception:
            # Roll the half-registered query back out: drop any sink it
            # already claimed, prune its orphan m-ops, and re-sync the
            # engine, so the live plan keeps serving the other queries and a
            # retry of the same query_id starts clean.  Cleanup is best
            # effort — the original failure must surface, not be masked.
            try:
                self.plan.unmark_output(logical.query_id)
                self.plan.prune_unreachable()
                migrate_engine(self.engine)
            except Exception:
                pass
            raise
        self._active[logical.query_id] = logical
        self.reports.append(report)
        self._refresh_relay_exports()
        return report

    def unregister(self, query_id: str) -> list[MOp]:
        """Retire a query: drop its sinks, GC unreachable m-ops, migrate.

        Returns the garbage-collected m-ops (empty when everything the query
        used is shared with still-active queries).
        """
        if query_id not in self._active:
            raise LifecycleError(f"query {query_id!r} is not registered")
        for alias, entry in self.relay_exports.items():
            if entry.get("query_id") == query_id:
                raise LifecycleError(
                    f"query {query_id!r} feeds exported stream {alias!r}; "
                    f"remove the export before unregistering"
                )
        self.plan.unmark_output(query_id)
        removed = self.plan.prune_unreachable()
        del self._active[query_id]
        self._migrate()
        self._refresh_relay_exports()
        return removed

    def reoptimize(self) -> OptimizationReport:
        """Maintenance sweep: re-run the rules over the *whole* live plan.

        Incremental registration skips merges that would disturb executors
        holding state, and never revisits them — under sustained churn,
        duplicate m-ops whose state has since drained can accumulate.  This
        runs a fixpoint scoped to every current m-op (still honouring the
        frozen set, so live state is still never dropped) and migrates;
        call it periodically, or when ``len(plan.mops)`` creeps up.
        """
        report = self.optimizer.optimize_incremental(
            self.plan, list(self.plan.mops),
            frozen=self.engine.stateful_mop_ids(),
        )
        self._migrate()
        self.reports.append(report)
        self._refresh_relay_exports()
        return report

    # -- relay exports (cross-shard derived channels) --------------------------------

    def export_stream(
        self,
        alias: str,
        query_id: Optional[str],
        stream: StreamDef,
        channel: Optional[Channel] = None,
        cursor: int = 0,
    ) -> None:
        """Adopt ``alias`` as a source and, when this runtime owns the
        producing query, tap its sink channel so every output run can be
        re-emitted onto ``alias`` by the coordinator.

        ``query_id=None`` is the consumer-side half: the alias becomes a
        plain source this runtime's queries may read.  ``cursor`` seeds the
        tap's produced count (checkpoint restore / tap re-homing), so the
        coordinator's collected cursor keeps lining up across recoveries —
        the exactly-once discipline for relayed runs.  Idempotent.
        """
        if stream.name != alias:
            raise LifecycleError(
                f"alias {alias!r} does not match stream {stream.name!r}"
            )
        if alias not in self.streams:
            self.adopt_source(stream, channel)
        if query_id is None:
            return
        if query_id not in self._active:
            raise LifecycleError(f"query {query_id!r} is not registered")
        from repro.shard.relay import sink_channel_of

        sink = sink_channel_of(self.plan, query_id)
        tap = self.engine.install_relay_tap(sink)
        entry = self.relay_exports.get(alias)
        if entry is None:
            tap.produced = cursor
            self.relay_exports[alias] = {
                "query_id": query_id,
                "channel": sink,
                "stream": stream,
                "alias_channel": channel or self.plan.channel_of(stream),
                #: ``(start_cursor, run)`` runs collected but not yet
                #: acknowledged — retained so a coordinator crash between
                #: collect and journal never loses relay tuples.
                "retained": [],
                #: Cursor of the next uncollected tuple.
                "next_start": cursor,
            }
        else:
            entry["query_id"] = query_id
            entry["channel"] = sink

    def remove_export(self, alias: str) -> Optional[dict]:
        """Drop a relay export (tap removed, retained runs discarded).

        The alias stays adopted as a plain source — consumers may still
        hold compiled plans against it; it simply stops producing.
        """
        entry = self.relay_exports.pop(alias, None)
        if entry is not None:
            self.engine.remove_relay_tap(entry["channel"].channel_id)
        return entry

    def collect_relay(self, alias: str, ack: int) -> tuple[int, list, int]:
        """Drain the export's tap into its retained window and return it.

        ``ack`` is the coordinator's durable collected cursor: retained
        runs entirely at or below it are dropped (delivered and journaled),
        everything after it is returned again — re-collection after a
        coordinator restart replays exactly the unacknowledged suffix.
        Returns ``(start_cursor, runs, produced)``.
        """
        entry = self.relay_exports[alias]
        retained = entry["retained"]
        while retained and retained[0][0] + len(retained[0][1]) <= ack:
            retained.pop(0)
        for run in self.engine.take_relay_runs(entry["channel"].channel_id):
            retained.append((entry["next_start"], run))
            entry["next_start"] += len(run)
        start = retained[0][0] if retained else entry["next_start"]
        return start, [run for __, run in retained], entry["next_start"]

    def _refresh_relay_exports(self) -> None:
        """Re-home taps whose sink channel moved under a sharing merge.

        ``eliminate_duplicate`` can transfer a query's sink registration to
        a representative m-op's output stream mid-churn; the tap follows,
        carrying its cursor and any buffered runs, so relay numbering never
        restarts."""
        if not self.relay_exports:
            return
        from repro.shard.relay import sink_channel_of

        for entry in self.relay_exports.values():
            sink = sink_channel_of(self.plan, entry["query_id"])
            if sink.channel_id == entry["channel"].channel_id:
                continue
            old = self.engine.relay_tap(entry["channel"].channel_id)
            self.engine.remove_relay_tap(entry["channel"].channel_id)
            tap = self.engine.install_relay_tap(sink)
            if old is not None:
                tap.produced = old.produced
                tap.runs = old.runs + tap.runs
            entry["channel"] = sink

    # -- component transfer (cross-shard rebalance) ----------------------------------

    def component_of(self, query_id: str) -> list[MOp]:
        """The m-ops of ``query_id``'s connected component (derived-channel
        closure: producers, consumers and co-consumers of derived streams).

        Source channels do not connect — they are shared infrastructure, so
        two queries reading the same source but sharing no m-op are separate
        components and can live on different shards.
        """
        if query_id not in self._active:
            raise LifecycleError(f"query {query_id!r} is not registered")
        plan = self.plan
        seeds: list[MOp] = []
        for mop in plan.mops:
            if any(instance.query_id == query_id for instance in mop.instances):
                seeds.append(mop)
        for stream, query_ids in plan.sink_streams():
            if query_id in query_ids:
                producer = plan.producer_mop_of(stream)
                if producer is not None and producer not in seeds:
                    seeds.append(producer)
        if not seeds:
            raise LifecycleError(
                f"query {query_id!r} has no m-ops in the live plan"
            )
        member_ids = {id(mop) for mop in seeds}
        component = list(seeds)
        frontier = list(seeds)
        while frontier:
            mop = frontier.pop()
            neighbours: list[MOp] = []
            for stream in mop.input_streams:
                producer = plan.producer_mop_of(stream)
                if producer is not None:
                    neighbours.append(producer)
                    for consumer, __, __index in plan.consumers_of(stream):
                        neighbours.append(consumer)
            for stream in mop.output_streams:
                for consumer, __, __index in plan.consumers_of(stream):
                    neighbours.append(consumer)
            for neighbour in neighbours:
                if id(neighbour) not in member_ids:
                    member_ids.add(id(neighbour))
                    component.append(neighbour)
                    frontier.append(neighbour)
        return component

    def _moved_query_ids(self, component: list[MOp]) -> set:
        """The queries a component carries: instance attributions plus the
        registrations on its sink streams.  Shared by the rebalance
        pre-flight view and the actual export, so the two can never
        disagree about which queries move."""
        moved: set = set()
        for mop in component:
            for instance in mop.instances:
                if instance.query_id is not None:
                    moved.add(instance.query_id)
        sinks = self.plan.sinks
        for mop in component:
            for stream in mop.output_streams:
                moved.update(sinks.get(stream.stream_id, ()))
        return moved

    def component_query_ids(self, query_id: str) -> list[str]:
        """Every query that would move with ``query_id`` in a rebalance.

        Sorted for determinism.  This is the pre-flight view rebalance
        policies use to judge whether a component is worth (or too big)
        to move.
        """
        return sorted(self._moved_query_ids(self.component_of(query_id)))

    def export_component(self, query_id: str) -> ComponentTransfer:
        """Drain ``query_id``'s component out of this runtime, state intact.

        Every query sharing any m-op with ``query_id`` (transitively) moves
        with it.  Must be called on a batch boundary — the same safe point
        every migration uses; the component's executors are snapshotted
        *with* their window/partial-match state, the plan subgraph is
        detached, and the engine migrates to serve the remaining queries.
        """
        return self._capture_component(query_id, detach=True)

    def checkpoint_component(self, query_id: str) -> ComponentTransfer:
        """Moment-in-time, **non-destructive** snapshot of a component.

        The same shape :meth:`export_component` produces — plan subgraph,
        logical queries, executor entries, captured histories — but nothing
        is detached: the runtime keeps serving the component, and the
        snapshot records its state at the current cursor
        (:attr:`cursor`, declared per source stream).  Because the returned
        transfer *references* the live plan subgraph and executors, it is
        only valid for immediate serialization
        (:func:`~repro.shard.wire.encode_transfer` deep-copies everything);
        importing it directly into another runtime would alias live m-ops
        and must never be done.  This is the capture primitive of the
        durable checkpoint subsystem (:mod:`repro.shard.checkpoint`).
        """
        return self._capture_component(query_id, detach=False)

    def _capture_component(self, query_id: str, detach: bool) -> ComponentTransfer:
        """One capture path behind export (detach) and checkpoint (view),
        so the two can never disagree about what a transfer carries."""
        component = self.component_of(query_id)
        component_ids = {mop.mop_id for mop in component}
        moved_query_ids = self._moved_query_ids(component)
        entries = {
            mop_id: entry
            for mop_id, entry in self.engine.executor_entries().items()
            if mop_id in component_ids
        }
        state_carried = sum(
            executor.state_size for __, executor in entries.values()
        )
        if detach:
            plan_transfer = self.plan.release_component(component)
        else:
            # Same shape, nothing detached (pickling in encode_transfer is
            # what turns the view into an independent copy).
            plan_transfer = self.plan.view_component(component)
        queries = {}
        captured = {}
        for moved_id in moved_query_ids:
            if detach:
                logical = self._active.pop(moved_id, None)
                history = self.engine.captured.pop(moved_id, None)
            else:
                logical = self._active.get(moved_id)
                history = self.engine.captured.get(moved_id)
                history = list(history) if history is not None else None
            if logical is not None:
                queries[moved_id] = logical
            if history is not None:
                captured[moved_id] = history
        if detach:
            self._migrate()
        return ComponentTransfer(
            plan_transfer=plan_transfer,
            queries=queries,
            entries=entries,
            captured=captured,
            state_carried=state_carried,
        )

    def import_component(self, transfer: ComponentTransfer) -> MigrationStats:
        """Graft an exported component into this runtime, re-seeding state.

        The component's streams keep their channels and its instances their
        identity, so the recomputed wiring signatures match the snapshot and
        the migration machinery reuses the donor's executors — window and
        sequence state arrive intact.  Requires this runtime to share the
        donor's source stream objects (:meth:`adopt_source`) — or, for a
        transfer that crossed a process boundary, stream objects with the
        same ids (the fork contract of the process-mode runtime).

        A deserialized transfer carries no live executors; instead its
        :attr:`ComponentTransfer.state` snapshots re-seed the freshly built
        executors, so window contents, sequence instance stores and
        captured-output histories survive the process hop.
        """
        for query_id in transfer.queries:
            if query_id in self._active:
                raise LifecycleError(
                    f"query {query_id!r} is already registered here"
                )
        self.plan.adopt_component(transfer.plan_transfer)
        self._active.update(transfer.queries)
        for query_id, history in transfer.captured.items():
            self.engine.captured.setdefault(query_id, []).extend(history)
        try:
            migration = migrate_engine(self.engine, extra_reuse=transfer.entries)
            if transfer.state:
                entries = self.engine.executor_entries()
                carried = 0
                for mop_id, snapshot in transfer.state.items():
                    executor = entries[mop_id][1]
                    executor.restore_state(snapshot)
                    carried += executor.state_size
                # Only the re-seeded executors' state was carried by this
                # migration; state already resident here is not attributed.
                migration.state_carried = carried
        except Exception:
            # Undo the adoption so the component lives in *no* plan rather
            # than half in this one: the caller still holds the transfer
            # (executors included) and can re-import it elsewhere.
            for query_id in transfer.queries:
                self._active.pop(query_id, None)
            for query_id in transfer.captured:
                self.engine.captured.pop(query_id, None)
            self.plan.release_component(transfer.plan_transfer["mops"])
            migrate_engine(self.engine)
            raise
        self.migration_log.append(migration)
        self.stats.migrations += 1
        self._refresh_relay_exports()
        return migration

    def _migrate(self) -> MigrationStats:
        if self.incremental:
            migration = migrate_engine(self.engine)
        else:
            import time

            started = time.perf_counter()
            previous = len(self.engine.executor_entries())
            __, built = self.engine.rebuild_tables(reuse=None)
            migration = MigrationStats(
                reused_executors=0,
                built_executors=built,
                dropped_executors=previous,
                state_carried=0,
                elapsed_seconds=time.perf_counter() - started,
            )
        self.migration_log.append(migration)
        self.stats.migrations += 1
        return migration

    # -- event processing ----------------------------------------------------------

    def process(self, stream_name: str, tuple_: StreamTuple) -> RunStats:
        """Push one source event through the live engine."""
        stream = self.streams.get(stream_name)
        if stream is None:
            raise LifecycleError(f"unknown source stream {stream_name!r}")
        channel = self.plan.channel_of(stream)
        channel_tuple = ChannelTuple(tuple_, 1 << channel.position_of(stream))
        event_stats = self.engine.process(channel, channel_tuple)
        self.cursor[stream_name] = self.cursor.get(stream_name, 0) + 1
        self.stats.absorb(event_stats)
        return event_stats

    def process_batch(
        self, stream_name: str, tuples: Sequence[StreamTuple]
    ) -> RunStats:
        """Push a run of source events (one stream, timestamp order) through
        the live engine's batched dispatch path.

        Lifecycle changes (register / unregister and their engine
        migrations) happen between calls — a batch boundary is the
        migration-safe point, so batching composes with the online
        lifecycle exactly like per-event processing does.
        """
        stream = self.streams.get(stream_name)
        if stream is None:
            raise LifecycleError(f"unknown source stream {stream_name!r}")
        if not tuples:
            return RunStats()
        channel = self.plan.channel_of(stream)
        bit = 1 << channel.position_of(stream)
        batch = [ChannelTuple(tuple_, bit) for tuple_ in tuples]
        event_stats = self.engine.process_batch(channel, batch)
        self.cursor[stream_name] = self.cursor.get(stream_name, 0) + len(tuples)
        self.stats.absorb(event_stats)
        return event_stats

    def process_columns(self, stream_name: str, batch) -> RunStats:
        """Push a packed columnar run (:class:`~repro.streams.columns.
        ColumnBatch`) through the engine's columnar entry.

        Accounting mirrors :meth:`process_batch` exactly — the stream
        cursor advances by the row count and the stats fold the same way —
        so checkpoint cuts and journal positions are transport-agnostic.
        """
        stream = self.streams.get(stream_name)
        if stream is None:
            raise LifecycleError(f"unknown source stream {stream_name!r}")
        if not batch.count:
            return RunStats()
        channel = self.plan.channel_of(stream)
        event_stats = self.engine.process_columns(channel, batch)
        self.cursor[stream_name] = self.cursor.get(stream_name, 0) + batch.count
        self.stats.absorb(event_stats)
        return event_stats

    def run(self, events: Iterable[tuple[str, StreamTuple]]) -> RunStats:
        """Process a batch of ``(stream name, tuple)`` events; returns the
        batch's statistics (also folded into :attr:`stats`)."""
        batch = RunStats()
        for stream_name, tuple_ in events:
            batch.absorb(self.process(stream_name, tuple_))
        return batch

    # -- introspection -------------------------------------------------------------

    @property
    def state_size(self) -> int:
        return self.engine.state_size

    @property
    def captured(self) -> dict:
        return self.engine.captured

    @property
    def observer(self):
        """The engine's :class:`~repro.obs.mops.MOpObserver`, or None.

        It lives on the engine (migrations mutate the engine in place and
        re-attribute records on every table rebuild), so cumulative per-m-op
        counters survive the whole lifecycle of this runtime.
        """
        return self.engine.observer

    def mop_stats(self) -> dict[int, dict]:
        """Per-m-op telemetry records (empty unless ``observe=`` was set)."""
        return self.engine.mop_stats()

    def query_heat(self) -> dict:
        """query_id -> extrapolated executor busy seconds (empty unless
        observing) — the heat signal :class:`~repro.shard.policy.
        ThroughputPolicy` can use instead of output counts."""
        observer = self.engine.observer
        return observer.query_heat() if observer is not None else {}

    def metrics_registry(self):
        """A fresh :class:`~repro.obs.metrics.MetricsRegistry` holding this
        runtime's RunStats counters plus (when observing) per-m-op records —
        the single-runtime face of the sharded runtimes' method of the same
        name."""
        from repro.obs.metrics import MetricsRegistry, publish_run_stats

        registry = MetricsRegistry()
        publish_run_stats(registry, self.stats)
        observer = self.engine.observer
        if observer is not None:
            observer.publish(registry)
        return registry

    def describe(self) -> str:
        """Plan rendering plus live-runtime counters."""
        return (
            f"QueryRuntime: {len(self._active)} active queries, "
            f"state={self.state_size}, migrations={self.stats.migrations}\n"
            f"{self.plan.describe()}"
        )
