"""Execution engine: push-based evaluation of RUMOR query plans.

The engine instantiates one executor per m-op, merges the sources into one
timestamp-ordered event sequence, and propagates channel tuples through the
plan DAG tuple-at-a-time — m-ops are "the basic scheduling and execution
units in the engine" (§2.1).  :mod:`repro.engine.metrics` provides the
throughput accounting used by the §5 experiments.
"""

from repro.engine.executor import StreamEngine
from repro.engine.metrics import RunStats
from repro.engine.migration import MigrationStats, migrate_engine, wiring_signature

__all__ = [
    "StreamEngine",
    "RunStats",
    "MigrationStats",
    "migrate_engine",
    "wiring_signature",
]
