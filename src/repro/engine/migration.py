"""State-preserving engine migration for live plan rewrites.

When the online runtime grafts a new query into a running plan (or
garbage-collects a departed one), the engine's executor set, routing table
and sink table go stale.  A full rebuild would also discard every window and
partial-match state accumulated so far — wrong for the surviving queries.

Migration instead *diffs* the engine against the rewritten plan:

- each m-op's **wiring signature** — the channels (and bit positions) its
  instances read and write — is recomputed from the plan;
- executors whose m-op survived with an identical signature are **reused**,
  carrying their operator state across unchanged;
- executors are built fresh only for new or merged m-ops (whose signature or
  identity changed);
- executors of m-ops that left the plan are dropped, freeing their state;
- the routing and sink tables are rebuilt from the plan and swapped in
  atomically together with the executor table.

The incremental optimizer cooperates by never replacing or re-channelizing
m-ops whose executors hold live state (``StreamEngine.stateful_mop_ids``),
so "signature unchanged" is exactly the set of executors whose reuse is
behaviour-preserving.

Migration happens between engine dispatches — under batched dispatch, on a
*batch boundary*: the runtime's ``process``/``process_batch`` calls never
observe half-swapped tables, and the rebuilt flattened channel table (with
its per-channel sink closures and batch-safety cache) flips atomically with
the executor set.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.mop import MOp
from repro.core.plan import QueryPlan

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine.executor import StreamEngine


def wiring_signature(plan: QueryPlan, mop: MOp) -> tuple:
    """Everything an executor reads from the plan wiring at build time.

    Per instance: the (channel id, bit position) of every input stream and
    of the output stream.  If any of these change — a stream was rewired, a
    singleton got encoded into a channel, the instance set itself changed —
    the executor's decode/encode tables are stale and it must be rebuilt.
    """
    parts = []
    for instance in mop.instances:
        inputs = tuple(
            (
                plan.channel_of(stream).channel_id,
                plan.channel_of(stream).position_of(stream),
            )
            for stream in instance.inputs
        )
        output_channel = plan.channel_of(instance.output)
        parts.append(
            (
                id(instance),
                inputs,
                output_channel.channel_id,
                output_channel.position_of(instance.output),
            )
        )
    return tuple(parts)


@dataclass
class MigrationStats:
    """What one engine migration did (for churn-overhead accounting)."""

    reused_executors: int = 0
    built_executors: int = 0
    dropped_executors: int = 0
    state_carried: int = 0
    elapsed_seconds: float = 0.0

    def __str__(self):
        return (
            f"MigrationStats(reused={self.reused_executors}, "
            f"built={self.built_executors}, dropped={self.dropped_executors}, "
            f"state_carried={self.state_carried}, "
            f"elapsed={self.elapsed_seconds * 1e3:.2f}ms)"
        )


def migrate_engine(
    engine: "StreamEngine",
    extra_reuse: dict[int, tuple[tuple, "object"]] | None = None,
) -> MigrationStats:
    """Re-sync ``engine`` with its (rewritten) plan, reusing live executors.

    Mutates the engine in place between events: captured outputs, latency
    configuration and the engine identity all persist, only the executor /
    routing / sink tables are diffed and swapped.  Returns statistics about
    how much state made it across.

    ``extra_reuse`` offers additional mop_id -> (signature, executor) entries
    from *another* engine — the re-seeding half of a cross-shard component
    rebalance: a component adopted from a donor plan keeps its channels and
    instances, so the donor's executors match the recomputed signatures and
    carry their window/sequence state into this engine.
    """
    started = time.perf_counter()
    engine.plan.validate()
    previous = engine.executor_entries()
    if extra_reuse:
        previous = {**extra_reuse, **previous}
    reused, built = engine.rebuild_tables(reuse=previous)
    stats = MigrationStats(
        reused_executors=reused,
        built_executors=built,
        dropped_executors=len(previous) - reused,
        state_carried=engine.state_size,
        elapsed_seconds=time.perf_counter() - started,
    )
    return stats
