"""Run statistics and throughput accounting.

Event counting follows the paper's methodology (§5):

- *input events* are **logical** stream events: a channel tuple encoding k
  streams counts as k events, so the channel and no-channel configurations of
  Figures 10(c–d) and 11 process "exactly the same content" and their
  throughputs are directly comparable;
- *output events* are decoded per query: an output channel tuple whose
  membership covers k query streams counts k logical outputs;
- *physical events* count channel tuples as they flow, which is what the
  engine actually schedules.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class RunStats:
    """Counters and timing for one engine run."""

    input_events: int = 0
    physical_input_events: int = 0
    output_events: int = 0
    physical_events: int = 0
    elapsed_seconds: float = 0.0
    outputs_by_query: dict = field(default_factory=dict)
    #: Largest total operator state observed (only sampled when the engine
    #: is asked to; 0 otherwise).  A memory proxy for window experiments.
    peak_state: int = 0
    #: query_id -> accumulated output latency in seconds: for every output
    #: event, the time between the triggering source event entering the
    #: engine and the output surfacing at the sink.  Only populated when the
    #: engine tracks latency (``StreamEngine(track_latency=True)``).
    latency_by_query: dict = field(default_factory=dict)
    #: Engine migrations performed while these stats accumulated (the online
    #: runtime increments this on every register/unregister).
    migrations: int = 0

    def record_output_latency(self, query_id, seconds: float) -> None:
        self.latency_by_query[query_id] = (
            self.latency_by_query.get(query_id, 0.0) + seconds
        )

    def mean_latency(self, query_id) -> float:
        """Mean output latency for one query (0.0 if it produced nothing)."""
        outputs = self.outputs_by_query.get(query_id, 0)
        if not outputs:
            return 0.0
        return self.latency_by_query.get(query_id, 0.0) / outputs

    @property
    def throughput(self) -> float:
        """Logical input events per second (the paper's y-axis)."""
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.input_events / self.elapsed_seconds

    @property
    def output_rate(self) -> float:
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.output_events / self.elapsed_seconds

    def merge(self, other: "RunStats") -> "RunStats":
        """Combine two runs (used when measurement is split into batches)."""
        merged = RunStats()
        merged.absorb(self)
        merged.absorb(other)
        return merged

    def absorb(self, other: "RunStats") -> None:
        """In-place :meth:`merge` — the per-event accumulation hot path of
        the online runtime, which folds one ``RunStats`` per processed event
        into its cumulative counters without allocating fresh dicts."""
        self.input_events += other.input_events
        self.physical_input_events += other.physical_input_events
        self.output_events += other.output_events
        self.physical_events += other.physical_events
        self.elapsed_seconds += other.elapsed_seconds
        self.peak_state = max(self.peak_state, other.peak_state)
        self.migrations += other.migrations
        for query_id, count in other.outputs_by_query.items():
            self.outputs_by_query[query_id] = (
                self.outputs_by_query.get(query_id, 0) + count
            )
        for query_id, seconds in other.latency_by_query.items():
            self.latency_by_query[query_id] = (
                self.latency_by_query.get(query_id, 0.0) + seconds
            )

    def __str__(self):
        return (
            f"RunStats(in={self.input_events}, out={self.output_events}, "
            f"elapsed={self.elapsed_seconds:.4f}s, "
            f"throughput={self.throughput:,.0f} ev/s)"
        )
