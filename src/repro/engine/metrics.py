"""Run statistics and throughput accounting.

Event counting follows the paper's methodology (§5):

- *input events* are **logical** stream events: a channel tuple encoding k
  streams counts as k events, so the channel and no-channel configurations of
  Figures 10(c–d) and 11 process "exactly the same content" and their
  throughputs are directly comparable;
- *output events* are decoded per query: an output channel tuple whose
  membership covers k query streams counts k logical outputs;
- *physical events* count channel tuples as they flow, which is what the
  engine actually schedules.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class RunStats:
    """Counters and timing for one engine run."""

    input_events: int = 0
    physical_input_events: int = 0
    output_events: int = 0
    physical_events: int = 0
    elapsed_seconds: float = 0.0
    outputs_by_query: dict = field(default_factory=dict)
    #: Largest total operator state observed (only sampled when the engine
    #: is asked to; 0 otherwise).  A memory proxy for window experiments.
    peak_state: int = 0

    @property
    def throughput(self) -> float:
        """Logical input events per second (the paper's y-axis)."""
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.input_events / self.elapsed_seconds

    @property
    def output_rate(self) -> float:
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.output_events / self.elapsed_seconds

    def merge(self, other: "RunStats") -> "RunStats":
        """Combine two runs (used when measurement is split into batches)."""
        merged = RunStats(
            input_events=self.input_events + other.input_events,
            physical_input_events=(
                self.physical_input_events + other.physical_input_events
            ),
            output_events=self.output_events + other.output_events,
            physical_events=self.physical_events + other.physical_events,
            elapsed_seconds=self.elapsed_seconds + other.elapsed_seconds,
        )
        merged.peak_state = max(self.peak_state, other.peak_state)
        merged.outputs_by_query = dict(self.outputs_by_query)
        for query_id, count in other.outputs_by_query.items():
            merged.outputs_by_query[query_id] = (
                merged.outputs_by_query.get(query_id, 0) + count
            )
        return merged

    def __str__(self):
        return (
            f"RunStats(in={self.input_events}, out={self.output_events}, "
            f"elapsed={self.elapsed_seconds:.4f}s, "
            f"throughput={self.throughput:,.0f} ev/s)"
        )
