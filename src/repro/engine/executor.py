"""The push-based stream engine.

``StreamEngine`` freezes a query plan into executors (one per m-op) and a
channel routing table, then drains a timestamp-ordered source merge through
the DAG.  Propagation is breadth-first per source event: every channel tuple
an m-op emits is enqueued and dispatched to the consumers of its channel.

Executors read the plan wiring when they are built, so plan rewrites must not
happen behind a running engine's back.  They may, however, happen *between*
events: :mod:`repro.engine.migration` diffs the engine's executor table
against the (rewritten) plan, reuses executors whose wiring is untouched —
carrying their window/sequence state across — and atomically swaps the
routing and sink tables.  That is what lets the online lifecycle runtime
(:mod:`repro.runtime`) register and unregister queries mid-stream without a
stop-the-world rebuild.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Iterable, Optional, Sequence

from repro.core.mop import MOpExecutor
from repro.core.plan import QueryPlan
from repro.engine.metrics import RunStats
from repro.errors import PlanError
from repro.streams.channel import Channel, ChannelTuple
from repro.streams.sources import StreamSource, merge_sources
from repro.streams.tuples import StreamTuple


class StreamEngine:
    """Executes one query plan over a set of sources."""

    def __init__(
        self,
        plan: QueryPlan,
        capture_outputs: bool = False,
        track_latency: bool = False,
    ):
        plan.validate()
        self.plan = plan
        self.capture_outputs = capture_outputs
        #: Record per-output latency into RunStats (off by default: it costs
        #: one clock read per output event on the hot path).
        self.track_latency = track_latency
        #: mop_id -> (wiring signature, executor); the migration unit.
        self._entries: dict[int, tuple[tuple, MOpExecutor]] = {}
        self._executors: list[MOpExecutor] = []
        # Channel routing: channel_id -> executors consuming that channel.
        self._routing: dict[int, list[MOpExecutor]] = {}
        # Sink accounting: channel_id -> [(bit, query_ids)].
        self._sink_table: dict[int, list[tuple[int, list]]] = {}
        self.rebuild_tables(reuse=None)
        #: query_id -> captured output tuples (only with capture_outputs).
        self.captured: dict[object, list[StreamTuple]] = {}

    def rebuild_tables(
        self, reuse: Optional[dict[int, tuple[tuple, MOpExecutor]]]
    ) -> tuple[int, int]:
        """(Re)build executors, routing and sink tables from ``self.plan``.

        ``reuse`` maps mop_id to a previous (signature, executor) pair; an
        executor is carried over — keeping its operator state — iff its m-op
        is still in the plan with an identical wiring signature.  Returns
        ``(reused, built)`` counts.  The new tables are computed fully before
        being swapped in, so a raising rewrite cannot leave the engine with
        half-updated routing.
        """
        from repro.engine.migration import wiring_signature

        plan = self.plan
        entries: dict[int, tuple[tuple, MOpExecutor]] = {}
        executors: list[MOpExecutor] = []
        reused = built = 0
        for mop in plan.mops:
            signature = wiring_signature(plan, mop)
            previous = reuse.get(mop.mop_id) if reuse else None
            if previous is not None and previous[0] == signature:
                executor = previous[1]
                reused += 1
            else:
                executor = mop.make_executor(plan)
                built += 1
            entries[mop.mop_id] = (signature, executor)
            executors.append(executor)
        routing: dict[int, list[MOpExecutor]] = {}
        for mop, executor in zip(plan.mops, executors):
            seen: set[int] = set()
            for stream in mop.input_streams:
                channel = plan.channel_of(stream)
                if channel.channel_id in seen:
                    continue
                seen.add(channel.channel_id)
                routing.setdefault(channel.channel_id, []).append(executor)
        sink_table: dict[int, list[tuple[int, list]]] = {}
        for stream, query_ids in plan.sink_streams():
            channel = plan.channel_of(stream)
            bit = 1 << channel.position_of(stream)
            sink_table.setdefault(channel.channel_id, []).append((bit, query_ids))
        # Atomic swap: all four structures flip together.
        self._entries = entries
        self._executors = executors
        self._routing = routing
        self._sink_table = sink_table
        return reused, built

    def executor_entries(self) -> dict[int, tuple[tuple, MOpExecutor]]:
        """Snapshot of mop_id -> (wiring signature, executor)."""
        return dict(self._entries)

    def stateful_mop_ids(self) -> set[int]:
        """m-ops whose executors currently hold operator state.

        The incremental optimizer freezes these: replacing or rewiring them
        would drop window contents and partial matches mid-stream.  An
        executor whose state has fully drained (``state_size == 0``) can be
        rebuilt without behavioural difference, so it is not frozen.
        """
        return {
            mop_id
            for mop_id, (__, executor) in self._entries.items()
            if executor.state_size > 0
        }

    # -- running -------------------------------------------------------------------

    def run(
        self,
        sources: Sequence[StreamSource],
        warmup_events: int = 0,
        sample_state_every: int = 0,
    ) -> RunStats:
        """Drain ``sources`` through the plan; returns run statistics.

        ``warmup_events`` logical events are processed before the clock and
        the counters start — the paper warms the JIT the same way ("we first
        process the input stream for a few iterations", §5).

        ``sample_state_every`` > 0 records the peak total operator state
        (``RunStats.peak_state``), sampled every that many source events — a
        memory proxy for the window-length experiments.
        """
        events = merge_sources(sources)
        if warmup_events:
            consumed = 0
            for channel, channel_tuple in events:
                self._dispatch(channel, channel_tuple, stats=None)
                consumed += channel_tuple.membership.bit_count()
                if consumed >= warmup_events:
                    break
        stats = RunStats()
        since_sample = 0
        started = time.perf_counter()
        for channel, channel_tuple in events:
            stats.input_events += channel_tuple.membership.bit_count()
            stats.physical_input_events += 1
            self._dispatch(channel, channel_tuple, stats)
            if sample_state_every:
                since_sample += 1
                if since_sample >= sample_state_every:
                    since_sample = 0
                    stats.peak_state = max(stats.peak_state, self.state_size)
        stats.elapsed_seconds = time.perf_counter() - started
        if sample_state_every:
            stats.peak_state = max(stats.peak_state, self.state_size)
        return stats

    def process(self, channel: Channel, channel_tuple: ChannelTuple) -> RunStats:
        """Process a single source event (streaming / incremental use)."""
        stats = RunStats()
        stats.input_events = channel_tuple.membership.bit_count()
        stats.physical_input_events = 1
        started = time.perf_counter()
        self._dispatch(channel, channel_tuple, stats)
        stats.elapsed_seconds = time.perf_counter() - started
        return stats

    # -- internals -----------------------------------------------------------------

    def _dispatch(
        self,
        channel: Channel,
        channel_tuple: ChannelTuple,
        stats: Optional[RunStats],
    ) -> None:
        queue: deque[tuple[Channel, ChannelTuple]] = deque()
        queue.append((channel, channel_tuple))
        routing = self._routing
        sink_table = self._sink_table
        track_latency = self.track_latency and stats is not None
        event_started = time.perf_counter() if track_latency else 0.0
        while queue:
            current_channel, current_tuple = queue.popleft()
            if stats is not None:
                stats.physical_events += 1
                sinks = sink_table.get(current_channel.channel_id)
                if sinks:
                    membership = current_tuple.membership
                    latency = (
                        time.perf_counter() - event_started
                        if track_latency
                        else 0.0
                    )
                    for bit, query_ids in sinks:
                        if membership & bit:
                            for query_id in query_ids:
                                stats.output_events += 1
                                stats.outputs_by_query[query_id] = (
                                    stats.outputs_by_query.get(query_id, 0) + 1
                                )
                                if track_latency:
                                    stats.record_output_latency(
                                        query_id, latency
                                    )
                                if self.capture_outputs:
                                    self.captured.setdefault(query_id, []).append(
                                        current_tuple.tuple
                                    )
            consumers = routing.get(current_channel.channel_id)
            if not consumers:
                continue
            for executor in consumers:
                queue.extend(executor.process(current_channel, current_tuple))

    @property
    def state_size(self) -> int:
        """Total operator state held across all executors."""
        return sum(executor.state_size for executor in self._executors)
