"""The push-based stream engine.

``StreamEngine`` freezes a query plan into executors (one per m-op) and a
channel routing table, then drains a timestamp-ordered source merge through
the DAG.

Two dispatch paths share the same executor tables:

- **per-tuple** — the reference interpreter: breadth-first propagation per
  source event (every emitted channel tuple is enqueued and dispatched to
  the consumers of its channel);
- **batched** (default) — the hot path: the source merge is consumed as
  timestamp-ordered *runs* of same-channel events, each run flows through
  the DAG as one batch per channel (``MOpExecutor.process_batch``), routing
  and sink bookkeeping are flattened into one dense per-channel table, and
  stats/latency/capture branches are hoisted into per-channel closures
  built at table-rebuild time.

Batched dispatch preserves per-tuple semantics *exactly*; the engine proves
it per entry channel.  Processing a whole run through one executor before
the next reorders events only across channels, never within one, so it is
output-identical iff no executor consumes more than one channel reachable
from the entry channel (a "diamond": the same source event reaching one
executor via paths of different length, e.g. a µ-op reading both α(CPU) and
σ(α(CPU))).  ``rebuild_tables`` records the channel-consumption graph and
entry channels failing the diamond test fall back to per-tuple dispatch, so
outputs stay byte-identical to the reference path on every plan.

Executors read the plan wiring when they are built, so plan rewrites must not
happen behind a running engine's back.  They may, however, happen *between*
events — on a batch boundary: :mod:`repro.engine.migration` diffs the
engine's executor table against the (rewritten) plan, reuses executors whose
wiring is untouched — carrying their window/sequence state across — and
atomically swaps the routing and sink tables.  That is what lets the online
lifecycle runtime (:mod:`repro.runtime`) register and unregister queries
mid-stream without a stop-the-world rebuild.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Iterable, Optional, Sequence

from repro.core.mop import MOpExecutor
from repro.core.plan import QueryPlan
from repro.engine.metrics import RunStats
from repro.errors import PlanError
from repro.streams.channel import Channel, ChannelTuple
from repro.streams.columns import ColumnBatch
from repro.streams.sources import StreamSource, merge_source_runs, merge_sources
from repro.streams.tuples import StreamTuple


class _TapRecord:
    """Telemetry stand-in for a relay tap under observed dispatch.

    The observed shadow tables pair every consumer with an m-op record;
    taps are not m-ops, so they get this sink-hole record — bumped like any
    other but never exported (``MOpObserver`` only reports its own
    records), keeping the ``physical_events`` reconciliation identity
    intact.
    """

    __slots__ = (
        "per_tuple_calls",
        "batches",
        "tuples_in",
        "tuples_out",
        "sampled_seconds",
        "sampled_calls",
    )

    def __init__(self):
        self.per_tuple_calls = 0
        self.batches = 0
        self.tuples_in = 0
        self.tuples_out = 0
        self.sampled_seconds = 0.0
        self.sampled_calls = 0


class RelayTap:
    """A pseudo-consumer recording every batch dispatched on one channel.

    Installed by :meth:`StreamEngine.install_relay_tap` on a derived
    channel whose consumers live on another shard: the tap sees exactly
    the batches those consumers would have seen, in emission order, and
    emits nothing itself.  Runs either buffer on the tap (drained with
    :meth:`StreamEngine.take_relay_runs`) or stream straight to ``on_run``
    when set — the live path process-mode workers use so downstream shards
    consume relays while the upstream drain is still running.
    """

    __slots__ = ("channel", "runs", "on_run", "record", "produced")

    def __init__(self, channel: Channel, on_run=None):
        self.channel = channel
        self.runs: list[list[ChannelTuple]] = []
        self.on_run = on_run
        self.record = _TapRecord()
        #: Cumulative tuples dispatched through the tap — the relay
        #: *cursor*.  It rides checkpoint manifests so a restored worker
        #: resumes numbering where the cut left off, letting the
        #: coordinator discard already-delivered relay tuples exactly once.
        self.produced = 0

    def process(self, channel, channel_tuple):
        self.produced += 1
        if self.on_run is not None:
            self.on_run([channel_tuple])
        else:
            self.runs.append([channel_tuple])
        return ()

    def process_batch(self, channel, tuples):
        # Columnar chunks pass through unmaterialized — the relay codec
        # ships them as ``crun`` payloads without a row round-trip.
        run = tuples if type(tuples) is ColumnBatch else list(tuples)
        self.produced += len(run)
        if self.on_run is not None:
            self.on_run(run)
        else:
            self.runs.append(run)
        return ()


class StreamEngine:
    """Executes one query plan over a set of sources."""

    def __init__(
        self,
        plan: QueryPlan,
        capture_outputs: bool = False,
        track_latency: bool = False,
        batching: bool = True,
        max_batch: int = 1024,
        observe=False,
    ):
        plan.validate()
        self.plan = plan
        self.capture_outputs = capture_outputs
        #: Record per-output latency into RunStats (off by default: it costs
        #: one clock read per output event on the hot path).  Under batched
        #: dispatch the latency clock starts once per run, so per-output
        #: readings are coarser than per-tuple dispatch (a measurement
        #: difference only — outputs are identical).
        self.track_latency = track_latency
        #: Dispatch source runs as batches where provably output-identical
        #: (see module docstring); ``False`` forces the reference per-tuple
        #: interpreter everywhere — the baseline ``bench_throughput``
        #: compares against.
        self.batching = batching
        if max_batch < 1:
            raise PlanError(f"max_batch must be at least 1, got {max_batch}")
        self.max_batch = max_batch
        #: Per-m-op telemetry (:class:`repro.obs.mops.MOpObserver`), or None.
        #: ``observe=True`` builds a default observer; an observer instance
        #: is adopted as-is (the lifecycle runtime carries one across engine
        #: migrations so counters stay cumulative).  When None, dispatch
        #: runs the original tables — the hot loop is untouched.
        if observe is True:
            from repro.obs.mops import MOpObserver

            self.observer = MOpObserver()
        else:
            self.observer = observe or None
        #: query_id -> captured output tuples (only with capture_outputs).
        #: Created before the tables: the per-channel sink closures bind it.
        self.captured: dict[object, list[StreamTuple]] = {}
        #: mop_id -> (wiring signature, executor); the migration unit.
        self._entries: dict[int, tuple[tuple, MOpExecutor]] = {}
        self._executors: list[MOpExecutor] = []
        self._stateful_executors: list[MOpExecutor] = []
        # Channel routing: channel_id -> executors consuming that channel.
        self._routing: dict[int, list[MOpExecutor]] = {}
        # Sink accounting: channel_id -> [(bit, query_ids)].
        self._sink_table: dict[int, list[tuple[int, list]]] = {}
        # Flattened hot-path table: channel_id -> (sink handler | None,
        # prebound process_batch methods of the channel's consumers).
        self._channel_table: dict[int, tuple] = {}
        # Columnar entry table: channel_id -> ((can_process_columns,
        # process_columns) per consumer), present only when *every*
        # consumer of the channel implements the columnar protocol.
        self._columnar_table: dict[int, tuple] = {}
        # Observed shadow tables (only populated when ``observer`` is set):
        # same shape, but each method/executor is paired with its MOpRecord.
        self._observed_channel_table: dict[int, tuple] = {}
        self._observed_routing: dict[int, tuple] = {}
        # Channel-consumption graph for the batch-safety (diamond) analysis.
        self._consumer_indexes: dict[int, tuple[int, ...]] = {}
        self._exec_input_channels: list[frozenset[int]] = []
        self._exec_output_channels: list[tuple[int, ...]] = []
        self._multi_input_execs: tuple[int, ...] = ()
        self._multi_sink_queries: tuple[frozenset[int], ...] = ()
        self._batchable_cache: dict[int, bool] = {}
        # channel_id -> RelayTap; re-installed after every table rebuild so
        # taps survive plan rewrites and engine migration.
        self._relay_taps: dict[int, RelayTap] = {}
        self.rebuild_tables(reuse=None)

    def rebuild_tables(
        self, reuse: Optional[dict[int, tuple[tuple, MOpExecutor]]]
    ) -> tuple[int, int]:
        """(Re)build executors, routing and sink tables from ``self.plan``.

        ``reuse`` maps mop_id to a previous (signature, executor) pair; an
        executor is carried over — keeping its operator state — iff its m-op
        is still in the plan with an identical wiring signature.  Returns
        ``(reused, built)`` counts.  The new tables are computed fully before
        being swapped in, so a raising rewrite cannot leave the engine with
        half-updated routing.
        """
        from repro.engine.migration import wiring_signature

        plan = self.plan
        entries: dict[int, tuple[tuple, MOpExecutor]] = {}
        executors: list[MOpExecutor] = []
        reused = built = 0
        for mop in plan.mops:
            signature = wiring_signature(plan, mop)
            previous = reuse.get(mop.mop_id) if reuse else None
            if previous is not None and previous[0] == signature:
                executor = previous[1]
                reused += 1
            else:
                executor = mop.make_executor(plan)
                built += 1
            entries[mop.mop_id] = (signature, executor)
            executors.append(executor)
        routing: dict[int, list[MOpExecutor]] = {}
        consumer_indexes: dict[int, list[int]] = {}
        exec_input_channels: list[frozenset[int]] = []
        exec_output_channels: list[tuple[int, ...]] = []
        for index, (mop, executor) in enumerate(zip(plan.mops, executors)):
            seen: set[int] = set()
            for stream in mop.input_streams:
                channel = plan.channel_of(stream)
                if channel.channel_id in seen:
                    continue
                seen.add(channel.channel_id)
                routing.setdefault(channel.channel_id, []).append(executor)
                consumer_indexes.setdefault(channel.channel_id, []).append(index)
            exec_input_channels.append(frozenset(seen))
            exec_output_channels.append(
                tuple(
                    {
                        plan.channel_of(stream).channel_id
                        for stream in mop.output_streams
                    }
                )
            )
        sink_table: dict[int, list[tuple[int, list]]] = {}
        sink_channels_by_query: dict[object, set[int]] = {}
        for stream, query_ids in plan.sink_streams():
            channel = plan.channel_of(stream)
            bit = 1 << channel.position_of(stream)
            sink_table.setdefault(channel.channel_id, []).append((bit, query_ids))
            for query_id in query_ids:
                sink_channels_by_query.setdefault(query_id, set()).add(
                    channel.channel_id
                )
        channel_table: dict[int, tuple] = {}
        for channel_id in set(routing) | set(sink_table):
            sinks = tuple(
                (bit, tuple(query_ids))
                for bit, query_ids in sink_table.get(channel_id, ())
            )
            handler = self._make_sink_handler(sinks) if sinks else None
            batch_methods = tuple(
                executor.process_batch
                for executor in routing.get(channel_id, ())
            )
            channel_table[channel_id] = (handler, batch_methods)
        # Columnar entry table: a channel is columnar-capable iff every
        # consumer exposes the (can_process_columns, process_columns)
        # protocol; capability is still re-checked per batch (it depends
        # on the arriving column layout).
        columnar_table: dict[int, tuple] = {}
        for channel_id, consumers in routing.items():
            pairs = []
            for executor in consumers:
                can = getattr(executor, "can_process_columns", None)
                method = getattr(executor, "process_columns", None)
                if can is None or method is None:
                    pairs = None
                    break
                pairs.append((can, method))
            if pairs:
                columnar_table[channel_id] = tuple(pairs)
        # Observed shadow tables: the same routing, with each prebound
        # method/executor paired with its m-op's telemetry record.  Built
        # only when observing, so the unobserved swap stays byte-for-byte
        # what it was.
        observer = self.observer
        observed_channel_table: dict[int, tuple] = {}
        observed_routing: dict[int, tuple] = {}
        if observer is not None:
            observer.refresh(plan)
            mop_ids = [mop.mop_id for mop in plan.mops]
            observed_routing = {
                channel_id: tuple(
                    (executors[index], observer.record_for(mop_ids[index]))
                    for index in indexes
                )
                for channel_id, indexes in consumer_indexes.items()
            }
            for channel_id, (handler, __) in channel_table.items():
                observed_channel_table[channel_id] = (
                    handler,
                    tuple(
                        (
                            executors[index].process_batch,
                            observer.record_for(mop_ids[index]),
                        )
                        for index in consumer_indexes.get(channel_id, ())
                    ),
                )
        # Atomic swap: every table flips together.
        self._entries = entries
        self._executors = executors
        self._stateful_executors = [e for e in executors if e.is_stateful]
        self._routing = routing
        self._sink_table = sink_table
        self._channel_table = channel_table
        self._columnar_table = columnar_table
        self._observed_channel_table = observed_channel_table
        self._observed_routing = observed_routing
        self._consumer_indexes = {
            channel_id: tuple(indexes)
            for channel_id, indexes in consumer_indexes.items()
        }
        self._exec_input_channels = exec_input_channels
        self._exec_output_channels = exec_output_channels
        self._multi_input_execs = tuple(
            index
            for index, channels in enumerate(exec_input_channels)
            if len(channels) > 1
        )
        self._multi_sink_queries = tuple(
            frozenset(channels)
            for channels in sink_channels_by_query.values()
            if len(channels) > 1
        )
        self._batchable_cache = {}
        self._apply_relay_taps()
        return reused, built

    # -- relay taps -----------------------------------------------------------------

    def install_relay_tap(self, channel: Channel, on_run=None) -> RelayTap:
        """Tap ``channel``: record (or stream) every batch dispatched on it.

        The tap rides the routing tables like a consumer — it fires on
        every dispatch path (per-tuple, batched, observed, columnar BFS) —
        and survives table rebuilds.  Installing a tap removes the channel
        from the columnar entry table (a tap has no columnar protocol), so
        tapped entries take the row path; outputs are identical.
        Re-installing on an already-tapped channel updates ``on_run`` and
        keeps the buffered runs.
        """
        tap = self._relay_taps.get(channel.channel_id)
        if tap is None:
            tap = RelayTap(channel, on_run)
            self._relay_taps[channel.channel_id] = tap
        else:
            tap.on_run = on_run
        self._apply_relay_taps()
        return tap

    def remove_relay_tap(self, channel_id: int) -> None:
        """Remove a tap; pending buffered runs are dropped."""
        if self._relay_taps.pop(channel_id, None) is not None:
            self.rebuild_tables(reuse=self.executor_entries())

    def relay_tap(self, channel_id: int):
        return self._relay_taps.get(channel_id)

    def take_relay_runs(self, channel_id: int) -> list[list[ChannelTuple]]:
        """Drain the tap's buffered runs (emission order)."""
        tap = self._relay_taps[channel_id]
        runs = tap.runs
        tap.runs = []
        return runs

    def _apply_relay_taps(self) -> None:
        """Splice taps into the freshly built dispatch tables (idempotent)."""
        for channel_id, tap in self._relay_taps.items():
            consumers = self._routing.setdefault(channel_id, [])
            if tap not in consumers:
                consumers.append(tap)
            entry = self._channel_table.get(channel_id)
            handler, methods = entry if entry is not None else (None, ())
            if tap.process_batch not in methods:
                self._channel_table[channel_id] = (
                    handler, methods + (tap.process_batch,)
                )
            self._columnar_table.pop(channel_id, None)
            if self.observer is not None:
                observed = list(self._observed_routing.get(channel_id, ()))
                if all(consumer is not tap for consumer, __ in observed):
                    observed.append((tap, tap.record))
                    self._observed_routing[channel_id] = tuple(observed)
                o_entry = self._observed_channel_table.get(channel_id)
                o_handler, o_pairs = (
                    o_entry if o_entry is not None else (None, ())
                )
                if all(method != tap.process_batch for method, __ in o_pairs):
                    self._observed_channel_table[channel_id] = (
                        o_handler,
                        o_pairs + ((tap.process_batch, tap.record),),
                    )

    def _make_sink_handler(self, sinks: tuple):
        """Per-channel sink closure, specialized at rebuild time.

        The per-tuple interpreter re-tests ``stats is None``, latency and
        capture flags on every event; here each flag combination gets its
        own closure so the hot loop runs branch-free.  Handlers receive the
        batch, the (never-None) stats, and the run's entry clock reading.
        """
        capture = self.capture_outputs
        captured = self.captured
        if self.track_latency:

            def handle(tuples, stats, started):
                latency = time.perf_counter() - started
                outputs_by_query = stats.outputs_by_query
                latency_by_query = stats.latency_by_query
                output_events = 0
                for channel_tuple in tuples:
                    membership = channel_tuple.membership
                    for bit, query_ids in sinks:
                        if membership & bit:
                            for query_id in query_ids:
                                output_events += 1
                                outputs_by_query[query_id] = (
                                    outputs_by_query.get(query_id, 0) + 1
                                )
                                latency_by_query[query_id] = (
                                    latency_by_query.get(query_id, 0.0) + latency
                                )
                                if capture:
                                    captured.setdefault(query_id, []).append(
                                        channel_tuple.tuple
                                    )
                stats.output_events += output_events

            return handle
        if capture:

            def handle(tuples, stats, __started):
                outputs_by_query = stats.outputs_by_query
                output_events = 0
                for channel_tuple in tuples:
                    membership = channel_tuple.membership
                    for bit, query_ids in sinks:
                        if membership & bit:
                            for query_id in query_ids:
                                output_events += 1
                                outputs_by_query[query_id] = (
                                    outputs_by_query.get(query_id, 0) + 1
                                )
                                captured.setdefault(query_id, []).append(
                                    channel_tuple.tuple
                                )
                stats.output_events += output_events

            return handle
        if len(sinks) == 1 and len(sinks[0][1]) == 1:
            bit, (query_id,) = sinks[0]

            def handle(tuples, stats, __started):
                count = 0
                for channel_tuple in tuples:
                    if channel_tuple.membership & bit:
                        count += 1
                if count:
                    stats.output_events += count
                    stats.outputs_by_query[query_id] = (
                        stats.outputs_by_query.get(query_id, 0) + count
                    )

            return handle

        def handle(tuples, stats, __started):
            outputs_by_query = stats.outputs_by_query
            output_events = 0
            for channel_tuple in tuples:
                membership = channel_tuple.membership
                for bit, query_ids in sinks:
                    if membership & bit:
                        for query_id in query_ids:
                            output_events += 1
                            outputs_by_query[query_id] = (
                                outputs_by_query.get(query_id, 0) + 1
                            )
            stats.output_events += output_events

        return handle

    def executor_entries(self) -> dict[int, tuple[tuple, MOpExecutor]]:
        """Snapshot of mop_id -> (wiring signature, executor)."""
        return dict(self._entries)

    def stateful_mop_ids(self) -> set[int]:
        """m-ops whose executors currently hold operator state.

        The incremental optimizer freezes these: replacing or rewiring them
        would drop window contents and partial matches mid-stream.  An
        executor whose state has fully drained (``state_size == 0``) can be
        rebuilt without behavioural difference, so it is not frozen.
        """
        return {
            mop_id
            for mop_id, (__, executor) in self._entries.items()
            if executor.is_stateful and executor.state_size > 0
        }

    # -- batch safety ---------------------------------------------------------------

    def channel_batchable(self, channel_id: int) -> bool:
        """Whether runs entering on ``channel_id`` may be batch-dispatched.

        True iff (a) no executor consumes two or more channels reachable
        from the entry channel — the diamond test (module docstring) — and
        (b) no single query has sinks on two or more reachable channels
        (its captured-output order interleaves channels per event under
        per-tuple dispatch, which batch grouping would reorder).  Computed
        lazily per entry channel and cached until the next table rebuild.
        """
        cached = self._batchable_cache.get(channel_id)
        if cached is not None:
            return cached
        reach = {channel_id}
        stack = [channel_id]
        consumer_indexes = self._consumer_indexes
        output_channels = self._exec_output_channels
        while stack:
            current = stack.pop()
            for index in consumer_indexes.get(current, ()):
                for out in output_channels[index]:
                    if out not in reach:
                        reach.add(out)
                        stack.append(out)
        safe = True
        input_channels = self._exec_input_channels
        for index in self._multi_input_execs:
            if len(input_channels[index] & reach) > 1:
                safe = False
                break
        if safe:
            for sink_channels in self._multi_sink_queries:
                if len(sink_channels & reach) > 1:
                    safe = False
                    break
        self._batchable_cache[channel_id] = safe
        return safe

    # -- running -------------------------------------------------------------------

    def run(
        self,
        sources: Sequence[StreamSource],
        warmup_events: int = 0,
        sample_state_every: int = 0,
    ) -> RunStats:
        """Drain ``sources`` through the plan; returns run statistics.

        ``warmup_events`` logical events are processed before the clock and
        the counters start — the paper warms the JIT the same way ("we first
        process the input stream for a few iterations", §5).  Warmup is
        always per-tuple so the warmed/measured split lands on the same
        event regardless of dispatch mode.

        ``sample_state_every`` > 0 records the peak total operator state
        (``RunStats.peak_state``), sampled every that many source events — a
        memory proxy for the window-length experiments.  State sampling is a
        per-event probe, so it forces the per-tuple path.
        """
        if not self.batching or sample_state_every:
            return self._run_per_tuple(sources, warmup_events, sample_state_every)
        runs = merge_source_runs(sources, self.max_batch)
        pending: Optional[tuple[Channel, list[ChannelTuple]]] = None
        if warmup_events:
            consumed = 0
            for channel, batch in runs:
                if type(batch) is ColumnBatch:
                    # Warmup is per-tuple by contract; columnar runs
                    # materialize so the warmed/measured split still lands
                    # on the same event.
                    batch = batch.channel_tuples()
                index = 0
                while index < len(batch):
                    channel_tuple = batch[index]
                    index += 1
                    self._dispatch(channel, channel_tuple, stats=None)
                    consumed += channel_tuple.membership.bit_count()
                    if consumed >= warmup_events:
                        break
                if consumed >= warmup_events:
                    if index < len(batch):
                        pending = (channel, batch[index:])
                    break
        stats = RunStats()
        started = time.perf_counter()
        if pending is not None:
            self._run_batch(pending[0], pending[1], stats)
        for channel, batch in runs:
            if type(batch) is ColumnBatch:
                # Columnar-native source (ColumnRunSource): feed the packed
                # run straight to the vectorized entry; elapsed_seconds is
                # overwritten below by this run's own wall clock.
                stats.absorb(self.process_columns(channel, batch))
            else:
                self._run_batch(channel, batch, stats)
        stats.elapsed_seconds = time.perf_counter() - started
        if self.observer is not None:
            self.observer.sample_state_now(self)
        return stats

    def _run_batch(
        self, channel: Channel, batch: list[ChannelTuple], stats: RunStats
    ) -> None:
        if channel.capacity == 1:
            # Singleton channels carry exactly one membership bit per tuple.
            logical = len(batch)
        else:
            logical = 0
            for channel_tuple in batch:
                logical += channel_tuple.membership.bit_count()
        stats.input_events += logical
        stats.physical_input_events += len(batch)
        observer = self.observer
        if observer is not None:
            observer.maybe_sample_state(self)
            if len(batch) == 1:
                self._dispatch_observed(channel, batch[0], stats)
            elif self.channel_batchable(channel.channel_id):
                self._dispatch_batch_observed(channel, batch, stats)
            else:
                dispatch = self._dispatch_observed
                for channel_tuple in batch:
                    dispatch(channel, channel_tuple, stats)
            return
        if len(batch) == 1:
            # A run of one has nothing to amortize; the per-tuple
            # interpreter is strictly cheaper (and trivially equivalent).
            self._dispatch(channel, batch[0], stats)
            return
        if self.channel_batchable(channel.channel_id):
            self._dispatch_batch(channel, batch, stats)
        else:
            dispatch = self._dispatch
            for channel_tuple in batch:
                dispatch(channel, channel_tuple, stats)

    def _run_per_tuple(
        self,
        sources: Sequence[StreamSource],
        warmup_events: int,
        sample_state_every: int,
    ) -> RunStats:
        """The reference interpreter loop (the seed engine's ``run``)."""
        events = merge_sources(sources)
        if warmup_events:
            consumed = 0
            for channel, channel_tuple in events:
                self._dispatch(channel, channel_tuple, stats=None)
                consumed += channel_tuple.membership.bit_count()
                if consumed >= warmup_events:
                    break
        stats = RunStats()
        since_sample = 0
        dispatch = (
            self._dispatch_observed if self.observer is not None else self._dispatch
        )
        started = time.perf_counter()
        for channel, channel_tuple in events:
            stats.input_events += channel_tuple.membership.bit_count()
            stats.physical_input_events += 1
            dispatch(channel, channel_tuple, stats)
            if sample_state_every:
                since_sample += 1
                if since_sample >= sample_state_every:
                    since_sample = 0
                    stats.peak_state = max(stats.peak_state, self.state_size)
        stats.elapsed_seconds = time.perf_counter() - started
        if sample_state_every:
            stats.peak_state = max(stats.peak_state, self.state_size)
        if self.observer is not None:
            self.observer.sample_state_now(self)
        return stats

    def process(self, channel: Channel, channel_tuple: ChannelTuple) -> RunStats:
        """Process a single source event (streaming / incremental use)."""
        stats = RunStats()
        stats.input_events = channel_tuple.membership.bit_count()
        stats.physical_input_events = 1
        observer = self.observer
        started = time.perf_counter()
        if observer is not None:
            observer.maybe_sample_state(self)
            self._dispatch_observed(channel, channel_tuple, stats)
        else:
            self._dispatch(channel, channel_tuple, stats)
        stats.elapsed_seconds = time.perf_counter() - started
        return stats

    def process_batch(
        self, channel: Channel, batch: Sequence[ChannelTuple]
    ) -> RunStats:
        """Process a run of source events arriving on one channel.

        The batch is dispatched through the vectorized path when the entry
        channel passes the diamond test (and batching is enabled), falling
        back to per-tuple dispatch otherwise — outputs are identical either
        way.  Caller-supplied runs are re-chunked to ``max_batch``, bounding
        the intermediate per-channel buffers exactly like ``run`` does.
        Plan rewrites + migration may happen between calls: a batch
        boundary is the engine's migration-safe point.
        """
        stats = RunStats()
        batch = list(batch)
        if not batch:
            return stats
        started = time.perf_counter()
        if self.batching:
            max_batch = self.max_batch
            if len(batch) <= max_batch:
                self._run_batch(channel, batch, stats)
            else:
                for start in range(0, len(batch), max_batch):
                    self._run_batch(
                        channel, batch[start : start + max_batch], stats
                    )
        else:
            dispatch = (
                self._dispatch_observed
                if self.observer is not None
                else self._dispatch
            )
            for channel_tuple in batch:
                stats.input_events += channel_tuple.membership.bit_count()
                stats.physical_input_events += 1
                dispatch(channel, channel_tuple, stats)
        stats.elapsed_seconds = time.perf_counter() - started
        return stats

    def process_columns(self, channel: Channel, batch) -> RunStats:
        """Process a packed columnar run (:class:`~repro.streams.columns.
        ColumnBatch`) arriving on one channel.

        The vectorized entry runs when batching is on, the channel passes
        the diamond test, no observer is attached, the entry channel has no
        sink, and **every** consumer accepts this batch's column layout
        (``can_process_columns``).  Consumers probe the packed columns
        directly and emit ordinary row buckets, which continue through the
        standard batched BFS — rows materialize only for the hit set.
        Anywhere outside that envelope the batch materializes once and
        takes the row path; outputs are identical either way.
        """
        if not batch.count:
            return RunStats()
        pairs = None
        if self.batching and self.observer is None and self.channel_batchable(
            channel.channel_id
        ):
            entry = self._channel_table.get(channel.channel_id)
            if entry is not None and entry[0] is None:
                pairs = self._columnar_table.get(channel.channel_id)
                if pairs is not None:
                    for can, __ in pairs:
                        if not can(channel, batch):
                            pairs = None
                            break
        if pairs is None:
            return self.process_batch(channel, batch.channel_tuples())
        stats = RunStats()
        started = time.perf_counter()
        table = self._channel_table
        max_batch = self.max_batch
        count = batch.count
        queue: deque = deque()
        for start in range(0, count, max_batch):
            if count <= max_batch:
                chunk = batch
            else:
                chunk = batch.slice(start, min(start + max_batch, count))
            stats.input_events += chunk.logical_events()
            stats.physical_input_events += chunk.count
            stats.physical_events += chunk.count
            for __, method in pairs:
                queue.extend(method(channel, chunk))
            while queue:
                current_channel, tuples = queue.popleft()
                stats.physical_events += len(tuples)
                entry = table.get(current_channel.channel_id)
                if entry is None:
                    continue
                handler, batch_methods = entry
                if handler is not None:
                    handler(tuples, stats, started)
                for method in batch_methods:
                    queue.extend(method(current_channel, tuples))
        stats.elapsed_seconds = time.perf_counter() - started
        return stats

    # -- internals -----------------------------------------------------------------

    def _dispatch(
        self,
        channel: Channel,
        channel_tuple: ChannelTuple,
        stats: Optional[RunStats],
    ) -> None:
        queue: deque[tuple[Channel, ChannelTuple]] = deque()
        queue.append((channel, channel_tuple))
        routing = self._routing
        sink_table = self._sink_table
        track_latency = self.track_latency and stats is not None
        event_started = time.perf_counter() if track_latency else 0.0
        while queue:
            current_channel, current_tuple = queue.popleft()
            if stats is not None:
                stats.physical_events += 1
                sinks = sink_table.get(current_channel.channel_id)
                if sinks:
                    membership = current_tuple.membership
                    latency = (
                        time.perf_counter() - event_started
                        if track_latency
                        else 0.0
                    )
                    for bit, query_ids in sinks:
                        if membership & bit:
                            for query_id in query_ids:
                                stats.output_events += 1
                                stats.outputs_by_query[query_id] = (
                                    stats.outputs_by_query.get(query_id, 0) + 1
                                )
                                if track_latency:
                                    stats.record_output_latency(
                                        query_id, latency
                                    )
                                if self.capture_outputs:
                                    self.captured.setdefault(query_id, []).append(
                                        current_tuple.tuple
                                    )
            consumers = routing.get(current_channel.channel_id)
            if not consumers:
                continue
            for executor in consumers:
                queue.extend(executor.process(current_channel, current_tuple))

    def _dispatch_batch(
        self,
        channel: Channel,
        batch: list[ChannelTuple],
        stats: RunStats,
    ) -> None:
        """Vectorized BFS: one queue entry per (channel, run) batch.

        Routing, sinks and the stats/latency/capture branches all live in
        the prebuilt ``_channel_table`` — the loop does one dict lookup per
        popped batch and calls prebound methods.
        """
        table = self._channel_table
        queue: deque[tuple[Channel, list[ChannelTuple]]] = deque()
        queue.append((channel, batch))
        started = time.perf_counter() if self.track_latency else 0.0
        while queue:
            current_channel, tuples = queue.popleft()
            stats.physical_events += len(tuples)
            entry = table.get(current_channel.channel_id)
            if entry is None:
                continue
            handler, batch_methods = entry
            if handler is not None:
                handler(tuples, stats, started)
            for method in batch_methods:
                queue.extend(method(current_channel, tuples))

    def _dispatch_observed(
        self,
        channel: Channel,
        channel_tuple: ChannelTuple,
        stats: Optional[RunStats],
    ) -> None:
        """Per-tuple BFS with per-m-op accounting (``_dispatch`` + records).

        Sink/stats handling is identical to the unobserved interpreter —
        only the consumer loop changes: each executor call bumps its
        record's fallback counters and every ``sample_every``-th call of
        that record is timed.
        """
        queue: deque[tuple[Channel, ChannelTuple]] = deque()
        queue.append((channel, channel_tuple))
        routing = self._observed_routing
        sink_table = self._sink_table
        sample_every = self.observer.sample_every
        track_latency = self.track_latency and stats is not None
        event_started = time.perf_counter() if track_latency else 0.0
        while queue:
            current_channel, current_tuple = queue.popleft()
            if stats is not None:
                stats.physical_events += 1
                sinks = sink_table.get(current_channel.channel_id)
                if sinks:
                    membership = current_tuple.membership
                    latency = (
                        time.perf_counter() - event_started
                        if track_latency
                        else 0.0
                    )
                    for bit, query_ids in sinks:
                        if membership & bit:
                            for query_id in query_ids:
                                stats.output_events += 1
                                stats.outputs_by_query[query_id] = (
                                    stats.outputs_by_query.get(query_id, 0) + 1
                                )
                                if track_latency:
                                    stats.record_output_latency(
                                        query_id, latency
                                    )
                                if self.capture_outputs:
                                    self.captured.setdefault(query_id, []).append(
                                        current_tuple.tuple
                                    )
            consumers = routing.get(current_channel.channel_id)
            if not consumers:
                continue
            for executor, record in consumers:
                record.per_tuple_calls += 1
                record.tuples_in += 1
                if (record.batches + record.per_tuple_calls) % sample_every:
                    outputs = executor.process(current_channel, current_tuple)
                else:
                    sampled_at = time.perf_counter()
                    outputs = executor.process(current_channel, current_tuple)
                    record.sampled_seconds += (
                        time.perf_counter() - sampled_at
                    )
                    record.sampled_calls += 1
                record.tuples_out += len(outputs)
                queue.extend(outputs)

    def _dispatch_batch_observed(
        self,
        channel: Channel,
        batch: list[ChannelTuple],
        stats: RunStats,
    ) -> None:
        """Vectorized BFS with per-m-op accounting (``_dispatch_batch`` over
        the observed shadow table)."""
        table = self._observed_channel_table
        sample_every = self.observer.sample_every
        queue: deque[tuple[Channel, list[ChannelTuple]]] = deque()
        queue.append((channel, batch))
        started = time.perf_counter() if self.track_latency else 0.0
        while queue:
            current_channel, tuples = queue.popleft()
            stats.physical_events += len(tuples)
            entry = table.get(current_channel.channel_id)
            if entry is None:
                continue
            handler, pairs = entry
            if handler is not None:
                handler(tuples, stats, started)
            for method, record in pairs:
                record.batches += 1
                record.tuples_in += len(tuples)
                if (record.batches + record.per_tuple_calls) % sample_every:
                    outputs = method(current_channel, tuples)
                else:
                    sampled_at = time.perf_counter()
                    outputs = method(current_channel, tuples)
                    record.sampled_seconds += (
                        time.perf_counter() - sampled_at
                    )
                    record.sampled_calls += 1
                for __, out_batch in outputs:
                    record.tuples_out += len(out_batch)
                queue.extend(outputs)

    def mop_stats(self) -> dict[int, dict]:
        """Per-m-op telemetry records (empty when not observing)."""
        observer = self.observer
        return observer.mop_stats() if observer is not None else {}

    @property
    def state_size(self) -> int:
        """Total operator state held across all (stateful) executors.

        Stateless executors are partitioned out at table-rebuild time, so
        per-sample cost scales with the number of stateful m-ops, not the
        plan size.
        """
        return sum(executor.state_size for executor in self._stateful_executors)
