"""Scalar expressions over stream tuples.

Expressions appear in two places:

- inside predicates, as the two sides of a comparison, and
- inside projections / schema maps, which are the paper's ``π`` operators and
  the Cayuga schema-map functions ``F_fo`` / ``F_r`` (§4.2): "a schema map
  function can rename and project attributes, as well as introducing new
  attributes via simple arithmetic computation or user-defined functions".

An expression can reference three tuple *sides*:

- ``LEFT`` (0): the single input of a unary operator, the left input of a
  binary operator, or the stored instance of a ``;`` / ``µ`` state,
- ``RIGHT`` (1): the right input of a binary operator — the incoming event,
- ``LAST`` (2): the most recently bound event of a ``µ`` instance (the
  ``last`` of the paper's rebind predicate ``T.a[1] > last.a[1]``).

Expressions are frozen dataclasses: equality and hashing are structural, so
operator definitions containing expressions compare the way the m-rules need
("operators with the same definition").

Every expression compiles to a plain Python closure ``f(left, right, last)``
over :class:`~repro.streams.tuples.StreamTuple` values, with attribute
positions resolved once at compile time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, ClassVar, Optional

from repro.errors import ExpressionError
from repro.streams.schema import Schema, TIMESTAMP_ATTRIBUTE

#: Tuple sides an expression may reference.
LEFT, RIGHT, LAST = 0, 1, 2
_SIDE_NAMES = {LEFT: "left", RIGHT: "right", LAST: "last"}

#: Signature of a compiled expression.
CompiledExpression = Callable[[Any, Any, Any], Any]


class Expression:
    """Base class for scalar expressions (structural value objects)."""

    def compile(
        self,
        left_schema: Schema,
        right_schema: Optional[Schema] = None,
        last_schema: Optional[Schema] = None,
    ) -> CompiledExpression:
        """Build an evaluator ``f(left, right, last) -> value``."""
        raise NotImplementedError

    def references(self) -> frozenset[tuple[int, str]]:
        """All ``(side, attribute)`` pairs this expression reads."""
        raise NotImplementedError

    def result_type(self, left_schema: Schema, right_schema: Optional[Schema] = None) -> str:
        """Static type of the expression ('int', 'float' or 'str')."""
        raise NotImplementedError

    # Convenience operators so schema maps read naturally in examples:
    def __add__(self, other: "Expression | int | float") -> "Arith":
        return Arith(self, "+", _as_expression(other))

    def __sub__(self, other: "Expression | int | float") -> "Arith":
        return Arith(self, "-", _as_expression(other))

    def __mul__(self, other: "Expression | int | float") -> "Arith":
        return Arith(self, "*", _as_expression(other))

    def __truediv__(self, other: "Expression | int | float") -> "Arith":
        return Arith(self, "/", _as_expression(other))


def _as_expression(value: "Expression | int | float | str") -> Expression:
    if isinstance(value, Expression):
        return value
    if isinstance(value, (int, float, str)):
        return Literal(value)
    raise ExpressionError(f"cannot coerce {value!r} to an expression")


@dataclass(frozen=True)
class Literal(Expression):
    """A constant value."""

    value: Any

    def compile(self, left_schema, right_schema=None, last_schema=None):
        value = self.value
        return lambda l, r, x: value

    def references(self):
        return frozenset()

    def result_type(self, left_schema, right_schema=None):
        if isinstance(self.value, bool) or isinstance(self.value, int):
            return "int"
        if isinstance(self.value, float):
            return "float"
        return "str"

    def __repr__(self):
        return repr(self.value)


@dataclass(frozen=True)
class AttrRef(Expression):
    """A reference to an attribute of one tuple side.

    ``AttrRef(RIGHT, "ts")`` resolves to the tuple timestamp; duration
    predicates are usually expressed through
    :class:`~repro.operators.predicates.DurationWithin` instead, which the
    rule machinery can recognize.
    """

    side: int
    name: str

    def __post_init__(self):
        if self.side not in _SIDE_NAMES:
            raise ExpressionError(f"invalid tuple side {self.side}")

    def _schema_for(self, left_schema, right_schema, last_schema) -> Schema:
        if self.side == LEFT:
            schema = left_schema
        elif self.side == RIGHT:
            schema = right_schema
        else:
            # ``last`` defaults to the right-input schema: µ binds events from
            # its right input, so absent an explicit schema the last-bound
            # event is shaped like a right-input event.
            schema = last_schema if last_schema is not None else right_schema
        if schema is None:
            raise ExpressionError(
                f"expression references {_SIDE_NAMES[self.side]}.{self.name} "
                "but no schema was supplied for that side"
            )
        return schema

    def compile(self, left_schema, right_schema=None, last_schema=None):
        schema = self._schema_for(left_schema, right_schema, last_schema)
        side = self.side
        if self.name == TIMESTAMP_ATTRIBUTE:
            if side == LEFT:
                return lambda l, r, x: l.ts
            if side == RIGHT:
                return lambda l, r, x: r.ts
            return lambda l, r, x: x.ts
        pos = schema.index_of(self.name)
        if side == LEFT:
            return lambda l, r, x: l.values[pos]
        if side == RIGHT:
            return lambda l, r, x: r.values[pos]
        return lambda l, r, x: x.values[pos]

    def references(self):
        return frozenset({(self.side, self.name)})

    def result_type(self, left_schema, right_schema=None):
        if self.name == TIMESTAMP_ATTRIBUTE:
            return "int"
        schema = self._schema_for(left_schema, right_schema, None)
        return schema.type_of(self.name)

    def __repr__(self):
        return f"{_SIDE_NAMES[self.side]}.{self.name}"


_ARITH_OPS: dict[str, Callable[[Any, Any], Any]] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
    "%": lambda a, b: a % b,
}


@dataclass(frozen=True)
class Arith(Expression):
    """Binary arithmetic over two sub-expressions."""

    lhs: Expression
    op: str
    rhs: Expression

    def __post_init__(self):
        if self.op not in _ARITH_OPS:
            raise ExpressionError(
                f"unknown arithmetic operator {self.op!r}; "
                f"expected one of {sorted(_ARITH_OPS)}"
            )

    def compile(self, left_schema, right_schema=None, last_schema=None):
        lhs = self.lhs.compile(left_schema, right_schema, last_schema)
        rhs = self.rhs.compile(left_schema, right_schema, last_schema)
        op = _ARITH_OPS[self.op]
        return lambda l, r, x: op(lhs(l, r, x), rhs(l, r, x))

    def references(self):
        return self.lhs.references() | self.rhs.references()

    def result_type(self, left_schema, right_schema=None):
        if self.op == "/":
            return "float"
        lt = self.lhs.result_type(left_schema, right_schema)
        rt = self.rhs.result_type(left_schema, right_schema)
        if "str" in (lt, rt):
            if self.op != "+" or lt != rt:
                raise ExpressionError(f"cannot apply {self.op!r} to {lt}/{rt}")
            return "str"
        return "float" if "float" in (lt, rt) else "int"

    def __repr__(self):
        return f"({self.lhs!r} {self.op} {self.rhs!r})"


@dataclass(frozen=True)
class Udf(Expression):
    """A named user-defined function over sub-expressions.

    The paper allows schema maps to introduce attributes "via ... user-defined
    functions".  UDFs are referenced by name so expression definitions stay
    hashable; the callable is looked up in a registry at compile time.
    """

    name: str
    args: tuple[Expression, ...]
    type: str = "int"

    _REGISTRY: ClassVar[dict[str, Callable[..., Any]]] = {}

    @classmethod
    def register(cls, name: str, func: Callable[..., Any]) -> None:
        """Register (or replace) the implementation of UDF ``name``."""
        cls._REGISTRY[name] = func

    def compile(self, left_schema, right_schema=None, last_schema=None):
        if self.name not in self._REGISTRY:
            raise ExpressionError(f"UDF {self.name!r} is not registered")
        func = self._REGISTRY[self.name]
        compiled = [a.compile(left_schema, right_schema, last_schema) for a in self.args]
        return lambda l, r, x: func(*(c(l, r, x) for c in compiled))

    def references(self):
        refs: frozenset[tuple[int, str]] = frozenset()
        for arg in self.args:
            refs |= arg.references()
        return refs

    def result_type(self, left_schema, right_schema=None):
        return self.type

    def __repr__(self):
        inner = ", ".join(repr(a) for a in self.args)
        return f"{self.name}({inner})"


# -- shorthand constructors -------------------------------------------------------


def attr(name: str) -> AttrRef:
    """Reference an attribute of a unary operator's input tuple."""
    return AttrRef(LEFT, name)


def left(name: str) -> AttrRef:
    """Reference an attribute of the left input / stored instance."""
    return AttrRef(LEFT, name)


def right(name: str) -> AttrRef:
    """Reference an attribute of the right input / incoming event."""
    return AttrRef(RIGHT, name)


def last(name: str) -> AttrRef:
    """Reference an attribute of a µ instance's last-bound event."""
    return AttrRef(LAST, name)


def lit(value: Any) -> Literal:
    """Wrap a constant."""
    return Literal(value)
