"""Operator base classes.

An :class:`Operator` is an immutable logical *definition* — the thing m-rules
compare ("a set of operators ... with the same definition", §3.2).  The
definition is exposed as a hashable tuple via :meth:`Operator.definition`.

Execution state lives in a separate :class:`OperatorExecutor`, built per plan
instantiation via :meth:`Operator.executor`.  The executor protocol is
push-based and tuple-at-a-time:

``process(input_index, tuple) -> list[StreamTuple]``

where ``input_index`` selects which input of the operator the tuple arrived
on (always 0 for unary operators).  This is exactly the granularity the
paper's engine schedules: "a physical operator consumes one or multiple input
streams, and it produces one output stream" (§2.1).
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import OperatorError
from repro.streams.schema import Schema
from repro.streams.tuples import StreamTuple


class OperatorExecutor:
    """Mutable runtime state of one operator instance."""

    def process(self, input_index: int, tuple_: StreamTuple) -> list[StreamTuple]:
        """Consume one input tuple; return the output tuples it produces."""
        raise NotImplementedError

    @property
    def state_size(self) -> int:
        """Number of state entries currently held (for tests and metrics)."""
        return 0

    def snapshot_state(self):
        """The executor's mutable state as plain picklable containers.

        Returns ``None`` for stateless executors.  The snapshot *is* the
        live containers, not a copy — callers serialize it (cross-process
        rebalance) or install it into a fresh executor of the same
        definition via :meth:`restore_state`; the donor executor is
        retired either way.  Compiled predicate closures are never part of
        a snapshot: they are rebuilt by the receiving executor's
        constructor, which is what makes snapshots process-portable.
        """
        return None

    def restore_state(self, snapshot) -> None:
        """Install a :meth:`snapshot_state` payload into this executor.

        The executor must be freshly built from the same operator
        definition and input schemas as the snapshot's donor.  ``None`` is
        always accepted (a stateless or empty donor).
        """
        if snapshot is not None:
            raise OperatorError(
                f"{type(self).__name__} holds no state and cannot restore one"
            )


class Operator:
    """A logical operator definition (immutable, structurally comparable)."""

    #: Number of input streams (1 or 2).
    arity: int = 1
    #: Short symbol used in plan rendering, e.g. "σ".
    symbol: str = "?"
    #: Whether the operator is a selection — selections are transparent for
    #: the sharable-stream relation (∼ "special case for selection", §3.2).
    is_selection: bool = False

    def definition(self) -> tuple:
        """A hashable tuple fully describing this operator's semantics.

        Two operators with equal definitions are interchangeable — the
        prerequisite for CSE (s-rules over identical streams) and for
        channel-based sharing (c-rules over sharable streams).
        """
        raise NotImplementedError

    def output_schema(self, input_schemas: Sequence[Schema]) -> Schema:
        """Schema of the output stream given the input schemas."""
        raise NotImplementedError

    def executor(self, input_schemas: Sequence[Schema]) -> OperatorExecutor:
        """Build a fresh executor (runtime state) for this definition."""
        raise NotImplementedError

    def validate_arity(self, input_schemas: Sequence[Schema]) -> None:
        if len(input_schemas) != self.arity:
            raise OperatorError(
                f"{type(self).__name__} expects {self.arity} input(s), "
                f"got {len(input_schemas)}"
            )

    # Structural identity via the definition tuple -------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Operator):
            return NotImplemented
        return self.definition() == other.definition()

    def __hash__(self) -> int:
        return hash(self.definition())

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.definition()!r})"


class UnaryOperator(Operator):
    """Base for σ, π, α."""

    arity = 1


class BinaryOperator(Operator):
    """Base for ⋈, ``;`` and ``µ``."""

    arity = 2
