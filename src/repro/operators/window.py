"""Window specifications for stateful stream operators.

The paper's operators carry window specifications "to prevent unbounded
memory consumption" (§2.4).  All evaluation workloads use time-based sliding
windows whose lengths are drawn from a Zipfian distribution (§5.1); a
row-count window is provided as well for completeness of the operator suite.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import OperatorError


@dataclass(frozen=True)
class TimeWindow:
    """A time-based sliding window of ``length`` time units.

    A tuple with timestamp ``t0`` is inside the window of a tuple with
    timestamp ``t`` iff ``t - t0 <= length`` (and ``t0 <= t``).  With the
    paper's integer timestamps a window of length ``w`` therefore spans
    ``w + 1`` consecutive timestamps including the current one.
    """

    length: int

    def __post_init__(self):
        if self.length < 0:
            raise OperatorError(f"window length must be non-negative, got {self.length}")

    def admits(self, anchor_ts: int, other_ts: int) -> bool:
        """True if ``other_ts`` is inside the window anchored at ``anchor_ts``."""
        return 0 <= anchor_ts - other_ts <= self.length

    def expiry_threshold(self, now_ts: int) -> int:
        """Oldest timestamp still inside the window at time ``now_ts``."""
        return now_ts - self.length

    def __repr__(self):
        return f"TimeWindow({self.length})"


@dataclass(frozen=True)
class RowWindow:
    """A count-based sliding window over the last ``count`` tuples."""

    count: int

    def __post_init__(self):
        if self.count <= 0:
            raise OperatorError(f"row window count must be positive, got {self.count}")

    def __repr__(self):
        return f"RowWindow({self.count})"
