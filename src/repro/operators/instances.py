"""Instance stores for the event operators ``;`` and ``µ``.

A Cayuga automaton state "maintains a set of active automaton instances"
(§4.2).  The translated RUMOR operators keep the same state; this module
provides the store with the two access paths the paper's indexes use:

- **hash-partitioned probe** on an instance key — the *Active Instance index*
  of Cayuga (§5.2 Workload 2: instances of ``;`` indexed on the bound value
  of ``S.a[0]`` so each ``T`` tuple probes by ``T.a[0]``),
- **full scan** for un-indexed predicates.

Deletion is lazy (instances carry an ``alive`` flag) so consuming a matched
instance is O(1) even when it sits mid-bucket.  Window expiry trims bucket
fronts and the global FIFO, which are both in timestamp order.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Iterator, Optional


class Instance:
    """One active instance: an anchored partial match.

    ``start`` is the left tuple that opened the instance; ``last`` is the
    most recently bound event (µ only; equals ``start`` initially when the
    schemas allow, else None); ``key`` is the hash-index key (None when the
    store is unindexed); ``mask`` is the channel-membership bitmask of the
    opening tuple — 1 for plain (non-channel) operation, multi-bit when the
    instance is shared across the queries of a channel (§4.4).
    """

    __slots__ = ("start", "last", "key", "start_ts", "alive", "mask")

    def __init__(self, start, key=None, last=None, mask=1):
        self.start = start
        self.last = last
        self.key = key
        self.start_ts = start.ts
        self.alive = True
        self.mask = mask

    def __repr__(self):
        status = "live" if self.alive else "dead"
        return f"Instance({self.start!r}, key={self.key!r}, {status})"


class InstanceStore:
    """Active-instance set with optional hash index and window expiry."""

    __slots__ = ("_indexed", "_buckets", "_fifo", "_live")

    def __init__(self, indexed: bool):
        self._indexed = indexed
        self._buckets: dict[Any, deque[Instance]] = {}
        self._fifo: deque[Instance] = deque()
        self._live = 0

    @property
    def indexed(self) -> bool:
        return self._indexed

    def insert(self, instance: Instance) -> None:
        if self._indexed:
            bucket = self._buckets.get(instance.key)
            if bucket is None:
                bucket = deque()
                self._buckets[instance.key] = bucket
            bucket.append(instance)
        self._fifo.append(instance)
        self._live += 1

    def kill(self, instance: Instance) -> None:
        """Mark an instance deleted (consumed match / broken pattern)."""
        if instance.alive:
            instance.alive = False
            self._live -= 1

    def expire(self, threshold: int) -> None:
        """Delete instances older than ``threshold`` (start_ts < threshold).

        Only the global FIFO is trimmed here — O(amortized expired), not
        O(buckets).  Expired instances are flagged dead; buckets purge their
        dead prefixes lazily when probed.
        """
        fifo = self._fifo
        while fifo and (fifo[0].start_ts < threshold or not fifo[0].alive):
            instance = fifo.popleft()
            if instance.alive:
                instance.alive = False
                self._live -= 1

    def probe(self, key: Any) -> Iterator[Instance]:
        """Live instances with the given key (requires an indexed store)."""
        bucket = self._buckets.get(key)
        if not bucket:
            return
        # Compact the dead prefix (killed or expired), then yield live entries.
        while bucket and not bucket[0].alive:
            bucket.popleft()
        if not bucket:
            del self._buckets[key]
            return
        for instance in bucket:
            if instance.alive:
                yield instance

    def scan(self) -> Iterator[Instance]:
        """All live instances (full-scan path)."""
        while self._fifo and not self._fifo[0].alive:
            self._fifo.popleft()
        for instance in self._fifo:
            if instance.alive:
                yield instance

    def __len__(self) -> int:
        return self._live
