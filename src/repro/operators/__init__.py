"""Operator layer: predicates, expressions, windows, and the six operator types.

Logical operators are immutable *definitions*; their ``definition()`` tuples
are what m-rules compare when the paper requires operators "with the same
definition" (§3.2).  Each operator can build an *executor* holding mutable
runtime state; the naive reference m-op and all optimized m-ops are built on
these executors.

Operator types (paper §2.1 and §4.2):

- :class:`~repro.operators.select.Selection` — σ
- :class:`~repro.operators.project.Projection` — π (SQL SELECT-style schema map)
- :class:`~repro.operators.aggregate.SlidingWindowAggregate` — α with group-by
- :class:`~repro.operators.join.SlidingWindowJoin` — ⋈ with time windows
- :class:`~repro.operators.sequence.Sequence` — Cayuga ``;``
- :class:`~repro.operators.iterate.Iterate` — Cayuga ``µ``
"""

from repro.operators.base import Operator, OperatorExecutor, UnaryOperator, BinaryOperator
from repro.operators.expressions import (
    Arith,
    AttrRef,
    Expression,
    Literal,
    LEFT,
    RIGHT,
    LAST,
    attr,
    left,
    right,
    last,
    lit,
)
from repro.operators.predicates import (
    And,
    Comparison,
    DurationWithin,
    FalsePredicate,
    Not,
    Or,
    Predicate,
    TruePredicate,
    as_constant_equality,
    as_cross_equality,
    as_duration_bound,
    conjunction,
    conjuncts,
)
from repro.operators.window import TimeWindow
from repro.operators.select import Selection
from repro.operators.project import Projection
from repro.operators.aggregate import SlidingWindowAggregate, AGGREGATE_FUNCTIONS
from repro.operators.join import SlidingWindowJoin
from repro.operators.sequence import Sequence
from repro.operators.iterate import Iterate

__all__ = [
    "Operator",
    "OperatorExecutor",
    "UnaryOperator",
    "BinaryOperator",
    "Expression",
    "AttrRef",
    "Literal",
    "Arith",
    "LEFT",
    "RIGHT",
    "LAST",
    "attr",
    "left",
    "right",
    "last",
    "lit",
    "Predicate",
    "Comparison",
    "And",
    "Or",
    "Not",
    "TruePredicate",
    "FalsePredicate",
    "DurationWithin",
    "conjuncts",
    "conjunction",
    "as_constant_equality",
    "as_cross_equality",
    "as_duration_bound",
    "TimeWindow",
    "Selection",
    "Projection",
    "SlidingWindowAggregate",
    "AGGREGATE_FUNCTIONS",
    "SlidingWindowJoin",
    "Sequence",
    "Iterate",
]
