"""The projection / schema-map operator π.

Following the paper (§4.2, footnote 2), π is the *SQL SELECT-clause* style
projection: an ordered list of ``name := expression`` items that can rename
and project attributes as well as introduce new attributes via arithmetic or
UDFs.  It subsumes the Cayuga schema-map functions ``F_fo`` / ``F_r``.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import OperatorError
from repro.operators.base import OperatorExecutor, UnaryOperator
from repro.operators.expressions import Expression, AttrRef, LEFT
from repro.streams.schema import Attribute, Schema
from repro.streams.tuples import StreamTuple


class Projection(UnaryOperator):
    """π — map each input tuple through a schema map.

    ``items`` is an ordered tuple of ``(output_name, expression)`` pairs.
    The timestamp is preserved.
    """

    symbol = "π"

    def __init__(self, items: Sequence[tuple[str, Expression]]):
        if not items:
            raise OperatorError("projection needs at least one output attribute")
        names = [name for name, __ in items]
        if len(set(names)) != len(names):
            raise OperatorError(f"duplicate output attributes in projection: {names}")
        self.items: tuple[tuple[str, Expression], ...] = tuple(
            (name, expression) for name, expression in items
        )

    @classmethod
    def keep(cls, names: Sequence[str]) -> "Projection":
        """Plain relational projection onto ``names``."""
        return cls([(name, AttrRef(LEFT, name)) for name in names])

    def definition(self) -> tuple:
        return ("π", self.items)

    def output_schema(self, input_schemas: Sequence[Schema]) -> Schema:
        self.validate_arity(input_schemas)
        input_schema = input_schemas[0]
        return Schema(
            Attribute(name, expression.result_type(input_schema))
            for name, expression in self.items
        )

    def executor(self, input_schemas: Sequence[Schema]) -> "ProjectionExecutor":
        self.validate_arity(input_schemas)
        return ProjectionExecutor(self, input_schemas[0])


class ProjectionExecutor(OperatorExecutor):
    """Stateless evaluator for one projection."""

    def __init__(self, operator: Projection, input_schema: Schema):
        self.operator = operator
        self.output_schema = operator.output_schema([input_schema])
        self._evaluators = [
            expression.compile(input_schema) for __, expression in operator.items
        ]

    def process(self, input_index: int, tuple_: StreamTuple) -> list[StreamTuple]:
        values = [evaluate(tuple_, None, None) for evaluate in self._evaluators]
        return [StreamTuple(self.output_schema, values, tuple_.ts)]
