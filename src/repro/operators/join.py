"""The sliding-window join operator ⋈.

A symmetric, tuple-driven windowed join: an arriving left tuple probes the
buffered right tuples within the window (and vice versa), emitting the
concatenation for every pair satisfying the join predicate.  Equality
conjuncts between the two sides (``left.a == right.b``) are detected at
construction time and evaluated through hash buffers; residual conjuncts are
evaluated per candidate pair.

Output schema: left attributes prefixed ``l_``, right attributes prefixed
``r_`` (the prefixes keep both sides addressable after concatenation).
"""

from __future__ import annotations

from collections import deque
from typing import Optional, Sequence

from repro.errors import OperatorError
from repro.operators.base import BinaryOperator, OperatorExecutor
from repro.operators.predicates import (
    Predicate,
    TruePredicate,
    as_cross_equality,
    as_duration_bound,
    conjunction,
    conjuncts,
)
from repro.operators.window import TimeWindow
from repro.streams.schema import Schema
from repro.streams.tuples import StreamTuple

#: Attribute prefixes for the two join sides.
LEFT_PREFIX, RIGHT_PREFIX = "l_", "r_"


class SlidingWindowJoin(BinaryOperator):
    """⋈ — join two streams within a sliding time window.

    ``window`` bounds the timestamp distance between joined tuples:
    ``|l.ts - r.ts| <= window.length``.  The paper's shared join rule s⋈
    merges joins "with the same join predicate but potentially different
    window lengths" [12]; the window is therefore part of the operator's
    state management but kept separate from the predicate in the definition,
    letting the rule compare predicates across window lengths.
    """

    symbol = "⋈"

    def __init__(self, predicate: Predicate, window: TimeWindow):
        if not isinstance(window, TimeWindow):
            raise OperatorError("join requires a TimeWindow")
        self.predicate = predicate
        self.window = window

    def definition(self) -> tuple:
        return ("⋈", self.predicate, self.window)

    def output_schema(self, input_schemas: Sequence[Schema]) -> Schema:
        self.validate_arity(input_schemas)
        left, right = input_schemas
        return left.prefixed(LEFT_PREFIX).concat(right.prefixed(RIGHT_PREFIX))

    def executor(self, input_schemas: Sequence[Schema]) -> "JoinExecutor":
        self.validate_arity(input_schemas)
        return JoinExecutor(self, input_schemas[0], input_schemas[1])


class HashBuffer:
    """One side's window buffer, hash-partitioned on the join key.

    Entries expire lazily: the global FIFO is trimmed on insert and the
    per-key bucket is trimmed on probe, both against the caller's threshold.
    Buckets and the FIFO share tuple order (streams arrive in timestamp
    order), so trimming from the front is sound.
    """

    __slots__ = ("_key_position", "_buckets", "_fifo")

    def __init__(self, key_position: Optional[int]):
        self._key_position = key_position
        self._buckets: dict = {}
        self._fifo: deque[tuple[int, object, StreamTuple]] = deque()

    def _key_of(self, tuple_: StreamTuple):
        if self._key_position is None:
            return None
        return tuple_.values[self._key_position]

    def insert(self, tuple_: StreamTuple, threshold: int) -> None:
        fifo = self._fifo
        buckets = self._buckets
        while fifo and fifo[0][0] < threshold:
            __, old_key, old_tuple = fifo.popleft()
            bucket = buckets.get(old_key)
            if bucket and bucket[0] is old_tuple:
                bucket.popleft()
                if not bucket:
                    del buckets[old_key]
        key = self._key_of(tuple_)
        bucket = buckets.get(key)
        if bucket is None:
            bucket = deque()
            buckets[key] = bucket
        bucket.append(tuple_)
        fifo.append((tuple_.ts, key, tuple_))

    def probe(self, key, threshold: int) -> list[StreamTuple]:
        bucket = self._buckets.get(key)
        if not bucket:
            return []
        while bucket and bucket[0].ts < threshold:
            bucket.popleft()
        if not bucket:
            del self._buckets[key]
            return []
        return list(bucket)

    def all_live(self, threshold: int) -> list[StreamTuple]:
        """All unexpired tuples (nested-loop path, no hash key)."""
        return self.probe(None, threshold)

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._buckets.values())


class JoinExecutor(OperatorExecutor):
    """Symmetric hash / nested-loop executor for one windowed join."""

    def __init__(self, operator: SlidingWindowJoin, left_schema: Schema, right_schema: Schema):
        self.operator = operator
        self.output_schema = operator.output_schema([left_schema, right_schema])
        # Pull one cross-equality conjunct into the hash path and fold any
        # duration conjuncts into the window; everything else is residual.
        window = operator.window.length
        cross = None
        leftover: list[Predicate] = []
        for part in conjuncts(operator.predicate):
            bound = as_duration_bound(part)
            if bound is not None:
                window = min(window, bound)
                continue
            if cross is None:
                pair = as_cross_equality(part)
                if pair is not None:
                    cross = pair
                    continue
            leftover.append(part)
        self._window = window
        if cross is not None:
            left_key, right_key = cross
            left_key_position = left_schema.index_of(left_key)
            right_key_position = right_schema.index_of(right_key)
        else:
            left_key_position = right_key_position = None
        self._left_key_position = left_key_position
        self._right_key_position = right_key_position
        residual_predicate = conjunction(leftover)
        if isinstance(residual_predicate, TruePredicate):
            self._residual = None
        else:
            self._residual = residual_predicate.compile(left_schema, right_schema)
        self._left_buffer = HashBuffer(left_key_position)
        self._right_buffer = HashBuffer(right_key_position)

    def process(self, input_index: int, tuple_: StreamTuple) -> list[StreamTuple]:
        threshold = tuple_.ts - self._window
        if input_index == 0:
            return self._process_side(
                tuple_, threshold, probe_right=True
            )
        return self._process_side(tuple_, threshold, probe_right=False)

    def _process_side(
        self, tuple_: StreamTuple, threshold: int, probe_right: bool
    ) -> list[StreamTuple]:
        if probe_right:
            own_buffer, other_buffer = self._left_buffer, self._right_buffer
            key_position = self._left_key_position
        else:
            own_buffer, other_buffer = self._right_buffer, self._left_buffer
            key_position = self._right_key_position
        if key_position is not None:
            key = tuple_.values[key_position]
            candidates = other_buffer.probe(key, threshold)
        else:
            candidates = other_buffer.all_live(threshold)
        outputs: list[StreamTuple] = []
        residual = self._residual
        for candidate in candidates:
            if probe_right:
                left_tuple, right_tuple = tuple_, candidate
            else:
                left_tuple, right_tuple = candidate, tuple_
            if residual is not None and not residual(left_tuple, right_tuple, None):
                continue
            outputs.append(self._concat(left_tuple, right_tuple))
        own_buffer.insert(tuple_, threshold)
        return outputs

    def _concat(self, left_tuple: StreamTuple, right_tuple: StreamTuple) -> StreamTuple:
        return StreamTuple(
            self.output_schema,
            left_tuple.values + right_tuple.values,
            max(left_tuple.ts, right_tuple.ts),
        )

    @property
    def state_size(self) -> int:
        return len(self._left_buffer) + len(self._right_buffer)

    def snapshot_state(self):
        return (self._left_buffer, self._right_buffer)

    def restore_state(self, snapshot) -> None:
        if snapshot is not None:
            self._left_buffer, self._right_buffer = snapshot
