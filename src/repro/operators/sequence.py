"""The Cayuga sequence operator ``;``.

``S ;θ T`` concatenates pairs of events: each left (``S``) tuple opens an
*instance*; a right (``T``) event that satisfies θ against an open instance
emits the concatenation and — per Cayuga's sequence semantics — **consumes**
the matched instance ("when a tuple in the operator state is matched by an
incoming tuple from its second input stream, that tuple in the state is
deleted", §5.2).  Duration conjuncts in θ bound the instance lifetime.

Predicate conjuncts are routed to the cheapest evaluation path, mirroring the
Cayuga indexes the paper translates into RUMOR (§4.3):

- right-side constant equalities (θ3-style, ``T.a0 = c``) become a pre-guard
  evaluated once per event, before any instance is touched — the Active Node
  index behaviour,
- one cross equality (θ1-style, ``S.a0 = T.a0``) keys the instance store's
  hash index — the Active Instance index behaviour,
- duration conjuncts (θ2-style) become window expiry,
- everything else is evaluated per candidate instance.

Output schema: left attributes prefixed with ``s_`` (the *start* event),
right attributes unchanged (the *current* event), as in the plan of Fig 5(b)
where downstream selections reference the current event's attributes.
"""

from __future__ import annotations

from typing import Optional, Sequence as Seq

from repro.operators.base import BinaryOperator, OperatorExecutor
from repro.operators.instances import Instance, InstanceStore
from repro.operators.predicates import (
    Predicate,
    TruePredicate,
    conjunction,
    split_binary_predicate,
)
from repro.streams.schema import Schema
from repro.streams.tuples import StreamTuple

#: Prefix applied to the left (start-event) attributes in the output schema.
START_PREFIX = "s_"


class Sequence(BinaryOperator):
    """``;θ`` — Cayuga sequence with consume-on-match semantics.

    ``consume_on_match=False`` yields the keep variant (equivalent to a
    filter edge that retains matched instances), used by automata whose
    filter predicate keeps instances alive across matches.
    """

    symbol = ";"

    def __init__(self, predicate: Predicate, consume_on_match: bool = True):
        self.predicate = predicate
        self.consume_on_match = consume_on_match

    def definition(self) -> tuple:
        return (";", self.predicate, self.consume_on_match)

    def output_schema(self, input_schemas: Seq[Schema]) -> Schema:
        self.validate_arity(input_schemas)
        left, right = input_schemas
        return left.prefixed(START_PREFIX).concat(right)

    def executor(self, input_schemas: Seq[Schema]) -> "SequenceExecutor":
        self.validate_arity(input_schemas)
        return SequenceExecutor(self, input_schemas[0], input_schemas[1])


class SequenceExecutor(OperatorExecutor):
    """Instance-store based evaluator for one ``;`` operator."""

    def __init__(self, operator: Sequence, left_schema: Schema, right_schema: Schema):
        self.operator = operator
        self.output_schema = operator.output_schema([left_schema, right_schema])
        window, cross, constants, residual = split_binary_predicate(operator.predicate)
        self._window = window  # None = unbounded
        # Event pre-guard: right-side constant equalities (AN-index shape).
        self._guards = [
            (right_schema.index_of(attribute), constant)
            for attribute, constant in constants
        ]
        # Instance index: cross equality (AI-index shape).
        if cross is not None:
            self._left_key_position = left_schema.index_of(cross[0])
            self._right_key_position = right_schema.index_of(cross[1])
        else:
            self._left_key_position = self._right_key_position = None
        residual_predicate = conjunction(residual)
        if isinstance(residual_predicate, TruePredicate):
            self._residual = None
        else:
            self._residual = residual_predicate.compile(left_schema, right_schema)
        self._store = InstanceStore(indexed=cross is not None)

    def process(self, input_index: int, tuple_: StreamTuple) -> list[StreamTuple]:
        if input_index == 0:
            self.insert(tuple_)
            return []
        return [output for output, __ in self.match(tuple_)]

    def insert(self, tuple_: StreamTuple, mask: int = 1) -> None:
        """Open an instance for a left tuple.

        ``mask`` carries the channel membership when this executor backs a
        channelized m-op (§4.4); plain operation uses the default 1.
        """
        if self._left_key_position is not None:
            key = tuple_.values[self._left_key_position]
        else:
            key = None
        self._store.insert(Instance(tuple_, key=key, mask=mask))

    def match(self, event: StreamTuple) -> list[tuple[StreamTuple, int]]:
        """Match a right event; returns ``(output, instance_mask)`` pairs."""
        for position, constant in self._guards:
            if event.values[position] != constant:
                return []
        if self._window is not None:
            self._store.expire(event.ts - self._window)
        if self._right_key_position is not None:
            candidates = self._store.probe(event.values[self._right_key_position])
        else:
            candidates = self._store.scan()
        residual = self._residual
        outputs: list[tuple[StreamTuple, int]] = []
        consumed: list[Instance] = []
        for instance in candidates:
            start = instance.start
            if start.ts > event.ts:
                continue
            if residual is not None and not residual(start, event, None):
                continue
            outputs.append(
                (
                    StreamTuple(
                        self.output_schema, start.values + event.values, event.ts
                    ),
                    instance.mask,
                )
            )
            if self.operator.consume_on_match:
                consumed.append(instance)
        for instance in consumed:
            self._store.kill(instance)
        return outputs

    @property
    def state_size(self) -> int:
        return len(self._store)

    def snapshot_state(self):
        return self._store

    def restore_state(self, snapshot) -> None:
        if snapshot is not None:
            self._store = snapshot
