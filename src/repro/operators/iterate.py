"""The Cayuga iteration operator ``µ``.

``S µθf,θr T`` builds unbounded event sequences: a left (``S``) tuple opens
an instance; right (``T``) events extend it.  For each *probed* instance and
event (see below), with ``last`` denoting the instance's most recently bound
event:

- if the **forward** predicate θf holds, the operator emits the concatenation
  of the instance's start tuple and the current event (the pattern match up
  to this event),
- if the **rebind** predicate θr holds, the instance survives with
  ``last := event`` (Cayuga's rebind edge executing F_r, §4.2),
- if neither holds, the probed instance is deleted — Cayuga's "instances for
  which no edge predicate is satisfied are deleted".

**Probing and the implicit filter edge.**  When the predicates carry a cross
equality (e.g. ``S.pid = T.pid``), only instances whose key matches the event
are probed; all other instances are untouched.  This realizes a filter edge
of the form θf = "event does not correlate with this instance" — exactly how
Cayuga's Active Instance index is able to skip instances — so the monotone
CPU-ramp pattern of Query 1 behaves correctly: readings of other processes
leave an instance alone, while a correlated non-increasing reading breaks it.
Without a cross equality every event probes every instance, giving the strict
Cayuga semantics.

Both predicates may reference ``last.attr``; this requires the instance's
``last`` to be right-schema shaped, so ``last`` references are only permitted
when the left and right input schemas coincide (then ``last`` is initialized
to the start tuple).  All the paper's µ workloads satisfy this.

Output schema: like ``;`` — left attributes prefixed ``s_``, right (current
event) attributes unchanged.
"""

from __future__ import annotations

from typing import Optional, Sequence as Seq

from repro.errors import OperatorError
from repro.operators.base import BinaryOperator, OperatorExecutor
from repro.operators.expressions import LAST, RIGHT, AttrRef, Literal
from repro.operators.instances import Instance, InstanceStore
from repro.operators.predicates import (
    Comparison,
    Predicate,
    TruePredicate,
    as_cross_equality,
    conjunction,
    conjuncts,
    split_binary_predicate,
)
from repro.operators.sequence import START_PREFIX
from repro.streams.schema import Schema
from repro.streams.tuples import StreamTuple


class Iterate(BinaryOperator):
    """``µθf,θr`` — iterated sequence building monotone/recurring patterns."""

    symbol = "µ"

    def __init__(self, forward: Predicate, rebind: Predicate):
        self.forward = forward
        self.rebind = rebind

    def definition(self) -> tuple:
        return ("µ", self.forward, self.rebind)

    def output_schema(self, input_schemas: Seq[Schema]) -> Schema:
        self.validate_arity(input_schemas)
        left, right = input_schemas
        return left.prefixed(START_PREFIX).concat(right)

    def executor(self, input_schemas: Seq[Schema]) -> "IterateExecutor":
        self.validate_arity(input_schemas)
        return IterateExecutor(self, input_schemas[0], input_schemas[1])


def _references_last(predicate: Predicate) -> bool:
    return any(side == LAST for side, __ in predicate.references())


class IterateExecutor(OperatorExecutor):
    """Instance-store based evaluator for one ``µ`` operator."""

    def __init__(self, operator: Iterate, left_schema: Schema, right_schema: Schema):
        self.operator = operator
        self.output_schema = operator.output_schema([left_schema, right_schema])
        uses_last = _references_last(operator.forward) or _references_last(
            operator.rebind
        )
        if uses_last and left_schema != right_schema:
            raise OperatorError(
                "µ predicates reference last.* but the left and right input "
                "schemas differ; `last` is initialized from the start tuple "
                "and must be right-schema shaped"
            )
        self._uses_last = uses_last

        fwd_window, fwd_cross, fwd_constants, fwd_residual = split_binary_predicate(
            operator.forward
        )
        rb_window, rb_cross, rb_constants, rb_residual = split_binary_predicate(
            operator.rebind
        )
        # Duration bounds instance lifetime (from the start event).
        if fwd_window is None:
            self._window = rb_window
        elif rb_window is None:
            self._window = fwd_window
        else:
            self._window = max(fwd_window, rb_window)
        # The instance index is only sound if *both* edges correlate on the
        # same attribute pair — otherwise unprobed instances could miss a
        # rebind or forward they were entitled to.
        if fwd_cross is not None and fwd_cross == rb_cross:
            self._left_key_position = left_schema.index_of(fwd_cross[0])
            self._right_key_position = right_schema.index_of(fwd_cross[1])
            indexed = True
        else:
            self._left_key_position = self._right_key_position = None
            indexed = False
            # Put un-hoisted cross equalities back into the residuals.
            if fwd_cross is not None:
                fwd_residual = list(fwd_residual) + _cross_back(operator.forward)
                fwd_residual = _dedupe(fwd_residual)
            if rb_cross is not None:
                rb_residual = list(rb_residual) + _cross_back(operator.rebind)
                rb_residual = _dedupe(rb_residual)

        last_schema = right_schema
        self._forward = _compile_or_none(
            conjunction(list(fwd_residual) + _constants_back(fwd_constants, right_schema)),
            left_schema,
            right_schema,
            last_schema,
        )
        self._rebind = _compile_or_none(
            conjunction(list(rb_residual) + _constants_back(rb_constants, right_schema)),
            left_schema,
            right_schema,
            last_schema,
        )
        self._store = InstanceStore(indexed=indexed)

    def process(self, input_index: int, tuple_: StreamTuple) -> list[StreamTuple]:
        if input_index == 0:
            self.insert(tuple_)
            return []
        return [output for output, __ in self.advance(tuple_)]

    def insert(self, tuple_: StreamTuple, mask: int = 1) -> None:
        """Open an instance for a left tuple (``mask``: channel membership)."""
        if self._left_key_position is not None:
            key = tuple_.values[self._left_key_position]
        else:
            key = None
        last = tuple_ if self._uses_last else None
        self._store.insert(Instance(tuple_, key=key, last=last, mask=mask))

    def advance(self, event: StreamTuple) -> list[tuple[StreamTuple, int]]:
        """Advance on a right event; returns ``(output, instance_mask)`` pairs."""
        if self._window is not None:
            self._store.expire(event.ts - self._window)
        if self._right_key_position is not None:
            candidates = self._store.probe(event.values[self._right_key_position])
        else:
            candidates = self._store.scan()
        forward, rebind = self._forward, self._rebind
        outputs: list[tuple[StreamTuple, int]] = []
        broken: list[Instance] = []
        rebound: list[Instance] = []
        for instance in candidates:
            start, last = instance.start, instance.last
            if start.ts > event.ts:
                continue
            fires_forward = forward is None or forward(start, event, last)
            fires_rebind = rebind is None or rebind(start, event, last)
            if fires_forward:
                outputs.append(
                    (
                        StreamTuple(
                            self.output_schema, start.values + event.values, event.ts
                        ),
                        instance.mask,
                    )
                )
            # An instance remains at the state only if the rebind edge keeps
            # it there (the forward edge moves it on; a fired forward without
            # rebind consumes the instance locally).
            if fires_rebind:
                rebound.append(instance)
            else:
                broken.append(instance)
        for instance in rebound:
            if self._uses_last:
                instance.last = event
        for instance in broken:
            self._store.kill(instance)
        return outputs

    @property
    def state_size(self) -> int:
        return len(self._store)

    def snapshot_state(self):
        return self._store

    def restore_state(self, snapshot) -> None:
        if snapshot is not None:
            self._store = snapshot


def _compile_or_none(predicate: Predicate, left_schema, right_schema, last_schema):
    if isinstance(predicate, TruePredicate):
        return None
    return predicate.compile(left_schema, right_schema, last_schema)


def _cross_back(predicate: Predicate) -> list[Predicate]:
    """Conjuncts of ``predicate`` that are cross equalities (for re-adding)."""
    return [part for part in conjuncts(predicate) if as_cross_equality(part) is not None]


def _constants_back(constants, right_schema) -> list[Predicate]:
    """Rebuild right-side constant equalities as predicates.

    µ evaluates constants per edge rather than as an operator-level guard,
    because forward and rebind may carry *different* constant conditions.
    """
    return [
        Comparison(AttrRef(RIGHT, attribute), "==", Literal(constant))
        for attribute, constant in constants
    ]


def _dedupe(parts: list[Predicate]) -> list[Predicate]:
    seen: set = set()
    result: list[Predicate] = []
    for part in parts:
        if part not in seen:
            seen.add(part)
            result.append(part)
    return result
