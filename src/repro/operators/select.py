"""The selection operator σ."""

from __future__ import annotations

from typing import Sequence

from repro.operators.base import OperatorExecutor, UnaryOperator
from repro.operators.predicates import Predicate
from repro.streams.schema import Schema
from repro.streams.tuples import StreamTuple


class Selection(UnaryOperator):
    """σ_p — emit input tuples satisfying predicate ``p`` unchanged.

    Selections are the workhorse of the paper's workloads: starting/stopping
    conditions of event patterns, the θ1/θ3 constant predicates of Workload 1,
    and the inputs of predicate indexing [10, 16].  They are also the special
    case of the sharable-stream relation: the output of a selection is
    sharable with its input (§3.2).
    """

    symbol = "σ"
    is_selection = True

    def __init__(self, predicate: Predicate):
        self.predicate = predicate

    def definition(self) -> tuple:
        return ("σ", self.predicate)

    def output_schema(self, input_schemas: Sequence[Schema]) -> Schema:
        self.validate_arity(input_schemas)
        return input_schemas[0]

    def executor(self, input_schemas: Sequence[Schema]) -> "SelectionExecutor":
        self.validate_arity(input_schemas)
        return SelectionExecutor(self, input_schemas[0])


class SelectionExecutor(OperatorExecutor):
    """Stateless evaluator for one selection."""

    def __init__(self, operator: Selection, input_schema: Schema):
        self.operator = operator
        self._test = operator.predicate.compile(input_schema)

    def process(self, input_index: int, tuple_: StreamTuple) -> list[StreamTuple]:
        if self._test(tuple_, None, None):
            return [tuple_]
        return []

    def matches(self, tuple_: StreamTuple) -> bool:
        """Predicate check without materializing an output list."""
        return self._test(tuple_, None, None)
