"""The sliding-window aggregation operator α.

Semantics (CQL-style, tuple-driven): on each input tuple the operator updates
the tuple's group and emits one output tuple carrying the group-by values and
the aggregate over that group's tuples inside the time window ending at the
current timestamp.  This is exactly the paper's smoothing use
("replace the current CPU load ... with an average load over the last 5
seconds", Query 1, §4.1).

The accumulators are *decomposable*: every function exposes a mergeable
partial representation, so the shared-aggregate m-op [22] and the
shared-fragment aggregation m-op [15] can combine per-slice / per-fragment
partials without recomputation.  ``sum``/``count``/``avg`` partials subtract
on expiry in O(1); ``min``/``max`` use a monotonic deque (amortized O(1)).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Optional, Sequence

from repro.errors import OperatorError
from repro.operators.base import OperatorExecutor, UnaryOperator
from repro.operators.window import RowWindow, TimeWindow
from repro.streams.schema import Attribute, Schema
from repro.streams.tuples import StreamTuple


class WindowAccumulator:
    """Protocol: a sliding-window accumulator for one group (or fragment)."""

    def insert(self, ts: int, value: Any) -> None:
        raise NotImplementedError

    def expire(self, threshold: int) -> None:
        """Drop entries with ``ts < threshold``."""
        raise NotImplementedError

    def partial(self) -> Any:
        """Mergeable partial state (see :meth:`AggregateSpec.combine`)."""
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError


class SumCountAccumulator(WindowAccumulator):
    """Subtract-on-expiry accumulator carrying ``(sum, count)`` partials."""

    __slots__ = ("_buffer", "sum", "count")

    def __init__(self):
        self._buffer: deque[tuple[int, Any]] = deque()
        self.sum = 0
        self.count = 0

    def insert(self, ts: int, value: Any) -> None:
        self._buffer.append((ts, value))
        self.sum += value
        self.count += 1

    def expire(self, threshold: int) -> None:
        buffer = self._buffer
        while buffer and buffer[0][0] < threshold:
            __, value = buffer.popleft()
            self.sum -= value
            self.count -= 1

    def partial(self) -> tuple[Any, int]:
        return (self.sum, self.count)

    def __len__(self) -> int:
        return self.count


class MonotonicExtremeAccumulator(WindowAccumulator):
    """Sliding min/max via a monotonic deque (amortized O(1) per update)."""

    __slots__ = ("_maximum", "_mono", "_buffer")

    def __init__(self, maximum: bool):
        self._maximum = maximum
        self._mono: deque[tuple[int, Any]] = deque()
        self._buffer: deque[int] = deque()  # timestamps only, for len()

    def insert(self, ts: int, value: Any) -> None:
        mono = self._mono
        if self._maximum:
            while mono and mono[-1][1] <= value:
                mono.pop()
        else:
            while mono and mono[-1][1] >= value:
                mono.pop()
        mono.append((ts, value))
        self._buffer.append(ts)

    def expire(self, threshold: int) -> None:
        mono = self._mono
        while mono and mono[0][0] < threshold:
            mono.popleft()
        buffer = self._buffer
        while buffer and buffer[0] < threshold:
            buffer.popleft()

    def partial(self) -> Optional[Any]:
        if not self._mono:
            return None
        return self._mono[0][1]

    def __len__(self) -> int:
        return len(self._buffer)


class AggregateSpec:
    """One aggregate function: accumulator factory + partial combination."""

    def __init__(self, name: str, make, combine, finalize, result_type):
        self.name = name
        self.make = make
        #: Merge an iterable of partials into one partial.
        self.combine = combine
        #: Turn a partial into the output value (None for an empty window).
        self.finalize = finalize
        #: Map the target attribute type to the output type.
        self.result_type = result_type


def _combine_sum_count(partials) -> tuple[Any, int]:
    total, count = 0, 0
    for partial in partials:
        total += partial[0]
        count += partial[1]
    return (total, count)


def _combine_extreme(maximum: bool):
    def combine(partials):
        best = None
        for partial in partials:
            if partial is None:
                continue
            if best is None:
                best = partial
            elif (partial > best) if maximum else (partial < best):
                best = partial
        return best

    return combine


AGGREGATE_FUNCTIONS: dict[str, AggregateSpec] = {
    "sum": AggregateSpec(
        "sum",
        make=SumCountAccumulator,
        combine=_combine_sum_count,
        finalize=lambda p: p[0] if p[1] else None,
        result_type=lambda t: t,
    ),
    "count": AggregateSpec(
        "count",
        make=SumCountAccumulator,
        combine=_combine_sum_count,
        finalize=lambda p: p[1],
        result_type=lambda t: "int",
    ),
    "avg": AggregateSpec(
        "avg",
        make=SumCountAccumulator,
        combine=_combine_sum_count,
        finalize=lambda p: (p[0] / p[1]) if p[1] else None,
        result_type=lambda t: "float",
    ),
    "min": AggregateSpec(
        "min",
        make=lambda: MonotonicExtremeAccumulator(maximum=False),
        combine=_combine_extreme(maximum=False),
        finalize=lambda p: p,
        result_type=lambda t: t,
    ),
    "max": AggregateSpec(
        "max",
        make=lambda: MonotonicExtremeAccumulator(maximum=True),
        combine=_combine_extreme(maximum=True),
        finalize=lambda p: p,
        result_type=lambda t: t,
    ),
}


class SlidingWindowAggregate(UnaryOperator):
    """α — per-group sliding-window aggregate with tuple-driven emission.

    Parameters
    ----------
    function:
        One of ``sum | count | avg | min | max``.
    target:
        Attribute aggregated over; may be None for ``count``.
    window:
        A :class:`TimeWindow` (the paper's windows) or a :class:`RowWindow`
        over the last N tuples of the group.
    group_by:
        Attribute names forming the group key (possibly empty).
    output_name:
        Name of the output value attribute; defaults to the function name or,
        when the target attribute is also the output (smoothing), pass the
        target's name to "replace" it as Query 1 does.
    """

    symbol = "α"

    def __init__(
        self,
        function: str,
        target: Optional[str],
        window: TimeWindow,
        group_by: Sequence[str] = (),
        output_name: Optional[str] = None,
    ):
        if function not in AGGREGATE_FUNCTIONS:
            raise OperatorError(
                f"unknown aggregate function {function!r}; "
                f"expected one of {sorted(AGGREGATE_FUNCTIONS)}"
            )
        if target is None and function != "count":
            raise OperatorError(f"aggregate {function!r} requires a target attribute")
        if not isinstance(window, (TimeWindow, RowWindow)):
            raise OperatorError("aggregation requires a TimeWindow or RowWindow")
        self.function = function
        self.target = target
        self.window = window
        self.group_by: tuple[str, ...] = tuple(group_by)
        if len(set(self.group_by)) != len(self.group_by):
            raise OperatorError(f"duplicate group-by attributes: {group_by}")
        self.output_name = output_name or function
        if self.output_name in self.group_by:
            raise OperatorError(
                f"output attribute {self.output_name!r} collides with group-by"
            )

    @property
    def spec(self) -> AggregateSpec:
        return AGGREGATE_FUNCTIONS[self.function]

    def definition(self) -> tuple:
        return (
            "α",
            self.function,
            self.target,
            self.window,
            self.group_by,
            self.output_name,
        )

    def output_schema(self, input_schemas: Sequence[Schema]) -> Schema:
        self.validate_arity(input_schemas)
        input_schema = input_schemas[0]
        attributes = [input_schema.attribute(name) for name in self.group_by]
        target_type = input_schema.type_of(self.target) if self.target else "int"
        attributes.append(
            Attribute(self.output_name, self.spec.result_type(target_type))
        )
        return Schema(attributes)

    def executor(self, input_schemas: Sequence[Schema]) -> "AggregateExecutor":
        self.validate_arity(input_schemas)
        return AggregateExecutor(self, input_schemas[0])


class AggregateExecutor(OperatorExecutor):
    """Per-group accumulators with lazy (emission-time) expiry.

    Groups that stop receiving tuples retain their state; they never emit
    stale values (expiry runs before every emission) but their memory is only
    reclaimed when they receive a tuple again.  The engine's workloads have
    dense group activity, matching the paper's setup.

    Row windows reuse the timestamp machinery by keying the accumulator on a
    per-group arrival sequence number instead of the tuple timestamp: the
    window of "the last N tuples" is exactly sequence > current - N.
    """

    def __init__(self, operator: SlidingWindowAggregate, input_schema: Schema):
        self.operator = operator
        self.output_schema = operator.output_schema([input_schema])
        self._group_positions = [input_schema.index_of(g) for g in operator.group_by]
        self._target_position = (
            input_schema.index_of(operator.target) if operator.target else None
        )
        self._row_mode = isinstance(operator.window, RowWindow)
        self._window = (
            operator.window.count if self._row_mode else operator.window.length
        )
        self._spec = operator.spec
        self._groups: dict[tuple, WindowAccumulator] = {}
        self._sequence: dict[tuple, int] = {}

    def process(self, input_index: int, tuple_: StreamTuple) -> list[StreamTuple]:
        values = tuple_.values
        key = tuple(values[position] for position in self._group_positions)
        accumulator = self._groups.get(key)
        if accumulator is None:
            accumulator = self._spec.make()
            self._groups[key] = accumulator
        target_value = (
            values[self._target_position] if self._target_position is not None else 1
        )
        if self._row_mode:
            sequence = self._sequence.get(key, 0) + 1
            self._sequence[key] = sequence
            accumulator.insert(sequence, target_value)
            accumulator.expire(sequence - self._window + 1)
        else:
            accumulator.insert(tuple_.ts, target_value)
            accumulator.expire(tuple_.ts - self._window)
        result = self._spec.finalize(accumulator.partial())
        return [StreamTuple(self.output_schema, key + (result,), tuple_.ts)]

    @property
    def state_size(self) -> int:
        return sum(len(acc) for acc in self._groups.values())

    def snapshot_state(self):
        return (self._groups, self._sequence)

    def restore_state(self, snapshot) -> None:
        if snapshot is not None:
            self._groups, self._sequence = snapshot
