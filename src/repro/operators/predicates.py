"""Predicates over stream tuples, plus the analyses the m-rules rely on.

A predicate is a boolean expression tree whose leaves compare scalar
expressions (:mod:`repro.operators.expressions`).  Like expressions,
predicates are frozen dataclasses — structural equality is what lets m-rules
detect "operators with the same definition" and lets common-subexpression
elimination fire (§4.3).

The analysis helpers at the bottom recognize the predicate shapes the paper's
MQO techniques index:

- ``as_constant_equality`` — ``attr = c`` equality with a constant, the shape
  predicate indexing [10, 16] and Cayuga's FR / AN indexes exploit,
- ``as_cross_equality`` — ``left.attr = right.attr`` equality across sides,
  the shape Cayuga's Active Instance index exploits (§5.2 Workload 2),
- ``as_duration_bound`` — the paper's "duration predicate" expressing a
  query's window length.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.errors import ExpressionError
from repro.operators.expressions import (
    LEFT,
    RIGHT,
    AttrRef,
    CompiledExpression,
    Expression,
    Literal,
)
from repro.streams.schema import Schema

#: Signature of a compiled predicate.
CompiledPredicate = Callable[[Any, Any, Any], bool]

_COMPARISON_OPS: dict[str, Callable[[Any, Any], bool]] = {
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


class Predicate:
    """Base class for boolean predicates (structural value objects)."""

    def compile(
        self,
        left_schema: Schema,
        right_schema: Optional[Schema] = None,
        last_schema: Optional[Schema] = None,
    ) -> CompiledPredicate:
        raise NotImplementedError

    def references(self) -> frozenset[tuple[int, str]]:
        raise NotImplementedError

    # Builder sugar: ``p & q``, ``p | q``, ``~p``.
    def __and__(self, other: "Predicate") -> "Predicate":
        return conjunction([self, other])

    def __or__(self, other: "Predicate") -> "Predicate":
        return Or((self, other))

    def __invert__(self) -> "Predicate":
        return Not(self)


@dataclass(frozen=True)
class TruePredicate(Predicate):
    """Always true; the identity of conjunction."""

    def compile(self, left_schema, right_schema=None, last_schema=None):
        return lambda l, r, x: True

    def references(self):
        return frozenset()

    def __repr__(self):
        return "TRUE"


@dataclass(frozen=True)
class FalsePredicate(Predicate):
    """Always false; e.g. a rebind edge with θr = false (paper §4.2)."""

    def compile(self, left_schema, right_schema=None, last_schema=None):
        return lambda l, r, x: False

    def references(self):
        return frozenset()

    def __repr__(self):
        return "FALSE"


@dataclass(frozen=True)
class Comparison(Predicate):
    """``lhs op rhs`` over scalar expressions."""

    lhs: Expression
    op: str
    rhs: Expression

    def __post_init__(self):
        if self.op not in _COMPARISON_OPS:
            raise ExpressionError(
                f"unknown comparison operator {self.op!r}; "
                f"expected one of {sorted(_COMPARISON_OPS)}"
            )

    def compile(self, left_schema, right_schema=None, last_schema=None):
        lhs = self.lhs.compile(left_schema, right_schema, last_schema)
        rhs = self.rhs.compile(left_schema, right_schema, last_schema)
        op = _COMPARISON_OPS[self.op]
        return lambda l, r, x: op(lhs(l, r, x), rhs(l, r, x))

    def references(self):
        return self.lhs.references() | self.rhs.references()

    def __repr__(self):
        return f"{self.lhs!r} {self.op} {self.rhs!r}"


@dataclass(frozen=True)
class And(Predicate):
    """Conjunction of sub-predicates."""

    parts: tuple[Predicate, ...]

    def compile(self, left_schema, right_schema=None, last_schema=None):
        compiled = [p.compile(left_schema, right_schema, last_schema) for p in self.parts]
        if len(compiled) == 2:
            first, second = compiled
            return lambda l, r, x: first(l, r, x) and second(l, r, x)
        return lambda l, r, x: all(c(l, r, x) for c in compiled)

    def references(self):
        refs: frozenset[tuple[int, str]] = frozenset()
        for part in self.parts:
            refs |= part.references()
        return refs

    def __repr__(self):
        return "(" + " AND ".join(repr(p) for p in self.parts) + ")"


@dataclass(frozen=True)
class Or(Predicate):
    """Disjunction of sub-predicates."""

    parts: tuple[Predicate, ...]

    def compile(self, left_schema, right_schema=None, last_schema=None):
        compiled = [p.compile(left_schema, right_schema, last_schema) for p in self.parts]
        return lambda l, r, x: any(c(l, r, x) for c in compiled)

    def references(self):
        refs: frozenset[tuple[int, str]] = frozenset()
        for part in self.parts:
            refs |= part.references()
        return refs

    def __repr__(self):
        return "(" + " OR ".join(repr(p) for p in self.parts) + ")"


@dataclass(frozen=True)
class Not(Predicate):
    """Negation of a sub-predicate."""

    part: Predicate

    def compile(self, left_schema, right_schema=None, last_schema=None):
        compiled = self.part.compile(left_schema, right_schema, last_schema)
        return lambda l, r, x: not compiled(l, r, x)

    def references(self):
        return self.part.references()

    def __repr__(self):
        return f"NOT {self.part!r}"


@dataclass(frozen=True)
class DurationWithin(Predicate):
    """The paper's *duration predicate*: the event follows the instance within
    ``window`` time units (``0 <= right.ts - left.ts <= window``).

    Keeping the window as a dedicated node (rather than an opaque comparison
    over ``ts``) lets m-rules and state-expiry logic read it off directly —
    e.g. the shared window join keeps buffers for the *largest* window among
    the queries it implements [12].
    """

    window: int

    def __post_init__(self):
        if self.window < 0:
            raise ExpressionError(f"window must be non-negative, got {self.window}")

    def compile(self, left_schema, right_schema=None, last_schema=None):
        window = self.window
        return lambda l, r, x: 0 <= r.ts - l.ts <= window

    def references(self):
        return frozenset({(LEFT, "ts"), (RIGHT, "ts")})

    def __repr__(self):
        return f"DUR<={self.window}"


# -- construction helpers --------------------------------------------------------


def conjunction(parts: list[Predicate] | tuple[Predicate, ...]) -> Predicate:
    """Build a flattened conjunction, dropping TRUEs and nesting.

    Returns :class:`TruePredicate` for an empty list and the single part
    itself for a singleton, so definitions stay canonical.
    """
    flat: list[Predicate] = []
    for part in parts:
        if isinstance(part, TruePredicate):
            continue
        if isinstance(part, And):
            flat.extend(part.parts)
        else:
            flat.append(part)
    if not flat:
        return TruePredicate()
    if len(flat) == 1:
        return flat[0]
    return And(tuple(flat))


def conjuncts(predicate: Predicate) -> list[Predicate]:
    """Flatten a predicate into its top-level conjuncts."""
    if isinstance(predicate, And):
        result: list[Predicate] = []
        for part in predicate.parts:
            result.extend(conjuncts(part))
        return result
    if isinstance(predicate, TruePredicate):
        return []
    return [predicate]


def map_attr_refs(predicate: Predicate, fn) -> Predicate:
    """Rebuild ``predicate`` with every :class:`AttrRef` leaf mapped by ``fn``.

    ``fn(attr_ref) -> Expression``.  Used by the automaton translation layer
    to convert between the operator-layer side convention (LEFT / RIGHT /
    LAST) and automaton instance schemas.
    """
    if isinstance(predicate, Comparison):
        return Comparison(
            _map_expression(predicate.lhs, fn),
            predicate.op,
            _map_expression(predicate.rhs, fn),
        )
    if isinstance(predicate, And):
        return And(tuple(map_attr_refs(p, fn) for p in predicate.parts))
    if isinstance(predicate, Or):
        return Or(tuple(map_attr_refs(p, fn) for p in predicate.parts))
    if isinstance(predicate, Not):
        return Not(map_attr_refs(predicate.part, fn))
    # TruePredicate / FalsePredicate / DurationWithin have no attr refs.
    return predicate


def _map_expression(expression: Expression, fn) -> Expression:
    from repro.operators.expressions import Arith, AttrRef as _AttrRef, Udf

    if isinstance(expression, _AttrRef):
        return fn(expression)
    if isinstance(expression, Arith):
        return Arith(
            _map_expression(expression.lhs, fn),
            expression.op,
            _map_expression(expression.rhs, fn),
        )
    if isinstance(expression, Udf):
        return Udf(
            expression.name,
            tuple(_map_expression(a, fn) for a in expression.args),
            expression.type,
        )
    return expression


# -- analyses used by m-rules and index selection ----------------------------------


def as_constant_equality(predicate: Predicate) -> Optional[tuple[int, str, Any]]:
    """Recognize ``side.attr == constant`` (either argument order).

    Returns ``(side, attribute, constant)`` or None.  This is the indexable
    shape for predicate indexing [10, 16] and the FR / AN indexes (§4.3).
    """
    if not isinstance(predicate, Comparison) or predicate.op != "==":
        return None
    lhs, rhs = predicate.lhs, predicate.rhs
    if isinstance(lhs, AttrRef) and isinstance(rhs, Literal):
        return (lhs.side, lhs.name, rhs.value)
    if isinstance(rhs, AttrRef) and isinstance(lhs, Literal):
        return (rhs.side, rhs.name, lhs.value)
    return None


def as_cross_equality(predicate: Predicate) -> Optional[tuple[str, str]]:
    """Recognize ``left.attr == right.attr`` (either argument order).

    Returns ``(left_attribute, right_attribute)`` or None.  This is the shape
    the Active Instance index hashes (§5.2 Workload 2: θ1 of form
    ``S.a[0] = T.a[0]``) and the equi-join fast path uses.
    """
    if not isinstance(predicate, Comparison) or predicate.op != "==":
        return None
    lhs, rhs = predicate.lhs, predicate.rhs
    if not (isinstance(lhs, AttrRef) and isinstance(rhs, AttrRef)):
        return None
    if lhs.side == LEFT and rhs.side == RIGHT:
        return (lhs.name, rhs.name)
    if lhs.side == RIGHT and rhs.side == LEFT:
        return (rhs.name, lhs.name)
    return None


def as_duration_bound(predicate: Predicate) -> Optional[int]:
    """Recognize a duration predicate; returns its window length or None."""
    if isinstance(predicate, DurationWithin):
        return predicate.window
    return None


def split_binary_predicate(
    predicate: Predicate,
) -> tuple[Optional[int], Optional[tuple[str, str]], list[tuple[str, Any]], list[Predicate]]:
    """Decompose a binary-operator predicate into its indexable parts.

    Returns ``(window, cross_equality, right_constant_equalities, residual)``:

    - ``window`` — duration bound if present (None otherwise; multiple bounds
      collapse to the tightest),
    - ``cross_equality`` — first ``left.a == right.b`` conjunct (AI-indexable),
    - ``right_constant_equalities`` — ``right.attr == c`` conjuncts
      (AN-indexable), as ``(attribute, constant)`` pairs,
    - ``residual`` — every other conjunct, to be evaluated directly.
    """
    window: Optional[int] = None
    cross: Optional[tuple[str, str]] = None
    constants: list[tuple[str, Any]] = []
    residual: list[Predicate] = []
    for part in conjuncts(predicate):
        bound = as_duration_bound(part)
        if bound is not None:
            window = bound if window is None else min(window, bound)
            continue
        if cross is None:
            pair = as_cross_equality(part)
            if pair is not None:
                cross = pair
                continue
        const = as_constant_equality(part)
        if const is not None and const[0] == RIGHT:
            constants.append((const[1], const[2]))
            continue
        residual.append(part)
    return window, cross, constants, residual
