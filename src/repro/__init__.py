"""RUMOR — a rule-based multi-query optimization framework for data streams.

A from-scratch Python reproduction of *Rule-Based Multi-Query Optimization*
(Hong, Riedewald, Koch, Gehrke, Demers — EDBT 2009).  The package provides:

- the three RUMOR abstractions — physical multi-operators
  (:class:`~repro.core.MOp`), multi-query transformation rules
  (:class:`~repro.core.MRule`) and channels
  (:class:`~repro.streams.Channel`) — plus the Table 1 rule set and the
  priority-ordered rule engine (:class:`~repro.core.Optimizer`);
- the relational and event operator suite (σ, π, α, ⋈, ``;``, ``µ``);
- a Cayuga-style automaton engine (:mod:`repro.automata`) used as the
  baseline comparator, with prefix state merging and FR/AN/AI indexes;
- a push-based execution engine (:class:`~repro.engine.StreamEngine`) with
  state-preserving live migration (:mod:`repro.engine.migration`);
- an online query lifecycle runtime (:class:`~repro.runtime.QueryRuntime`)
  serving dynamic register/unregister workloads without a rebuild;
- a small query language front end (:mod:`repro.lang`);
- the paper's workloads and datasets (:mod:`repro.workloads`) and the
  benchmark harness regenerating every figure (:mod:`repro.bench`).

Quickstart::

    from repro import (
        QueryPlan, Optimizer, StreamEngine, StreamSource, Schema,
        Selection, attr, lit, Comparison,
    )

    plan = QueryPlan()
    stream = plan.add_source("S", Schema.numbered(2))
    out = plan.add_operator(
        Selection(Comparison(attr("a0"), "==", lit(7))), [stream], query_id="q0"
    )
    plan.mark_output(out, "q0")
    Optimizer().optimize(plan)
    engine = StreamEngine(plan)
"""

from repro.errors import (
    AutomatonError,
    LifecycleError,
    ChannelError,
    ExpressionError,
    OperatorError,
    ParseError,
    PlanError,
    QueryLanguageError,
    RuleError,
    RumorError,
    SchemaError,
    WorkloadError,
)
from repro.streams import (
    Attribute,
    Channel,
    ChannelTuple,
    Schema,
    StreamDef,
    StreamSource,
    StreamTuple,
    merge_source_runs,
    merge_sources,
)
from repro.operators import (
    And,
    Arith,
    AttrRef,
    Comparison,
    DurationWithin,
    FalsePredicate,
    Iterate,
    Literal,
    Not,
    Or,
    Projection,
    Selection,
    Sequence,
    SlidingWindowAggregate,
    SlidingWindowJoin,
    TimeWindow,
    TruePredicate,
    attr,
    conjunction,
    last,
    left,
    lit,
    right,
)
from repro.core import (
    MOp,
    MRule,
    OpInstance,
    OptimizationReport,
    Optimizer,
    QueryPlan,
    default_rules,
    sharable,
    sharability_signature,
)
from repro.engine import MigrationStats, RunStats, StreamEngine, migrate_engine
from repro.runtime import QueryRuntime, RuntimeConfig, open_runtime
from repro.shard import (
    ShardPlanner,
    ShardedEngine,
    ShardedRunStats,
    ShardedRuntime,
)

__version__ = "1.1.0"

__all__ = [
    # errors
    "RumorError",
    "SchemaError",
    "ChannelError",
    "PlanError",
    "RuleError",
    "OperatorError",
    "ExpressionError",
    "QueryLanguageError",
    "ParseError",
    "AutomatonError",
    "WorkloadError",
    "LifecycleError",
    # streams
    "Attribute",
    "Schema",
    "StreamTuple",
    "StreamDef",
    "Channel",
    "ChannelTuple",
    "StreamSource",
    "merge_source_runs",
    "merge_sources",
    # operators
    "Selection",
    "Projection",
    "SlidingWindowAggregate",
    "SlidingWindowJoin",
    "Sequence",
    "Iterate",
    "TimeWindow",
    "Comparison",
    "And",
    "Or",
    "Not",
    "TruePredicate",
    "FalsePredicate",
    "DurationWithin",
    "conjunction",
    "AttrRef",
    "Literal",
    "Arith",
    "attr",
    "left",
    "right",
    "last",
    "lit",
    # core
    "MOp",
    "OpInstance",
    "MRule",
    "QueryPlan",
    "Optimizer",
    "OptimizationReport",
    "default_rules",
    "sharable",
    "sharability_signature",
    # engine
    "StreamEngine",
    "RunStats",
    "MigrationStats",
    "migrate_engine",
    # runtime
    "QueryRuntime",
    "RuntimeConfig",
    "open_runtime",
    # shard
    "ShardPlanner",
    "ShardedEngine",
    "ShardedRunStats",
    "ShardedRuntime",
]
