"""Client/server wire protocol for the live serving front door.

The serve tier speaks length-prefixed JSON over a byte stream: every
message is a 4-byte big-endian length followed by a UTF-8 JSON object
with a ``type`` field.  JSON (rather than the pickle wire the worker
fleet uses internally) keeps the front door language-neutral — any
client that can frame JSON can push events — and means a malicious or
confused client can at worst send garbage, never execute code in the
coordinator.

Message flow::

    client                                server
      | -- hello {client} ----------------> |
      | <- welcome {window, streams} ------ |
      | -- events {stream, events} -------> |   (spends len(events) credits)
      | <- credit {n} --------------------- |   (replenished after ingest)
      | -- bye ---------------------------> |
      | <- goodbye {accepted} ------------- |

Flow control is credit-based: ``welcome`` grants ``window`` credits,
each pushed event spends one, and the server returns credits only after
the events have been handed to the runtime session.  A client that
exhausts its window must wait for a ``credit`` message before pushing
more — that is the backpressure path, and it bounds the server's
per-connection memory at ``window`` buffered events no matter how fast
the client writes.

:class:`ServeClient` is the blocking reference client used by the load
generator, the CLI and the tests.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Any, Optional, Sequence

from repro.errors import ServeError

#: Frame header: payload byte length, 4-byte big-endian unsigned.
HEADER = struct.Struct(">I")

#: Upper bound on a single message's payload; anything larger is a
#: protocol violation (a well-behaved client batches far below this).
MAX_MESSAGE = 8 * 1024 * 1024

#: Message type tags.
HELLO = "hello"
WELCOME = "welcome"
EVENTS = "events"
CREDIT = "credit"
BYE = "bye"
GOODBYE = "goodbye"
ERROR = "error"


def encode_message(message: dict) -> bytes:
    """Frame one protocol message: 4-byte length prefix + JSON payload."""
    payload = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_MESSAGE:
        raise ServeError(
            f"protocol message of {len(payload)} bytes exceeds the "
            f"{MAX_MESSAGE}-byte limit; send smaller event batches"
        )
    return HEADER.pack(len(payload)) + payload


def decode_payload(payload: bytes) -> dict:
    """Decode a framed payload back into a message dict."""
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ServeError(f"malformed protocol message: {error}") from error
    if not isinstance(message, dict) or "type" not in message:
        raise ServeError(
            "malformed protocol message: expected a JSON object with a "
            "'type' field"
        )
    return message


def read_exact(sock: socket.socket, n: int) -> Optional[bytes]:
    """Read exactly ``n`` bytes from a blocking socket.

    Returns None on clean EOF at a message boundary (zero bytes read);
    raises :class:`ServeError` if the peer hangs up mid-message.
    """
    chunks: list[bytes] = []
    remaining = n
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if remaining == n:
                return None
            raise ServeError(
                f"peer closed the connection mid-message "
                f"({n - remaining}/{n} bytes read)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_message(sock: socket.socket) -> Optional[dict]:
    """Read one framed message from a blocking socket (None on clean EOF)."""
    header = read_exact(sock, HEADER.size)
    if header is None:
        return None
    (length,) = HEADER.unpack(header)
    if length > MAX_MESSAGE:
        raise ServeError(
            f"peer announced a {length}-byte message; the limit is "
            f"{MAX_MESSAGE} bytes"
        )
    payload = read_exact(sock, length)
    if payload is None:
        raise ServeError("peer closed the connection after a frame header")
    return decode_payload(payload)


class ServeClient:
    """Blocking client for the serve front door.

    Handles the hello/welcome handshake, frames event batches, and
    enforces credit-based flow control on the client side: :meth:`send`
    blocks — reading ``credit`` messages off the socket — whenever the
    window is exhausted.  ``credit_waits`` counts how often that
    happened, which is how the backpressure tests observe a slow server
    without instrumenting it.
    """

    def __init__(self, host: str, port: int, client_id: str = "client"):
        self.client_id = client_id
        self._sock = socket.create_connection((host, port))
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self.credits = 0
        self.sent_events = 0
        self.credit_waits = 0
        self.streams: dict[str, list] = {}
        self._closed = False
        self._handshake()

    def _handshake(self) -> None:
        self._sock.sendall(
            encode_message({"type": HELLO, "client": self.client_id})
        )
        reply = read_message(self._sock)
        if reply is None or reply.get("type") != WELCOME:
            raise ServeError(
                f"expected a welcome from the server, got {reply!r}"
            )
        self.credits = int(reply["window"])
        self.streams = dict(reply.get("streams", {}))

    # -- event push -------------------------------------------------------------

    def send(
        self, stream: str, events: Sequence[tuple[int, Sequence[Any]]]
    ) -> None:
        """Push a batch of ``(ts, values)`` events for one stream.

        Blocks until the flow-control window has room for the whole
        batch, then writes a single ``events`` message.
        """
        if self._closed:
            raise ServeError("client is closed")
        if not events:
            return
        while self.credits < len(events):
            self.credit_waits += 1
            self._await_credit()
        self.credits -= len(events)
        self._sock.sendall(
            encode_message(
                {
                    "type": EVENTS,
                    "stream": stream,
                    "events": [[ts, list(values)] for ts, values in events],
                }
            )
        )
        self.sent_events += len(events)

    def _await_credit(self) -> None:
        message = read_message(self._sock)
        if message is None:
            raise ServeError("server closed the connection while the client "
                             "was waiting for flow-control credits")
        self._absorb(message)

    def _absorb(self, message: dict) -> None:
        kind = message.get("type")
        if kind == CREDIT:
            self.credits += int(message["n"])
        elif kind == ERROR:
            raise ServeError(f"server error: {message.get('message')}")
        else:
            raise ServeError(f"unexpected server message {kind!r}")

    # -- teardown ---------------------------------------------------------------

    def close(self) -> int:
        """Finish the session cleanly; returns the server's accepted count."""
        if self._closed:
            return 0
        self._sock.sendall(encode_message({"type": BYE}))
        accepted = 0
        while True:
            message = read_message(self._sock)
            if message is None:
                break
            if message.get("type") == GOODBYE:
                accepted = int(message.get("accepted", 0))
                break
            self._absorb(message)
        self._closed = True
        self._sock.close()
        return accepted

    def abort(self) -> None:
        """Drop the connection without the bye handshake (tests use this
        to simulate a client dying mid-run)."""
        self._closed = True
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        if exc[0] is None:
            self.close()
        else:
            self.abort()
