"""Load generator: epoch-based arrival schedules for the serve tier.

Modeled on the BRAD-style workload abstraction: a workload is a list of
*epochs*, each giving a per-stream event count, played back over a fixed
``epoch_seconds`` wall-clock duration.  Three schedule shapes cover the
serving scenarios the paper's workloads don't:

- **zipf** — skewed stream popularity (a few hot streams dominate),
  constant aggregate rate;
- **diurnal** — a sinusoidal day/night rate curve over the epochs;
- **bursty** — a quiet baseline punctuated by short spikes at randomly
  chosen epochs.

Schedules are deterministic given a seed: event values, timestamps and
arrival offsets all come from one seeded generator, so a serve run and
its offline replay — and two benchmark arms — see identical inputs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.errors import ServeError
from repro.streams import Schema

from repro.serve.drive import ServeSession, drive_wall_clock
from repro.serve.protocol import ServeClient

__all__ = [
    "EpochSchedule",
    "bursty_schedule",
    "diurnal_schedule",
    "run_loadgen",
    "timed_events",
    "zipf_schedule",
]


@dataclass
class EpochSchedule:
    """A playback plan: per-epoch, per-stream event counts.

    ``epochs[i][stream]`` is how many events ``stream`` receives during
    epoch ``i``; each epoch spans ``epoch_seconds`` of (possibly
    speedup-scaled) wall time, with arrivals spread uniformly at random
    inside the epoch.
    """

    epochs: list = field(default_factory=list)
    epoch_seconds: float = 1.0

    @property
    def total_events(self) -> int:
        return sum(sum(epoch.values()) for epoch in self.epochs)

    @property
    def duration_seconds(self) -> float:
        return len(self.epochs) * self.epoch_seconds

    def to_dict(self) -> dict:
        return {
            "epochs": [dict(e) for e in self.epochs],
            "epoch_seconds": self.epoch_seconds,
        }


def _check(streams: Sequence[str], epochs: int, rate: float) -> None:
    if not streams:
        raise ServeError("a schedule needs at least one stream")
    if epochs < 1:
        raise ServeError(f"epoch count must be positive, got {epochs}")
    if rate <= 0:
        raise ServeError(f"events_per_epoch must be positive, got {rate}")


def zipf_schedule(
    streams: Sequence[str],
    epochs: int = 10,
    events_per_epoch: int = 500,
    skew: float = 1.1,
    epoch_seconds: float = 1.0,
    seed: int = 0,
) -> EpochSchedule:
    """Constant aggregate rate, zipf-skewed across streams."""
    _check(streams, epochs, events_per_epoch)
    if skew <= 0:
        raise ServeError(f"zipf skew must be positive, got {skew}")
    weights = np.array(
        [1.0 / (rank + 1) ** skew for rank in range(len(streams))]
    )
    weights /= weights.sum()
    rng = np.random.default_rng(seed)
    plan = []
    for __ in range(epochs):
        counts = rng.multinomial(events_per_epoch, weights)
        plan.append(
            {s: int(c) for s, c in zip(streams, counts) if c}
        )
    return EpochSchedule(plan, epoch_seconds)


def diurnal_schedule(
    streams: Sequence[str],
    epochs: int = 24,
    events_per_epoch: int = 500,
    trough_fraction: float = 0.2,
    epoch_seconds: float = 1.0,
    seed: int = 0,
) -> EpochSchedule:
    """Sinusoidal rate curve: peak at mid-cycle, trough at the edges."""
    _check(streams, epochs, events_per_epoch)
    if not 0 < trough_fraction <= 1:
        raise ServeError(
            f"trough_fraction must be in (0, 1], got {trough_fraction}"
        )
    rng = np.random.default_rng(seed)
    plan = []
    for i in range(epochs):
        phase = math.sin(math.pi * i / max(1, epochs - 1))
        scale = trough_fraction + (1 - trough_fraction) * phase
        total = max(1, int(round(events_per_epoch * scale)))
        counts = rng.multinomial(total, [1 / len(streams)] * len(streams))
        plan.append({s: int(c) for s, c in zip(streams, counts) if c})
    return EpochSchedule(plan, epoch_seconds)


def bursty_schedule(
    streams: Sequence[str],
    epochs: int = 12,
    events_per_epoch: int = 200,
    burst_multiplier: float = 5.0,
    burst_fraction: float = 0.25,
    epoch_seconds: float = 1.0,
    seed: int = 0,
) -> EpochSchedule:
    """Quiet baseline with spikes at randomly chosen epochs."""
    _check(streams, epochs, events_per_epoch)
    if burst_multiplier < 1:
        raise ServeError(
            f"burst_multiplier must be at least 1, got {burst_multiplier}"
        )
    rng = np.random.default_rng(seed)
    n_bursts = max(1, int(round(epochs * burst_fraction)))
    burst_epochs = set(
        rng.choice(epochs, size=min(n_bursts, epochs), replace=False).tolist()
    )
    plan = []
    for i in range(epochs):
        total = events_per_epoch
        if i in burst_epochs:
            total = int(round(events_per_epoch * burst_multiplier))
        counts = rng.multinomial(total, [1 / len(streams)] * len(streams))
        plan.append({s: int(c) for s, c in zip(streams, counts) if c})
    return EpochSchedule(plan, epoch_seconds)


SCHEDULE_BUILDERS = {
    "zipf": zipf_schedule,
    "diurnal": diurnal_schedule,
    "bursty": bursty_schedule,
}


def build_schedule(shape: str, streams: Sequence[str], **options) -> EpochSchedule:
    """Build a schedule by shape name (the CLI's entry point)."""
    try:
        builder = SCHEDULE_BUILDERS[shape]
    except KeyError:
        raise ServeError(
            f"unknown schedule shape {shape!r}; choose from "
            f"{sorted(SCHEDULE_BUILDERS)}"
        ) from None
    return builder(streams, **options)


def timed_events(
    schedule: EpochSchedule,
    sources: dict[str, Schema],
    seed: int = 0,
    value_range: int = 8,
) -> list[tuple[float, str, tuple[int, tuple]]]:
    """Materialize a schedule into ``(due_seconds, stream, (ts, values))``.

    Arrivals are uniform inside each epoch and globally sorted by due
    time; tuple timestamps are integer milliseconds of the due time, so
    event-pattern windows (``WITHIN``) see arrival spacing.  Values are
    small ints drawn from the seeded generator — matching the synthetic
    workloads, where predicate selectivity comes from value collisions.
    """
    for stream in {s for epoch in schedule.epochs for s in epoch}:
        if stream not in sources:
            raise ServeError(
                f"schedule names unknown stream {stream!r}; declared "
                f"sources are {sorted(sources)}"
            )
    rng = np.random.default_rng(seed)
    out: list[tuple[float, str, tuple[int, tuple]]] = []
    for i, epoch in enumerate(schedule.epochs):
        start = i * schedule.epoch_seconds
        for stream in sorted(epoch):
            count = epoch[stream]
            offsets = rng.uniform(0, schedule.epoch_seconds, size=count)
            width = len(sources[stream])
            values = rng.integers(0, value_range, size=(count, width))
            for k in range(count):
                due = start + float(offsets[k])
                out.append(
                    (
                        due,
                        stream,
                        (
                            int(due * 1000),
                            tuple(int(v) for v in values[k]),
                        ),
                    )
                )
    out.sort(key=lambda item: (item[0], item[1]))
    return out


def run_loadgen(
    host: str,
    port: int,
    schedule: EpochSchedule,
    sources: Optional[dict[str, Schema]] = None,
    seed: int = 0,
    speedup: float = 1.0,
    client_id: str = "loadgen",
    batch_window: float = 0.005,
) -> dict:
    """Drive a serve front door over a socket following a schedule.

    Opens one :class:`~repro.serve.protocol.ServeClient`, paces the
    materialized arrivals against the wall clock (scaled by
    ``speedup``), coalescing same-stream arrivals that fall due within
    ``batch_window`` into one push.  Returns client-side stats including
    how often flow control blocked the client (``credit_waits``).

    With ``sources=None`` the stream schemas come from the server's
    ``welcome`` message — the protocol is self-describing, so a load
    generator on another machine needs only the address and a schedule.
    """
    if speedup <= 0:
        raise ServeError(f"speedup must be positive, got {speedup}")
    import time as _time

    with ServeClient(host, port, client_id=client_id) as client:
        if sources is None:
            sources = {
                name: Schema([tuple(a) for a in attrs])
                for name, attrs in client.streams.items()
            }
        arrivals = timed_events(schedule, sources, seed=seed)
        start = _time.monotonic()
        i, n = 0, len(arrivals)
        while i < n:
            due, stream, event = arrivals[i]
            delay = start + due / speedup - _time.monotonic()
            if delay > 0:
                _time.sleep(delay)
            batch = [event]
            j = i + 1
            while (
                j < n
                and arrivals[j][1] == stream
                and arrivals[j][0] - due <= batch_window
            ):
                batch.append(arrivals[j][2])
                j += 1
            client.send(stream, batch)
            i = j
        sent = client.sent_events
        waits = client.credit_waits
        accepted = client.close()
    return {
        "sent_events": sent,
        "accepted_events": accepted,
        "credit_waits": waits,
        "duration_seconds": schedule.duration_seconds / speedup,
    }


def drive_schedule_inline(
    session: ServeSession,
    schedule: EpochSchedule,
    sources: dict[str, Schema],
    seed: int = 0,
    speedup: float = 1.0,
) -> int:
    """Socket-free variant: pace a schedule straight into a session.

    The ``serve --self-drive`` path and the benchmark use this to
    measure the drive/runtime stack without TCP in the loop.
    """
    arrivals = timed_events(schedule, sources, seed=seed)
    return drive_wall_clock(session, arrivals, speedup=speedup)
