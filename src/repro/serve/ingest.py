"""Async socket ingestion tier for the live serving front door.

An :class:`IngestServer` accepts client connections speaking the
:mod:`repro.serve.protocol` wire format, assembles per-stream runs from
the pushed events, and feeds them to a :class:`~repro.serve.drive.ServeSession`.
The asyncio event loop runs in a daemon thread so the server composes
with the synchronous coordinator (which owns its own threads for the
pump and heartbeat) without the caller adopting asyncio.

Backpressure is two-staged and fully bounded:

1. **Per-connection credits.**  Each client gets a ``window`` of
   flow-control credits at handshake; an event costs one credit and
   credits are returned only after the server has handed the events to
   the session.  A client that keeps pushing past its window has at most
   ``window`` events buffered server-side — the socket reader simply
   stops granting credits and the client's :meth:`ServeClient.send`
   blocks.
2. **Session queue.**  Handing runs to the session uses the
   non-blocking ``try_submit_run``; when the pump queue is full the
   reader coroutine backs off (``await asyncio.sleep``) *without*
   returning credits, so saturation propagates all the way back to
   client sockets.

Runs flush on either a size threshold (``max_run``) or a short timer
(``flush_interval``) so trickle traffic still makes progress.  Because
one coroutine per connection does buffering and a single session pump
does shipping, per-stream event order is the arrival order within each
connection — which the arrival log then makes replayable.
"""

from __future__ import annotations

import asyncio
import threading
from collections import deque
from typing import Any, Optional

from repro.errors import ServeError
from repro.serve import protocol
from repro.serve.drive import ServeSession

__all__ = ["IngestServer"]


class _Connection:
    """Per-connection state: credits, per-stream buffers, counters."""

    def __init__(self, client_id: str, window: int):
        self.client_id = client_id
        self.credits = window
        self.buffers: dict[str, list[tuple[int, tuple]]] = {}
        self.accepted = 0
        self.owed = 0  # credits to return once buffered events ship
        # The reader (max_run path) and the flush timer both flush; the
        # lock keeps those flushes serial so a flush that backs off on a
        # saturated session can't be overtaken by a later one — which
        # would invert per-stream event order.
        self.flushing = asyncio.Lock()

    @property
    def buffered(self) -> int:
        return sum(len(b) for b in self.buffers.values())


class IngestServer:
    """Socket front door feeding a :class:`ServeSession`.

    ``port=0`` binds an ephemeral port; the bound address is available
    as :attr:`address` once :meth:`start` returns.  Use as a context
    manager::

        with ServeSession(runtime) as session:
            with IngestServer(session, port=0) as server:
                host, port = server.address
                ...clients connect and push...
    """

    def __init__(
        self,
        session: ServeSession,
        host: str = "127.0.0.1",
        port: int = 0,
        window: int = 1024,
        max_run: int = 256,
        flush_interval: float = 0.02,
    ):
        if window < 1:
            raise ServeError(f"credit window must be positive, got {window}")
        if max_run < 1:
            raise ServeError(f"max_run must be positive, got {max_run}")
        self.session = session
        self.host = host
        self.port = port
        self.window = window
        self.max_run = max_run
        self.flush_interval = flush_interval
        self.address: Optional[tuple[str, int]] = None
        self.accepted_events = 0
        self.connections_served = 0
        self.disconnects_mid_run = 0
        self.buffered_high_water = 0
        #: Submissions that found another connection already waiting for
        #: the session pump (i.e. the turnstile actually arbitrated).
        self.contended_submits = 0
        # FIFO of connections waiting to hand a run to the session.  Only
        # the head may try: under saturation this degrades to round-robin
        # across connections, so credit replenishment (which follows the
        # submit) is round-robin too — a fast pusher cannot re-grab every
        # freed pump slot ahead of a slower client.
        self._submit_turns: deque[_Connection] = deque()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None

    # -- lifecycle --------------------------------------------------------------

    def start(self) -> "IngestServer":
        self._thread = threading.Thread(
            target=self._run_loop, name="repro-ingest", daemon=True
        )
        self._thread.start()
        self._ready.wait(timeout=10.0)
        if self._startup_error is not None:
            raise ServeError(
                f"ingest server failed to start: {self._startup_error}"
            ) from self._startup_error
        if self.address is None:
            raise ServeError("ingest server failed to bind within 10s")
        return self

    def stop(self) -> None:
        loop = self._loop
        if loop is None:
            return
        asyncio.run_coroutine_threadsafe(self._shutdown(), loop).result(
            timeout=10.0
        )
        # Stopping the loop from inside the coroutine would kill the
        # callback that resolves the future above; stop it separately.
        loop.call_soon_threadsafe(loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=10.0)
        self._loop = None

    async def _shutdown(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

    def _run_loop(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            self._server = loop.run_until_complete(
                asyncio.start_server(self._handle, self.host, self.port)
            )
            sockname = self._server.sockets[0].getsockname()
            self.address = (sockname[0], sockname[1])
        except BaseException as error:
            self._startup_error = error
            self._ready.set()
            loop.close()
            return
        self._ready.set()
        try:
            loop.run_forever()
        finally:
            loop.close()

    def __enter__(self) -> "IngestServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- connection handling ----------------------------------------------------

    def _stream_catalog(self) -> dict[str, list]:
        return {
            name: [[a.name, a.type] for a in stream.schema.attributes]
            for name, stream in self.session.runtime.streams.items()
        }

    async def _send(self, writer: asyncio.StreamWriter, message: dict) -> None:
        writer.write(protocol.encode_message(message))
        await writer.drain()

    async def _read_message(
        self, reader: asyncio.StreamReader
    ) -> Optional[dict]:
        try:
            header = await reader.readexactly(protocol.HEADER.size)
        except (asyncio.IncompleteReadError, ConnectionResetError):
            return None
        (length,) = protocol.HEADER.unpack(header)
        if length > protocol.MAX_MESSAGE:
            raise ServeError(
                f"client announced a {length}-byte message; the limit is "
                f"{protocol.MAX_MESSAGE} bytes"
            )
        try:
            payload = await reader.readexactly(length)
        except (asyncio.IncompleteReadError, ConnectionResetError):
            return None
        return protocol.decode_payload(payload)

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        conn: Optional[_Connection] = None
        try:
            hello = await self._read_message(reader)
            if hello is None or hello.get("type") != protocol.HELLO:
                await self._send(
                    writer,
                    {"type": protocol.ERROR,
                     "message": "expected a hello message"},
                )
                return
            conn = _Connection(
                str(hello.get("client", "client")), self.window
            )
            self.connections_served += 1
            await self._send(
                writer,
                {
                    "type": protocol.WELCOME,
                    "window": self.window,
                    "streams": self._stream_catalog(),
                },
            )
            flusher = asyncio.ensure_future(self._flush_timer(conn, writer))
            try:
                await self._serve_connection(conn, reader, writer)
            finally:
                flusher.cancel()
        except ServeError as error:
            try:
                await self._send(
                    writer,
                    {"type": protocol.ERROR, "message": str(error)},
                )
            except (ConnectionError, OSError):
                pass
        except (ConnectionError, OSError):
            pass
        finally:
            if conn is not None and conn.buffered:
                # Client vanished mid-run: ship what it already pushed —
                # accepted events are accepted, the arrival log keeps them.
                self.disconnects_mid_run += 1
                await self._flush_all(conn, writer=None)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _serve_connection(
        self,
        conn: _Connection,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        while True:
            message = await self._read_message(reader)
            if message is None:
                return  # client dropped without bye
            kind = message.get("type")
            if kind == protocol.EVENTS:
                await self._on_events(conn, writer, message)
            elif kind == protocol.BYE:
                await self._flush_all(conn, writer)
                await self._send(
                    writer,
                    {"type": protocol.GOODBYE, "accepted": conn.accepted},
                )
                return
            else:
                raise ServeError(f"unexpected client message {kind!r}")

    async def _on_events(
        self,
        conn: _Connection,
        writer: asyncio.StreamWriter,
        message: dict,
    ) -> None:
        stream = message.get("stream")
        streams = self.session.runtime.streams
        if stream not in streams:
            raise ServeError(
                f"unknown stream {stream!r}; declared sources are "
                f"{sorted(streams)}"
            )
        events = message.get("events")
        if not isinstance(events, list):
            raise ServeError("events message carries no event list")
        if len(events) > conn.credits:
            raise ServeError(
                f"client {conn.client_id!r} overran its flow-control "
                f"window: pushed {len(events)} events with "
                f"{conn.credits} credits remaining"
            )
        width = len(streams[stream].schema)
        buffer = conn.buffers.setdefault(stream, [])
        for entry in events:
            if (
                not isinstance(entry, list)
                or len(entry) != 2
                or not isinstance(entry[1], list)
            ):
                raise ServeError(
                    "malformed event; expected [ts, [values...]]"
                )
            ts, values = entry
            if len(values) != width:
                raise ServeError(
                    f"event for {stream!r} has {len(values)} values; "
                    f"schema width is {width}"
                )
            buffer.append((int(ts), tuple(values)))
        conn.credits -= len(events)
        self.buffered_high_water = max(self.buffered_high_water, conn.buffered)
        if len(buffer) >= self.max_run:
            await self._flush_stream(conn, stream, writer)

    # -- flushing ---------------------------------------------------------------

    async def _flush_timer(
        self, conn: _Connection, writer: asyncio.StreamWriter
    ) -> None:
        # Trickle traffic: ship partial runs on a short timer so a slow
        # client's events don't sit buffered until max_run fills.
        try:
            while True:
                await asyncio.sleep(self.flush_interval)
                await self._flush_all(conn, writer)
        except asyncio.CancelledError:
            pass

    async def _flush_all(
        self, conn: _Connection, writer: Optional[asyncio.StreamWriter]
    ) -> None:
        for stream in [s for s, b in conn.buffers.items() if b]:
            await self._flush_stream(conn, stream, writer)

    async def _flush_stream(
        self,
        conn: _Connection,
        stream: str,
        writer: Optional[asyncio.StreamWriter],
    ) -> None:
        async with conn.flushing:
            buffer = conn.buffers.get(stream)
            if not buffer:
                return
            run, conn.buffers[stream] = buffer, []
            # Session saturated → back off without granting credits; the
            # client stays blocked and memory stays bounded.  Admission is
            # fair: see _submit_run.
            await self._submit_run(conn, stream, run)
            conn.accepted += len(run)
            conn.owed += len(run)
            self.accepted_events += len(run)
        if writer is not None and conn.owed:
            owed, conn.owed = conn.owed, 0
            conn.credits += owed
            try:
                await self._send(
                    writer, {"type": protocol.CREDIT, "n": owed}
                )
            except (ConnectionError, OSError):
                conn.credits -= owed  # connection is going away anyway
                raise

    async def _submit_run(
        self, conn: _Connection, stream: str, run: list
    ) -> None:
        """Hand one run to the session pump, fairly across connections.

        Every submission joins a server-wide FIFO and only the head of
        the queue may try ``try_submit_run``; under sustained saturation
        connections therefore alternate — round-robin — and each client's
        credits come back (the flush returns them right after this call)
        at the shared pump's pace, not at the aggressor's push rate.
        Without the turnstile, whichever reader coroutine polls first
        re-grabs every freed slot, and a slow client's ship latency grows
        unboundedly behind a fast one.
        """
        turns = self._submit_turns
        if turns:
            self.contended_submits += 1
        turns.append(conn)
        try:
            while True:
                if turns[0] is conn and self.session.try_submit_run(
                    stream, run
                ):
                    return
                await asyncio.sleep(self.flush_interval)
        finally:
            turns.remove(conn)

    # -- introspection ----------------------------------------------------------

    def stats(self) -> dict:
        return {
            "accepted_events": self.accepted_events,
            "connections_served": self.connections_served,
            "disconnects_mid_run": self.disconnects_mid_run,
            "buffered_high_water": self.buffered_high_water,
            "contended_submits": self.contended_submits,
        }
