"""Live serving front door.

Everything between a client socket and the runtime: the length-prefixed
JSON wire protocol with credit-based flow control
(:mod:`repro.serve.protocol`), the asyncio ingestion tier
(:mod:`repro.serve.ingest`), the single-pump wall-clock drive with
idle-period heartbeats (:mod:`repro.serve.drive`), BRAD-style epoch
arrival schedules (:mod:`repro.serve.loadgen`), and byte-identical
offline replay verification (:mod:`repro.serve.replay`).

Minimal live server::

    from repro import RuntimeConfig, open_runtime
    from repro.serve import IngestServer, ServeSession

    runtime = open_runtime(RuntimeConfig(sources=sources, process=True))
    with ServeSession(runtime) as session:
        session.submit_register("FROM S WHERE a0 == 1", "q0")
        with IngestServer(session, port=4545) as server:
            ...  # clients push via ServeClient(host, port)
        report = session.finish()
"""

from repro.serve.drive import (
    ArrivalLog,
    HeartbeatTimer,
    ServeReport,
    ServeSession,
    drive_wall_clock,
)
from repro.serve.ingest import IngestServer
from repro.serve.loadgen import (
    EpochSchedule,
    build_schedule,
    bursty_schedule,
    diurnal_schedule,
    run_loadgen,
    timed_events,
    zipf_schedule,
)
from repro.serve.protocol import ServeClient
from repro.serve.replay import normalize_captured, replay_log, verify_equivalence

__all__ = [
    "ArrivalLog",
    "EpochSchedule",
    "HeartbeatTimer",
    "IngestServer",
    "ServeClient",
    "ServeReport",
    "ServeSession",
    "build_schedule",
    "bursty_schedule",
    "diurnal_schedule",
    "drive_wall_clock",
    "normalize_captured",
    "replay_log",
    "run_loadgen",
    "timed_events",
    "verify_equivalence",
    "zipf_schedule",
]
