"""Offline replay of a serve session's arrival log.

The serve tier's correctness criterion: feeding the recorded arrivals —
in recorded order — through a plain offline :class:`~repro.runtime.QueryRuntime`
must reproduce the live session's outputs *byte for byte*.  That holds
because every source of live nondeterminism is quarantined upstream of
the runtime:

- socket interleaving is resolved by the single session pump, whose
  dequeue order is what the log records;
- pipelined lifecycle commands apply in queue order on each worker, the
  same order the log records them in;
- wall-clock pacing affects *when* runs ship, never their contents.

So the log is a total order of (runs, lifecycle ops) and any engine —
sharded, process-forked, or single-process — that applies it in order
computes the same outputs.  :func:`verify_equivalence` pickles both
normalized output maps and compares the bytes, which catches value
drift, reordering, and type changes (an int becoming a float) alike.
"""

from __future__ import annotations

import pickle
from typing import Optional

from repro.errors import ServeError
from repro.runtime.config import RuntimeConfig, open_runtime
from repro.streams import Schema, StreamTuple

from repro.serve.drive import ArrivalLog

__all__ = ["normalize_captured", "replay_log", "verify_equivalence"]


def normalize_captured(captured: dict) -> dict:
    """Reduce captured outputs to a canonical, picklable form.

    ``{query_id: [(ts, values), ...]}`` with query ids sorted — stable
    across runtime flavors (shard snapshots merge dicts in shard order;
    sorting removes that artifact while preserving per-query output
    order, which is the order the engine emitted them in).  The values
    tuple is rebuilt per entry: an in-process engine delivers one shared
    tuple object to every query it matches, a forked fleet deserializes
    distinct copies, and pickle's memo would encode that identity
    difference as different bytes for equal values.
    """
    return {
        query_id: [(t.ts, tuple(v for v in t.values)) for t in outputs]
        for query_id, outputs in sorted(captured.items())
    }


def replay_log(
    log: ArrivalLog, sources: dict[str, Schema]
) -> dict:
    """Apply a recorded arrival log to a fresh offline runtime.

    Returns the normalized captured outputs.  The replay runtime is the
    simplest one available — a single in-process
    :class:`~repro.runtime.QueryRuntime` — precisely because equivalence
    against the simplest engine is the strongest statement: the whole
    serve stack (sockets, buffers, pump, sharded fleet, pipelined
    commands) added nothing and lost nothing.
    """
    runtime = open_runtime(
        RuntimeConfig(sources=dict(sources), capture_outputs=True)
    )
    for entry in log.entries:
        kind = entry[0]
        if kind == "run":
            __, stream, events = entry
            schema = runtime.streams[stream].schema
            runtime.process_batch(
                stream,
                [StreamTuple(schema, values, ts) for ts, values in events],
            )
        elif kind == "register":
            __, query, query_id = entry
            runtime.register(query, query_id=query_id)
        elif kind == "unregister":
            runtime.unregister(entry[1])
        else:  # pragma: no cover - log writer bug
            raise ServeError(f"unknown arrival-log entry {kind!r}")
    return normalize_captured(runtime.captured)


def verify_equivalence(
    live_captured: dict,
    log: ArrivalLog,
    sources: dict[str, Schema],
    replayed: Optional[dict] = None,
) -> dict:
    """Assert byte-identity between live outputs and an offline replay.

    Returns a small report dict on success; raises :class:`ServeError`
    with a per-query diff summary on mismatch.  Pass ``replayed`` to
    reuse an already-computed replay (the benchmark does, to time the
    replay separately).
    """
    live = normalize_captured(live_captured)
    if replayed is None:
        replayed = replay_log(log, sources)
    live_bytes = pickle.dumps(live)
    replay_bytes = pickle.dumps(replayed)
    if live_bytes == replay_bytes:
        return {
            "identical": True,
            "queries": len(live),
            "outputs": sum(len(v) for v in live.values()),
            "bytes": len(live_bytes),
        }
    problems = []
    for query_id in sorted(set(live) | set(replayed)):
        a, b = live.get(query_id), replayed.get(query_id)
        if a is None:
            problems.append(f"{query_id}: only in replay ({len(b)} outputs)")
        elif b is None:
            problems.append(f"{query_id}: only in live ({len(a)} outputs)")
        elif a != b:
            problems.append(
                f"{query_id}: live {len(a)} outputs != replay {len(b)}"
            )
    raise ServeError(
        "serve outputs diverge from offline replay: "
        + ("; ".join(problems) if problems else
           "same values, different serialized layout")
    )
