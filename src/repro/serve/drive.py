"""Wall-clock drive: the pump thread between live arrivals and a runtime.

Offline drivers (:mod:`repro.workloads.churn`, the benchmarks) own the
clock — they call ``process_batch`` in a tight loop and nothing happens
between calls.  A live server inverts that: events arrive whenever
clients push them, and the runtime must keep making progress (heartbeats,
failure detection, pipelined-command collection) even when no data is
flowing.

:class:`ServeSession` is that inversion.  Producers — socket readers,
the wall-clock driver, tests — enqueue work onto a bounded queue; a
single pump thread dequeues and applies it to the runtime.  The single
pump is load-bearing twice over:

- **Determinism.**  The pump's dequeue order *is* the ship order, and
  the :class:`ArrivalLog` records exactly that order — so replaying the
  log through an offline runtime reproduces the serve outputs
  byte-for-byte (:mod:`repro.serve.replay` checks this).
- **Overlap.**  Lifecycle commands go through the coordinator's
  pipelined submit path (:meth:`ProcessShardedRuntime.submit_register`)
  when available, so the coordinator encodes the next run while workers
  still decode the previous command — acks are collected at the next
  barrier rather than inline.

The bounded queue is the second backpressure stage (the first is the
per-connection credit window in :mod:`repro.serve.protocol`): when the
runtime falls behind, ``try_submit`` fails, the ingest tier stops
granting credits, and memory stays bounded end to end.

:class:`HeartbeatTimer` fixes idle-period failure detection for any
driver: a daemon timer thread calls ``runtime.heartbeat()`` on a fixed
cadence *independent of data arrival*, so a worker that dies while no
events are flowing is still detected and recovered.
"""

from __future__ import annotations

import contextlib
import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

from repro.errors import ServeError
from repro.streams import StreamTuple

__all__ = [
    "ArrivalLog",
    "HeartbeatTimer",
    "ServeReport",
    "ServeSession",
    "drive_wall_clock",
]


class HeartbeatTimer:
    """Drive ``runtime.heartbeat()`` on a wall-clock cadence.

    Failure detection used to be parasitic on data flow: heartbeats ran
    when batches did, so a worker crash during an idle period went
    unnoticed until the next arrival.  This timer decouples them — a
    daemon thread beats every ``interval`` seconds whether or not any
    data is moving.  Used as a context manager; exceptions from a beat
    are captured and re-raised on exit rather than lost in the thread.
    """

    def __init__(self, runtime, interval: float = 0.25):
        if interval <= 0:
            raise ServeError(
                f"heartbeat interval must be positive, got {interval}"
            )
        self.runtime = runtime
        self.interval = interval
        self.beats = 0
        self._stop = threading.Event()
        self._error: Optional[BaseException] = None
        self._thread = threading.Thread(
            target=self._run, name="repro-heartbeat", daemon=True
        )

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self.runtime.heartbeat()
                self.beats += 1
            except BaseException as error:  # surfaced on stop()
                self._error = error
                return

    def start(self) -> "HeartbeatTimer":
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        self._thread.join()
        if self._error is not None:
            error, self._error = self._error, None
            raise error

    def __enter__(self) -> "HeartbeatTimer":
        return self.start()

    def __exit__(self, *exc) -> None:
        if exc[0] is None:
            self.stop()
        else:
            self._stop.set()
            self._thread.join()


class ArrivalLog:
    """Record of everything a serve session applied, in apply order.

    Entries are ``("run", stream, events)`` and
    ``("register"/"unregister", payload)`` tuples appended by the pump
    thread at dequeue time — i.e. in exactly the order the runtime saw
    them.  :func:`repro.serve.replay.replay_log` turns the log back into
    outputs; byte-identity with the live outputs is the serve tier's
    correctness criterion.
    """

    def __init__(self):
        self.entries: list[tuple] = []

    def record_run(
        self, stream: str, events: Sequence[tuple[int, tuple]]
    ) -> None:
        self.entries.append(("run", stream, list(events)))

    def record_register(self, query: str, query_id: str) -> None:
        self.entries.append(("register", query, query_id))

    def record_unregister(self, query_id: str) -> None:
        self.entries.append(("unregister", query_id))

    @property
    def events(self) -> int:
        return sum(len(e[2]) for e in self.entries if e[0] == "run")

    @property
    def runs(self) -> int:
        return sum(1 for e in self.entries if e[0] == "run")


@dataclass
class ServeReport:
    """Summary of one serve session, produced by :meth:`ServeSession.finish`."""

    events: int = 0
    runs: int = 0
    lifecycle_ops: int = 0
    duration_seconds: float = 0.0
    events_per_second: float = 0.0
    ship_p50_ms: float = 0.0
    ship_p99_ms: float = 0.0
    heartbeats: int = 0
    ship_latencies_ms: list = field(default_factory=list, repr=False)

    def to_dict(self) -> dict:
        return {
            "events": self.events,
            "runs": self.runs,
            "lifecycle_ops": self.lifecycle_ops,
            "duration_seconds": round(self.duration_seconds, 6),
            "events_per_second": round(self.events_per_second, 2),
            "ship_p50_ms": round(self.ship_p50_ms, 3),
            "ship_p99_ms": round(self.ship_p99_ms, 3),
            "heartbeats": self.heartbeats,
        }


def _percentile(sorted_values: list, fraction: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(
        len(sorted_values) - 1, int(fraction * (len(sorted_values) - 1))
    )
    return sorted_values[index]


class ServeSession:
    """Single-pump bridge between live producers and a runtime.

    Producers call :meth:`submit_run` / :meth:`try_submit_run` (socket
    readers use the non-blocking form so backpressure propagates to
    clients instead of blocking the event loop) and
    :meth:`submit_register` / :meth:`submit_unregister` for lifecycle.
    The pump thread applies everything in dequeue order and heartbeats
    the runtime whenever the queue goes idle for ``heartbeat_interval``
    seconds.

    ``record=True`` (the default) keeps an :class:`ArrivalLog` for
    replay verification; a long-running production serve would disable
    it or rotate the log.
    """

    def __init__(
        self,
        runtime,
        record: bool = True,
        queue_runs: int = 64,
        heartbeat_interval: float = 0.25,
    ):
        if queue_runs < 1:
            raise ServeError(
                f"queue_runs must be at least 1, got {queue_runs}"
            )
        self.runtime = runtime
        self.log: Optional[ArrivalLog] = ArrivalLog() if record else None
        self.heartbeat_interval = heartbeat_interval
        self._queue: queue.Queue = queue.Queue(maxsize=queue_runs)
        self._error: Optional[BaseException] = None
        self._closed = False
        self._started_at: Optional[float] = None
        self._finished_at: Optional[float] = None
        self._events = 0
        self._runs = 0
        self._lifecycle_ops = 0
        self._heartbeats = 0
        self._ship_latencies: list[float] = []
        # submit_register/... from multiple socket readers race on the
        # runtime's query catalog reads; one lock keeps them ordered.
        self._submit_lock = threading.Lock()
        self._pump = threading.Thread(
            target=self._pump_loop, name="repro-serve-pump", daemon=True
        )
        self._pump.start()

    # -- producer side ----------------------------------------------------------

    def _check_alive(self) -> None:
        if self._error is not None:
            raise ServeError(
                f"serve pump died: {self._error!r}"
            ) from self._error
        if self._closed:
            raise ServeError("serve session is closed")

    def try_submit_run(
        self, stream: str, events: Sequence[tuple[int, Sequence[Any]]]
    ) -> bool:
        """Non-blocking run submission; False when the pump is saturated.

        This is the backpressure edge: the ingest tier calls it from the
        event loop and withholds client credits while it returns False.
        """
        self._check_alive()
        if stream not in self.runtime.streams:
            raise ServeError(
                f"unknown stream {stream!r}; declared sources are "
                f"{sorted(self.runtime.streams)}"
            )
        try:
            self._queue.put_nowait(
                ("run", stream, list(events), time.monotonic())
            )
            return True
        except queue.Full:
            return False

    def submit_run(
        self,
        stream: str,
        events: Sequence[tuple[int, Sequence[Any]]],
        timeout: Optional[float] = None,
    ) -> None:
        """Blocking run submission (wall-clock driver and tests)."""
        self._check_alive()
        if stream not in self.runtime.streams:
            raise ServeError(
                f"unknown stream {stream!r}; declared sources are "
                f"{sorted(self.runtime.streams)}"
            )
        try:
            self._queue.put(
                ("run", stream, list(events), time.monotonic()),
                timeout=timeout,
            )
        except queue.Full:
            raise ServeError(
                f"serve pump stayed saturated for {timeout}s; the runtime "
                "is not keeping up with the offered load"
            ) from None

    def submit_register(self, query: str, query_id: str) -> None:
        """Enqueue a registration; applied in arrival order by the pump."""
        self._check_alive()
        with self._submit_lock:
            self._queue.put(("register", query, query_id))

    def submit_unregister(self, query_id: str) -> None:
        self._check_alive()
        with self._submit_lock:
            self._queue.put(("unregister", query_id))

    def barrier(self, timeout: float = 30.0) -> None:
        """Block until everything enqueued so far has been applied."""
        self._check_alive()
        done = threading.Event()
        self._queue.put(("barrier", done))
        if not done.wait(timeout):
            self._check_alive()
            raise ServeError(f"serve barrier timed out after {timeout}s")
        self._check_alive()

    # -- pump side --------------------------------------------------------------

    def _pump_loop(self) -> None:
        try:
            while True:
                try:
                    item = self._queue.get(timeout=self.heartbeat_interval)
                except queue.Empty:
                    # Idle: no data arriving.  Heartbeat anyway so worker
                    # failures during lulls are detected (the in-process
                    # runtimes have no workers to lose, hence no method).
                    beat = getattr(self.runtime, "heartbeat", None)
                    if beat is not None:
                        beat()
                        self._heartbeats += 1
                    continue
                if item[0] == "stop":
                    return
                self._apply(item)
        except BaseException as error:
            self._error = error

    def _apply(self, item: tuple) -> None:
        kind = item[0]
        if kind == "run":
            __, stream, events, enqueued_at = item
            if self._started_at is None:
                self._started_at = time.monotonic()
            schema = self.runtime.streams[stream].schema
            tuples = [
                StreamTuple(schema, values, ts) for ts, values in events
            ]
            if self.log is not None:
                self.log.record_run(
                    stream, [(t.ts, t.values) for t in tuples]
                )
            self.runtime.process_batch(stream, tuples)
            now = time.monotonic()
            self._finished_at = now
            self._events += len(tuples)
            self._runs += 1
            self._ship_latencies.append((now - enqueued_at) * 1000.0)
        elif kind == "register":
            __, query, query_id = item
            submit = getattr(self.runtime, "submit_register", None)
            if submit is not None:
                submit(query, query_id=query_id)
            else:
                self.runtime.register(query, query_id=query_id)
            if self.log is not None:
                self.log.record_register(query, query_id)
            self._lifecycle_ops += 1
        elif kind == "unregister":
            (__, query_id) = item
            submit = getattr(self.runtime, "submit_unregister", None)
            if submit is not None:
                submit(query_id)
            else:
                self.runtime.unregister(query_id)
            if self.log is not None:
                self.log.record_unregister(query_id)
            self._lifecycle_ops += 1
        elif kind == "barrier":
            collect = getattr(self.runtime, "collect_lifecycle", None)
            if collect is not None:
                collect()
            item[1].set()
        else:  # pragma: no cover - producer bug
            raise ServeError(f"unknown pump item {kind!r}")

    # -- teardown ---------------------------------------------------------------

    def drain(self, timeout: float = 30.0) -> None:
        """Barrier + collect: all submitted work applied and acked."""
        self.barrier(timeout=timeout)

    def finish(self, timeout: float = 30.0) -> ServeReport:
        """Drain, stop the pump, and summarize the session."""
        if not self._closed:
            if self._error is None:
                with contextlib.suppress(ServeError):
                    self.drain(timeout=timeout)
            self._closed = True
            self._queue.put(("stop",))
            self._pump.join(timeout=timeout)
        if self._error is not None:
            raise ServeError(
                f"serve pump died: {self._error!r}"
            ) from self._error
        duration = 0.0
        if self._started_at is not None and self._finished_at is not None:
            duration = self._finished_at - self._started_at
        latencies = sorted(self._ship_latencies)
        return ServeReport(
            events=self._events,
            runs=self._runs,
            lifecycle_ops=self._lifecycle_ops,
            duration_seconds=duration,
            events_per_second=(
                self._events / duration if duration > 0 else float(self._events)
            ),
            ship_p50_ms=_percentile(latencies, 0.50),
            ship_p99_ms=_percentile(latencies, 0.99),
            heartbeats=self._heartbeats,
            ship_latencies_ms=latencies,
        )

    @property
    def pending(self) -> int:
        """Items enqueued but not yet applied (approximate)."""
        return self._queue.qsize()

    def __enter__(self) -> "ServeSession":
        return self

    def __exit__(self, *exc) -> None:
        with contextlib.suppress(BaseException if exc[0] else ()):
            self.finish()


def drive_wall_clock(
    session: ServeSession,
    timed_events: Sequence[tuple[float, str, tuple[int, Sequence[Any]]]],
    speedup: float = 1.0,
    batch_window: float = 0.005,
    on_progress: Optional[Callable[[int], None]] = None,
) -> int:
    """Replay ``(due_seconds, stream, (ts, values))`` arrivals in wall time.

    Sleep-to-timestamp pacing: the driver sleeps until each arrival's
    due time (scaled by ``speedup``), then submits it.  Consecutive
    arrivals for the same stream that fall within ``batch_window``
    (scaled) of each other coalesce into one run — matching how a real
    feed delivers micro-batches rather than single events.

    Returns the number of events submitted.  Used by the load generator
    and the ``serve`` CLI's self-driving mode.
    """
    if speedup <= 0:
        raise ServeError(f"speedup must be positive, got {speedup}")
    start = time.monotonic()
    submitted = 0
    i, n = 0, len(timed_events)
    while i < n:
        due, stream, event = timed_events[i]
        target = start + due / speedup
        delay = target - time.monotonic()
        if delay > 0:
            time.sleep(delay)
        # Coalesce same-stream arrivals due within the batch window.
        batch = [event]
        j = i + 1
        window = batch_window / speedup
        while (
            j < n
            and timed_events[j][1] == stream
            and timed_events[j][0] / speedup - due / speedup <= window
        ):
            batch.append(timed_events[j][2])
            j += 1
        session.submit_run(stream, batch, timeout=30.0)
        submitted += len(batch)
        if on_progress is not None:
            on_progress(submitted)
        i = j
    return submitted
