"""Exception hierarchy for the RUMOR reproduction.

Every error raised by the library derives from :class:`RumorError`, so
applications can catch a single base class.  Subclasses are grouped by the
subsystem that raises them: schema/stream construction, plan construction and
rewriting, operator evaluation, and the query language front end.
"""

from __future__ import annotations


class RumorError(Exception):
    """Base class for all errors raised by this library."""


class SchemaError(RumorError):
    """Raised for invalid schemas or schema-incompatible operations.

    Examples: duplicate attribute names, accessing an attribute that does not
    exist, or encoding streams with union-incompatible schemas into one
    channel.
    """


class ChannelError(RumorError):
    """Raised for invalid channel construction or membership handling."""


class PlanError(RumorError):
    """Raised for malformed query plans.

    Examples: wiring an m-op to a channel that is not in the plan, cycles in
    the plan graph, or merging m-ops that do not belong to the same plan.
    """


class RuleError(RumorError):
    """Raised when an m-rule is misapplied.

    The optimizer only applies a rule action after its condition holds, so
    user code normally never sees this; it guards against rule implementations
    whose condition and action disagree.
    """


class OperatorError(RumorError):
    """Raised for invalid operator definitions or evaluation failures."""


class ExpressionError(OperatorError):
    """Raised for invalid predicate or schema-map expressions."""


class QueryLanguageError(RumorError):
    """Raised by the query-language front end (parser / builder / compiler)."""


class ParseError(QueryLanguageError):
    """Raised when query text cannot be parsed.

    Carries the offending position so callers can point at the error.
    """

    def __init__(self, message: str, position: int = -1, text: str = ""):
        self.position = position
        self.text = text
        if position >= 0 and text:
            snippet = text[max(0, position - 20):position + 20]
            message = f"{message} (at position {position}: ...{snippet!r}...)"
        super().__init__(message)


class AutomatonError(RumorError):
    """Raised for malformed Cayuga-style automata."""


class LifecycleError(RumorError):
    """Raised by the online query runtime for invalid lifecycle transitions.

    Examples: registering a query id that is already live, unregistering a
    query that was never registered, or feeding an unknown source stream.
    """


class WorkloadError(RumorError):
    """Raised for invalid workload or dataset generator parameters."""


class WorkerUnreachableError(LifecycleError):
    """Raised when a worker exhausts the RPC retry budget without replying.

    The worker process is still alive (a dead worker raises
    ``WorkerCrashError`` and is recovered instead) but never acknowledged
    the command within ``max_retries`` retransmissions or
    ``retry_budget`` seconds — the structured alternative to retrying
    forever.  Carries the shard, command kind, attempt count and elapsed
    wall-clock so operators can tell a wedged worker from a slow one.
    """

    def __init__(
        self,
        message: str,
        shard: int = -1,
        kind: str = "",
        attempts: int = 0,
        elapsed_seconds: float = 0.0,
    ):
        super().__init__(message)
        self.shard = shard
        self.kind = kind
        self.attempts = attempts
        self.elapsed_seconds = elapsed_seconds


class CheckpointError(RumorError):
    """Raised by the durable checkpoint/restore subsystem.

    Examples: storing a checkpoint version that does not supersede the
    latest, a checkpoint manifest whose stream cursor disagrees with the
    coordinator's shipped counts, or replaying a corrupt write-ahead-log
    entry.
    """


class StaleCheckpointError(CheckpointError):
    """Raised when a restore requests a superseded checkpoint version.

    Once a newer version is stored, the replay log before its cut has been
    truncated — restoring an older version could not be completed to the
    present, so the request is rejected rather than silently serving stale
    state.
    """


class JournalError(CheckpointError):
    """Raised by the coordinator journal (:mod:`repro.shard.coordlog`).

    Examples: opening a runtime over a directory that already holds a
    previous serve's journal without resuming it, or replaying a journal
    record of an unknown kind.
    """


class ServeError(RumorError):
    """Raised by the live serving front door (:mod:`repro.serve`).

    Examples: a client overrunning its flow-control credits, an oversized
    or malformed protocol message, or submitting work to a serve session
    whose pump thread has died.
    """


class CoordinatorCrashError(RumorError):
    """A simulated coordinator death (fault injection only).

    Raised by :class:`~repro.shard.coordlog.CoordinatorFaults` at an armed
    crash point.  The runtime that raised it is dead from that moment on —
    tests either :meth:`~repro.shard.proc.ProcessShardedRuntime.abandon`
    it (cold-start path) or :meth:`~repro.shard.proc.ProcessShardedRuntime.detach`
    its workers for re-adoption.
    """
