"""Legacy setup shim.

Allows ``python setup.py develop`` / ``pip install -e .`` in offline
environments whose setuptools predates native PEP 660 editable-wheel support
(no ``wheel`` package available).  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
